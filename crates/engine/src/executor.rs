//! Pluggable campaign executors: the [`CampaignExecutor`] trait, the
//! in-order [`SerialExecutor`] reference and the [`PooledExecutor`] backed
//! by a persistent [`WorkerPool`].
//!
//! All executors — serial, pooled and the async event loop — run the same
//! *packaged* jobs produced by [`Prepared`]: scripts generated once per
//! entry, stands cloned once, execution plans resolved lazily **once per
//! (entry, test, stand) triple** through shared [`PlanSlot`]s that live on
//! the [`Campaign`] value (so relaunching the same campaign — replay
//! loops, watch mode, warm cache runs — never re-plans), and the campaign
//! cache consulted at the exact admission point where a job would start.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use comptest_core::campaign::{
    merge_test_outcomes, plan_cells, plan_script, plan_test_jobs, CampaignCell, CampaignEntry,
    CampaignResult, TestJobOutcome,
};
use comptest_core::error::CoreError;
use comptest_core::exec::{ExecOptions, RunState};
use comptest_core::hash::{
    capture_footprint, hash_device, hash_exec_options, hash_stand, hash_suite, CellKey, Footprint,
};
use comptest_core::{StepProbe, TestRun};
use comptest_dut::Device;
use comptest_model::SimTime;
use comptest_script::TestScript;
use comptest_stand::{ExecutionPlan, TestStand};

use crate::cache::{fold_cell, CacheKeying, CacheRuntime};
use crate::campaign::{Campaign, Granularity};
use crate::events::{emit, EngineEvent};
use crate::handle::{CampaignHandle, CampaignOutcome, EventStream, RunCancel};
use crate::obs::{Counter, Gauge, Phase, Recorder, SpanCat};
use crate::pool::WorkerPool;

/// A strategy for executing an already-validated [`Campaign`].
///
/// The contract every implementation must keep, so executors stay
/// swappable without touching callers (pinned by the
/// `executor_conformance` integration suite):
///
/// * jobs come from the deterministic plans ([`plan_cells`] /
///   [`plan_test_jobs`]) and outcomes merge back in that canonical order,
///   so the joined [`CampaignResult`] is byte-identical across executors
///   and worker counts;
/// * the first codegen error surfaces from `launch` before any job runs;
/// * cancellation is cooperative: the campaign's [`CancelToken`]
///   (`campaign.cancel`) and the per-run latch behind
///   `stop_on_first_fail` are checked before each job starts, skipped
///   jobs count into [`CampaignOutcome::cancelled`], and a started job
///   always finishes — yielding the same prefix-truncation semantics at
///   every worker count;
/// * events stream per cell at [`Granularity::Cell`] and per test at
///   [`Granularity::Test`], and the stream ends when the last job reports;
/// * a configured campaign cache is consulted at the same admission point:
///   a hit emits [`EngineEvent::CellCached`] instead of the
///   started/finished pair, merges byte-identical to the executed outcome,
///   and a cached failure trips the `stop_on_first_fail` latch exactly
///   like an executed one.
///
/// [`CancelToken`]: crate::CancelToken
pub trait CampaignExecutor {
    /// Launches the campaign, returning a handle to its events, its
    /// cancellation token and its eventual result. Called via
    /// [`Campaign::launch`], which validates first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Codegen`] for invalid suites; implementations
    /// must not start jobs in that case.
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError>;
}

impl<E: CampaignExecutor + ?Sized> CampaignExecutor for &E {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        (**self).launch(campaign)
    }
}

/// One lazily planned (script, stand) pair: the plan is computed on first
/// use and shared by every job of the pair — and, because the slots live
/// on the [`Campaign`] value, by every *launch* of that campaign. The
/// async executor therefore no longer re-plans at admission when a
/// campaign is relaunched (replay, benches, warm cache verification), and
/// a fully cached run never plans at all.
#[derive(Debug, Default)]
pub(crate) struct PlanSlot {
    plan: OnceLock<Result<Arc<ExecutionPlan>, String>>,
}

impl PlanSlot {
    /// The plan for `script` on `stand`, computed at most once per slot.
    /// The actual planning work (first resolution only) is timed as the
    /// `plan` phase on `obs`.
    pub(crate) fn resolve(
        &self,
        script: &TestScript,
        stand: &TestStand,
        obs: &Recorder,
    ) -> Result<Arc<ExecutionPlan>, String> {
        self.plan
            .get_or_init(|| {
                obs.time_phase(Phase::Plan, || plan_script(script, stand).map(Arc::new))
            })
            .clone()
    }
}

/// The per-campaign plan store: one [`PlanSlot`] per (entry, test, stand)
/// triple, allocated on first launch and reused by later launches.
#[derive(Debug, Default)]
pub(crate) struct PlanStore {
    slots: OnceLock<Vec<Arc<PlanSlot>>>,
}

impl PlanStore {
    fn slots(&self, count: usize) -> &[Arc<PlanSlot>] {
        let slots = self
            .slots
            .get_or_init(|| (0..count).map(|_| Arc::new(PlanSlot::default())).collect());
        debug_assert_eq!(slots.len(), count, "campaign shape changed under PlanStore");
        slots
    }
}

/// The per-campaign script store: all entries' generated scripts, produced
/// once on the first launch (where generation doubles as the codegen
/// precheck) and `Arc`-shared with every later launch — a campaign's
/// entries are immutable for its lifetime, so regeneration could only
/// ever reproduce the same scripts. A codegen *error* is cached the same
/// way: every launch of an invalid campaign reports it.
#[derive(Debug, Default)]
pub(crate) struct ScriptStore {
    scripts: OnceLock<Result<Vec<Vec<Arc<TestScript>>>, CoreError>>,
}

impl ScriptStore {
    fn get_or_generate(
        &self,
        entries: &[CampaignEntry<'_>],
    ) -> Result<Vec<Vec<Arc<TestScript>>>, CoreError> {
        self.scripts.get_or_init(|| shared_scripts(entries)).clone()
    }
}

/// A campaign's resolved cache keys plus, under
/// [`CacheKeying::Footprint`], the per-cell dependency footprints the keys
/// were derived from (attached to stored records; all `None` under
/// [`CacheKeying::Full`]).
#[derive(Debug)]
pub(crate) struct KeySet {
    pub(crate) keys: Vec<CellKey>,
    pub(crate) footprints: Vec<Option<Footprint>>,
}

/// The per-campaign cache-key store: every cell's [`CellKey`], hashed
/// once per campaign *value* on first cached launch and reused by every
/// later launch — suites, stands, DUT configs and exec options are
/// immutable for the campaign's lifetime, so a replay loop or warm bench
/// re-hashing 10k tests per launch was pure waste. The hashing that does
/// happen is timed as the `hash` phase.
///
/// Under [`CacheKeying::Footprint`] resolution also captures each cell's
/// dependency [`Footprint`]: every test plan is resolved eagerly through
/// the campaign's shared [`PlanSlot`]s (the same slots execution uses, so
/// nothing plans twice) and one device per entry is built for the DUT
/// slice — reused read-only across that entry's stands.
#[derive(Debug, Default)]
pub(crate) struct KeyStore {
    keys: OnceLock<KeySet>,
}

impl KeyStore {
    /// The campaign's cell keys (and footprints) in deterministic
    /// (entry, stand) order, computed at most once per campaign value.
    /// `slot` maps an (entry, test, stand) triple to the campaign's shared
    /// plan slot.
    pub(crate) fn resolve(
        &self,
        campaign: &Campaign<'_, '_>,
        scripts: &[Vec<Arc<TestScript>>],
        slot: &dyn Fn(usize, usize, usize) -> Arc<PlanSlot>,
        obs: &Recorder,
    ) -> &KeySet {
        let entries = campaign.entries;
        let stands = campaign.stands;
        let keys = self.keys.get_or_init(|| {
            obs.time_phase(Phase::Hash, || {
                let exec_hash = hash_exec_options(&campaign.exec);
                let n_cells = entries.len() * stands.len();
                match campaign.cache_keying {
                    CacheKeying::Full => {
                        let stand_hashes: Vec<u64> = stands.iter().map(|s| hash_stand(s)).collect();
                        let mut keys = Vec::with_capacity(n_cells);
                        for entry in entries {
                            let suite_hash = hash_suite(entry.suite);
                            let dut_config_hash = hash_device(&entry.device_factory.build());
                            for &stand_hash in &stand_hashes {
                                keys.push(CellKey {
                                    suite_hash,
                                    stand_hash,
                                    dut_config_hash,
                                    exec_hash,
                                });
                            }
                        }
                        KeySet {
                            keys,
                            footprints: vec![None; n_cells],
                        }
                    }
                    CacheKeying::Footprint => {
                        let salt = &campaign.cache_salt;
                        let mut keys = Vec::with_capacity(n_cells);
                        let mut footprints = Vec::with_capacity(n_cells);
                        for (e, entry) in entries.iter().enumerate() {
                            let suite_hash = hash_suite(entry.suite);
                            // One device per entry: footprint capture only
                            // reads it, so every stand shares the build.
                            let device = entry.device_factory.build();
                            for (s, stand) in stands.iter().enumerate() {
                                let plans: Vec<Result<Arc<ExecutionPlan>, String>> =
                                    (0..entry.suite.tests.len())
                                        .map(|t| slot(e, t, s).resolve(&scripts[e][t], stand, obs))
                                        .collect();
                                let plan_refs: Vec<Result<&ExecutionPlan, &str>> = plans
                                    .iter()
                                    .map(|p| match p {
                                        Ok(plan) => Ok(plan.as_ref()),
                                        Err(reason) => Err(reason.as_str()),
                                    })
                                    .collect();
                                let fp = capture_footprint(&plan_refs, &device, salt);
                                keys.push(fp.key(suite_hash, exec_hash).cell_key());
                                footprints.push(Some(fp));
                            }
                        }
                        KeySet { keys, footprints }
                    }
                }
            })
        });
        debug_assert_eq!(
            keys.keys.len(),
            entries.len() * stands.len(),
            "campaign shape changed under KeyStore"
        );
        keys
    }
}

/// Everything a launch shares across jobs, prepared once on the launch
/// thread: generated scripts (the codegen precheck), owned stands, the
/// campaign's plan slots, and the cache runtime with pre-loaded records.
pub(crate) struct Prepared {
    scripts: Vec<Vec<Arc<TestScript>>>,
    stands: Vec<Arc<TestStand>>,
    slots: Vec<Arc<PlanSlot>>,
    /// Cumulative test counts: `offsets[e]` = tests of entries `0..e`.
    offsets: Vec<usize>,
    n_stands: usize,
    pub(crate) cache: Option<Arc<CacheRuntime>>,
}

impl Prepared {
    /// Generates all scripts (surfacing the first codegen error before any
    /// job runs), clones stands once, binds the campaign's plan slots and
    /// pre-loads cache records in deterministic cell order.
    pub(crate) fn new(campaign: &Campaign<'_, '_>) -> Result<Self, CoreError> {
        let obs = &campaign.obs;
        let scripts = obs.time_phase(Phase::Codegen, || {
            campaign.scripts.get_or_generate(campaign.entries)
        })?;
        let stands: Vec<Arc<TestStand>> = campaign
            .stands
            .iter()
            .map(|s| Arc::new((*s).clone()))
            .collect();
        let mut offsets = Vec::with_capacity(campaign.entries.len() + 1);
        let mut total = 0usize;
        for entry in campaign.entries {
            offsets.push(total);
            total += entry.suite.tests.len();
        }
        offsets.push(total);
        let n_stands = campaign.stands.len();
        let slots = campaign.plans.slots(total * n_stands).to_vec();
        let cache = campaign.cache.as_ref().map(|cache| {
            let keyset = campaign.keys.resolve(
                campaign,
                &scripts,
                &|e, t, s| Arc::clone(&slots[(offsets[e] + t) * n_stands + s]),
                obs,
            );
            obs.time_phase(Phase::CachePreload, || {
                CacheRuntime::prepare(Arc::clone(cache), campaign, keyset, obs)
            })
        });
        Ok(Self {
            scripts,
            stands,
            slots,
            offsets,
            n_stands: campaign.stands.len(),
            cache,
        })
    }

    fn slot(&self, entry: usize, test: usize, stand: usize) -> Arc<PlanSlot> {
        Arc::clone(&self.slots[(self.offsets[entry] + test) * self.n_stands + stand])
    }

    /// Packages the deterministic test-job list: scripts and stands are
    /// `Arc`-shared, plan slots are shared per (entry, test, stand), and
    /// every job that will actually *execute* gets its own freshly built
    /// device (the serial pipeline power-cycles the DUT per test; building
    /// up front keeps worker tasks `'static`). Records are pre-loaded and
    /// immutable for the launch, so admission is predictable here:
    /// predicted cache hits skip device construction entirely — a fully
    /// warm run builds zero devices.
    pub(crate) fn package_jobs(&self, entries: &[CampaignEntry<'_>]) -> Vec<PackagedJob> {
        let counts: Vec<usize> = entries.iter().map(|e| e.suite.tests.len()).collect();
        plan_test_jobs(&counts, self.n_stands)
            .into_iter()
            .map(|j| {
                let hit = self
                    .cache
                    .as_ref()
                    .is_some_and(|c| c.will_hit_test(j.cell, j.test));
                PackagedJob {
                    job: j.job,
                    cell: j.cell,
                    test: j.test,
                    entry: j.entry,
                    suite: entries[j.entry].suite.name.clone(),
                    stand_name: self.stands[j.stand].name().to_owned(),
                    name: entries[j.entry].suite.tests[j.test].name.clone(),
                    script: Arc::clone(&self.scripts[j.entry][j.test]),
                    stand: Arc::clone(&self.stands[j.stand]),
                    plan: self.slot(j.entry, j.test, j.stand),
                    device: (!hit).then(|| entries[j.entry].device_factory.build()),
                }
            })
            .collect()
    }

    /// Packages the deterministic cell list for cell-granular runs. As
    /// with [`Prepared::package_jobs`], predicted whole-cell cache hits
    /// skip device construction for every test of the cell.
    pub(crate) fn package_cells(&self, entries: &[CampaignEntry<'_>]) -> Vec<PackagedCell> {
        plan_cells(entries.len(), self.n_stands)
            .into_iter()
            .map(|j| {
                let hit = self.cache.as_ref().is_some_and(|c| c.will_hit_cell(j.cell));
                PackagedCell {
                    cell: j.cell,
                    entry: j.entry,
                    suite: entries[j.entry].suite.name.clone(),
                    stand_name: self.stands[j.stand].name().to_owned(),
                    stand: Arc::clone(&self.stands[j.stand]),
                    tests: self.scripts[j.entry]
                        .iter()
                        .enumerate()
                        .map(|(t, script)| PackagedTest {
                            script: Arc::clone(script),
                            plan: self.slot(j.entry, t, j.stand),
                            device: (!hit).then(|| entries[j.entry].device_factory.build()),
                        })
                        .collect(),
                }
            })
            .collect()
    }
}

/// All scripts of all entries, generated up front (the codegen precheck)
/// and `Arc`-shared across jobs.
fn shared_scripts(entries: &[CampaignEntry<'_>]) -> Result<Vec<Vec<Arc<TestScript>>>, CoreError> {
    entries
        .iter()
        .map(|e| {
            Ok(comptest_script::generate_all(e.suite)?
                .into_iter()
                .map(Arc::new)
                .collect())
        })
        .collect()
}

/// The job-side context every worker shares: execution options,
/// cancellation state, the stop-on-first-fail policy, the cache runtime
/// and the observability recorder. Cloning is cheap (`Arc`s and plain
/// data).
#[derive(Clone)]
pub(crate) struct JobCtx {
    pub(crate) exec: ExecOptions,
    pub(crate) cancel: RunCancel,
    pub(crate) stop: bool,
    pub(crate) cache: Option<Arc<CacheRuntime>>,
    pub(crate) obs: Recorder,
    /// Step probe feeding `obs`, built once per launch and `Arc`-shared
    /// with every run; `None` when observability is disabled, keeping the
    /// uninstrumented fast path.
    pub(crate) step_probe: Option<Arc<dyn StepProbe>>,
}

impl JobCtx {
    pub(crate) fn new(campaign: &Campaign<'_, '_>, prepared: &Prepared) -> Self {
        campaign
            .obs
            .add(Counter::JobsPlanned, campaign.job_count() as u64);
        Self {
            exec: campaign.exec,
            cancel: RunCancel::new(campaign.cancel.clone()),
            stop: campaign.stop_on_first_fail,
            cache: prepared.cache.clone(),
            obs: campaign.obs.clone(),
            step_probe: campaign.obs.step_probe(),
        }
    }

    /// Emits the cache-corruption warnings collected at preload, if any —
    /// called by every launch path right after its event channel exists.
    pub(crate) fn emit_cache_warnings(&self, events: &Sender<EngineEvent>) {
        if let Some(runtime) = &self.cache {
            runtime.emit_corrupt_warnings(events);
        }
    }

    /// Serves one test-granular job from the cache if possible: emits
    /// [`EngineEvent::CellCached`], trips the stop latch on a cached
    /// failure and reports the outcome. Returns `true` when the job was
    /// served — the one hit sequence shared by the blocking and async
    /// admission paths, so hit semantics cannot drift between executors.
    pub(crate) fn try_cached_test(
        &self,
        job: &PackagedJob,
        events: &Sender<EngineEvent>,
        results: &Sender<JobMsg<TestJobOutcome>>,
    ) -> bool {
        let Some(runtime) = &self.cache else {
            return false;
        };
        let Some(outcome) = runtime.admit_test(job.cell, job.test) else {
            self.obs.inc(Counter::CacheMisses);
            return false;
        };
        self.obs.inc(Counter::CacheHits);
        self.obs.inc(Counter::JobsCached);
        let (status, failed) = outcome_status(&outcome);
        emit(
            events,
            EngineEvent::CellCached {
                cell: job.cell,
                test: Some(job.test),
                suite: job.suite.clone(),
                stand: job.stand_name.clone(),
                status,
            },
        );
        if failed && self.stop {
            self.cancel.trip();
        }
        let _ = results.send(JobMsg::Done(job.job, outcome));
        true
    }

    /// Serves one whole-cell job from the cache if possible — the
    /// cell-granular counterpart of [`JobCtx::try_cached_test`].
    pub(crate) fn try_cached_cell(
        &self,
        cell: &PackagedCell,
        events: &Sender<EngineEvent>,
        results: &Sender<JobMsg<CampaignCell>>,
    ) -> bool {
        let Some(runtime) = &self.cache else {
            return false;
        };
        let Some(cached) = runtime.admit_cell(cell.cell, &cell.suite, &cell.stand_name) else {
            self.obs.inc(Counter::CacheMisses);
            return false;
        };
        self.obs.inc(Counter::CacheHits);
        self.obs.inc(Counter::JobsCached);
        emit(
            events,
            EngineEvent::CellCached {
                cell: cell.cell,
                test: None,
                suite: cached.suite.clone(),
                stand: cached.stand.clone(),
                status: cached.status(),
            },
        );
        if !cached.passed() && self.stop {
            self.cancel.trip();
        }
        let _ = results.send(JobMsg::Done(cell.cell, cached));
        true
    }
}

/// Resolves the shared plan slot and executes against the device — the
/// single plan-then-run step every blocking execution path goes through
/// (the async executor resolves the same slots but parks a [`TestRun`]
/// instead of driving to completion). With observability enabled the run
/// is driven step by step through a probe-attached [`TestRun`], which
/// records per-step spans and worker-utilization time; the result is
/// byte-identical to the plain `execute` fast path either way.
pub(crate) fn plan_and_execute(
    slot: &PlanSlot,
    script: &TestScript,
    stand: &TestStand,
    device: &mut Device,
    ctx: &JobCtx,
) -> TestJobOutcome {
    match slot.resolve(script, stand, &ctx.obs) {
        Ok(plan) => Ok(match &ctx.step_probe {
            None => comptest_core::execute(&plan, device, &ctx.exec),
            Some(probe) => {
                let mut run =
                    TestRun::new(plan.as_ref(), device, &ctx.exec).with_probe(Arc::clone(probe));
                loop {
                    if let RunState::Finished(result) = run.step() {
                        break result;
                    }
                }
            }
        }),
        Err(reason) => Err(reason),
    }
}

/// The simulated end time of one outcome (`0` for planning failures) —
/// what `test_sim_micros` metrics record.
pub(crate) fn outcome_sim_end(outcome: &TestJobOutcome) -> SimTime {
    match outcome {
        Ok(result) => result.sim_duration(),
        Err(_) => SimTime::ZERO,
    }
}

/// Runs every job in plan order on the calling thread — the reference
/// executor for determinism checks, byte-identical to the historical
/// serial `run_campaign`.
///
/// `launch` executes the whole campaign before returning: the handle's
/// event stream replays the buffered events and `join` is instant.
/// Cancellation still works — `stop_on_first_fail` and the campaign's
/// [`CancelToken`](crate::CancelToken) (cancellable from another thread
/// while `launch` runs) skip every job not yet started.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl CampaignExecutor for SerialExecutor {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        let prepared = Prepared::new(campaign)?;
        let ctx = JobCtx::new(campaign, &prepared);
        // Gauges are additive so concurrent campaigns sharing one
        // recorder (the serving case) sum instead of stomping each other;
        // the claim is released once this launch's jobs have run.
        ctx.obs.gauge_add(Gauge::Workers, 1);
        let run_token = ctx.cancel.run_token();
        match campaign.granularity {
            Granularity::Cell => {
                let (events_tx, events_rx) = mpsc::channel();
                let (results_tx, results_rx) = mpsc::channel();
                ctx.emit_cache_warnings(&events_tx);
                let cells = prepared.package_cells(campaign.entries);
                let n_cells = cells.len();
                for cell in cells {
                    run_packaged_cell(cell, &ctx, &events_tx, &results_tx);
                }
                drop(events_tx);
                drop(results_tx);
                ctx.obs.gauge_add(Gauge::Workers, -1);
                let entries = campaign.entries;
                Ok(CampaignHandle::new(
                    EventStream::new(events_rx),
                    run_token,
                    Box::new(move || {
                        let (mut slots, acknowledged, strands) = collect(results_rx, n_cells);
                        rescue_cell_strands(strands, entries, &ctx, &mut slots);
                        let outcome = fold_cell_slots(slots, acknowledged)?;
                        check_verified(&ctx.cache)?;
                        Ok(outcome)
                    }),
                ))
            }
            Granularity::Test => {
                let (events_tx, events_rx) = mpsc::channel();
                let (results_tx, results_rx) = mpsc::channel();
                ctx.emit_cache_warnings(&events_tx);
                let jobs = prepared.package_jobs(campaign.entries);
                let n_jobs = jobs.len();
                for job in jobs {
                    run_packaged_test(job, &ctx, &events_tx, &results_tx);
                }
                drop(events_tx);
                drop(results_tx);
                ctx.obs.gauge_add(Gauge::Workers, -1);
                let entries = campaign.entries;
                let stands = campaign.stands;
                Ok(CampaignHandle::new(
                    EventStream::new(events_rx),
                    run_token,
                    Box::new(move || {
                        let (mut slots, acknowledged, strands) = collect(results_rx, n_jobs);
                        rescue_test_strands(strands, entries, &ctx, &mut slots);
                        let (result, cancelled) = merge_test_outcomes(entries, stands, slots);
                        check_lost(cancelled, acknowledged)?;
                        check_verified(&ctx.cache)?;
                        Ok(CampaignOutcome { result, cancelled })
                    }),
                ))
            }
        }
    }
}

/// Short status line and failed flag of one test outcome — one
/// implementation for every executor, so events agree byte-for-byte. The
/// planning-failure reason is rendered the same way cell status lines
/// render it (`NOT RUNNABLE (<first line, truncated>)`), so live per-test
/// progress says *why* a test could not run.
pub(crate) fn outcome_status(outcome: &TestJobOutcome) -> (String, bool) {
    let status = match outcome {
        Ok(result) => result.verdict().to_string(),
        Err(reason) => comptest_core::campaign::not_runnable_status(reason),
    };
    let failed = !matches!(outcome, Ok(r) if r.passed());
    (status, failed)
}

/// Raises the verify-mode mismatch error, if a cache runtime is active.
pub(crate) fn check_verified(cache: &Option<Arc<CacheRuntime>>) -> Result<(), CoreError> {
    match cache {
        Some(runtime) => runtime.check_verified(),
        None => Ok(()),
    }
}

/// Executes campaigns on an owned persistent [`WorkerPool`]: jobs are
/// packaged (`'static`) and drained by the pool's threads, events stream
/// live, and the same executor is reusable across successive campaigns
/// (replay / watch mode pays thread start-up once).
///
/// A bare [`WorkerPool`] is also a [`CampaignExecutor`]; this wrapper owns
/// its pool so the common case needs no extra plumbing.
#[derive(Debug)]
pub struct PooledExecutor {
    pool: WorkerPool,
}

impl PooledExecutor {
    /// An executor with a fresh pool of `workers` threads.
    ///
    /// `workers` must be at least `1` — the same rule the CLI enforces for
    /// `--workers`. Passing `0` is a caller bug: debug builds assert on it,
    /// release builds clamp to `1` (a zero-thread pool would deadlock every
    /// campaign, which is strictly worse than running serially).
    ///
    /// Exactly `workers` threads are spawned for the executor's lifetime —
    /// a persistent executor serving many campaigns is sized by its owner.
    /// When building a fresh executor for one campaign, size it to
    /// [`Campaign::job_count`] (`workers.min(campaign.job_count())`, as
    /// the CLI and the deprecated shims do) so excess threads are not
    /// constructed only to park on the queue.
    ///
    /// # Panics
    ///
    /// Debug builds panic on `workers == 0`.
    pub fn new(workers: usize) -> Self {
        debug_assert!(
            workers > 0,
            "PooledExecutor::new(0): a pool needs at least one worker \
             (release builds clamp to 1; the CLI rejects --workers 0 outright)"
        );
        Self {
            pool: WorkerPool::new(workers),
        }
    }

    /// Wraps an existing pool.
    pub fn with_pool(pool: WorkerPool) -> Self {
        Self { pool }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The backing pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }
}

impl CampaignExecutor for PooledExecutor {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        self.pool.launch(campaign)
    }
}

impl CampaignExecutor for WorkerPool {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        match campaign.granularity {
            Granularity::Cell => launch_pooled_cells(self, campaign),
            Granularity::Test => launch_pooled_tests(self, campaign),
        }
    }
}

/// What a packaged job reports back to the joining collector.
pub(crate) enum JobMsg<T> {
    /// Outcome of slot `usize`.
    Done(usize, T),
    /// The job observed cancellation and never ran (or, on the async
    /// executor, was abandoned at a step boundary).
    Cancelled,
    /// The job missed the cache at admission although packaging predicted
    /// a hit (and therefore skipped its device build); the join rescues it
    /// with a freshly built device.
    Stranded(Strand),
}

/// A job handed back to the join because its predicted cache hit did not
/// materialize at admission. Packaging skips device construction for
/// predicted hits, and worker tasks are `'static` closures that cannot
/// borrow the campaign's [`DeviceFactory`](comptest_core::campaign::DeviceFactory) —
/// so the job travels back to the join thread, which *can* borrow the
/// entries and rebuild the device there. Slower than the fast path, but
/// the previous behaviour was a panic.
pub(crate) enum Strand {
    /// A test-granular job (only ever sent on test-outcome channels).
    Test(Box<PackagedJob>),
    /// A cell-granular job (only ever sent on cell-outcome channels).
    Cell(Box<PackagedCell>),
}

/// Drains exactly `jobs` collector messages into merge slots, counting
/// acknowledged cancellations and gathering stranded jobs for the join's
/// rescue pass (every job sends exactly one message, stranded or not).
pub(crate) fn collect<T>(
    results: Receiver<JobMsg<T>>,
    jobs: usize,
) -> (Vec<Option<T>>, usize, Vec<Strand>) {
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let mut acknowledged = 0usize;
    let mut strands = Vec::new();
    for msg in results.iter().take(jobs) {
        match msg {
            JobMsg::Done(slot, outcome) => slots[slot] = Some(outcome),
            JobMsg::Cancelled => acknowledged += 1,
            JobMsg::Stranded(strand) => strands.push(strand),
        }
    }
    (slots, acknowledged, strands)
}

/// Executes stranded test jobs on the join thread: rebuild the device via
/// the campaign's entry factory, run through the shared plan slot, feed
/// the cache, fill the merge slot. The event stream has already closed by
/// join time, so rescue emits no per-test events (the merged result is
/// still byte-identical to a worker execution).
pub(crate) fn rescue_test_strands(
    strands: Vec<Strand>,
    entries: &[CampaignEntry<'_>],
    ctx: &JobCtx,
    slots: &mut [Option<TestJobOutcome>],
) {
    for strand in strands {
        let Strand::Test(mut job) = strand else {
            // Channels are typed per granularity, so a cell strand cannot
            // arrive here; leave the slot empty (surfaced as JobsLost)
            // rather than panic.
            continue;
        };
        let mut device = match job.device.take() {
            Some(device) => device,
            None => entries[job.entry].device_factory.build(),
        };
        let started = Instant::now();
        let outcome = plan_and_execute(&job.plan, &job.script, &job.stand, &mut device, ctx);
        if let Some(runtime) = &ctx.cache {
            runtime.finish_test(job.cell, job.test, &outcome);
        }
        ctx.obs.inc(Counter::JobsExecuted);
        ctx.obs.inc(Counter::TestsExecuted);
        ctx.obs
            .test_timing(started.elapsed(), outcome_sim_end(&outcome));
        slots[job.job] = Some(outcome);
    }
}

/// Cell-granular counterpart of [`rescue_test_strands`]: runs the cell's
/// tests in order against rebuilt devices, with the same first-planning-
/// error truncation the worker path applies.
pub(crate) fn rescue_cell_strands(
    strands: Vec<Strand>,
    entries: &[CampaignEntry<'_>],
    ctx: &JobCtx,
    slots: &mut [Option<CampaignCell>],
) {
    for strand in strands {
        let Strand::Cell(boxed) = strand else {
            continue;
        };
        let PackagedCell {
            cell: slot,
            entry,
            suite,
            stand_name,
            stand,
            tests,
        } = *boxed;
        let mut outcomes: Vec<TestJobOutcome> = Vec::with_capacity(tests.len());
        for mut test in tests {
            let mut device = match test.device.take() {
                Some(device) => device,
                None => entries[entry].device_factory.build(),
            };
            let started = Instant::now();
            let outcome = plan_and_execute(&test.plan, &test.script, &stand, &mut device, ctx);
            if ctx.obs.is_enabled() {
                ctx.obs.inc(Counter::TestsExecuted);
                ctx.obs
                    .test_timing(started.elapsed(), outcome_sim_end(&outcome));
            }
            let stop_cell = outcome.is_err();
            outcomes.push(outcome);
            if stop_cell {
                break;
            }
        }
        if let Some(runtime) = &ctx.cache {
            runtime.finish_cell(slot, &suite, &stand_name, &outcomes);
        }
        ctx.obs.inc(Counter::JobsExecuted);
        slots[slot] = Some(fold_cell(suite, stand_name, outcomes));
    }
}

/// Every job either reports an outcome or acknowledges cancellation; a
/// slot missing *without* an acknowledgement means a worker died mid-job
/// (a panic caught by the pool). Surface it instead of returning a
/// silently truncated — possibly all-green — result.
pub(crate) fn check_lost(cancelled: usize, acknowledged: usize) -> Result<(), CoreError> {
    let lost = cancelled.saturating_sub(acknowledged);
    if lost > 0 {
        return Err(CoreError::JobsLost {
            lost,
            jobs: Vec::new(),
        });
    }
    Ok(())
}

/// One packaged test job: everything a worker (pool thread or async shard)
/// needs, owned.
pub(crate) struct PackagedJob {
    pub(crate) job: usize,
    pub(crate) cell: usize,
    pub(crate) test: usize,
    /// Index into the campaign's entries — lets the join rebuild a device
    /// through the entry's `DeviceFactory` when a predicted hit strands.
    pub(crate) entry: usize,
    pub(crate) suite: String,
    pub(crate) stand_name: String,
    pub(crate) name: String,
    pub(crate) script: Arc<TestScript>,
    pub(crate) stand: Arc<TestStand>,
    pub(crate) plan: Arc<PlanSlot>,
    /// The fresh DUT — `None` when packaging predicted a cache hit (the
    /// job resolves at admission and never needs one).
    pub(crate) device: Option<Device>,
}

impl PackagedJob {
    /// Takes the packaged device. `None` means packaging predicted a cache
    /// hit (so skipped the device build) but admission missed anyway —
    /// possible whenever the store is shared (another process evicted or
    /// rewrote the record between packaging and execution). Callers strand
    /// the job back to the join instead of panicking.
    pub(crate) fn take_device(&mut self) -> Option<Device> {
        self.device.take()
    }

    /// Resolves the shared plan slot for this job's (script, stand) pair.
    pub(crate) fn resolve_plan(&self, obs: &Recorder) -> Result<Arc<ExecutionPlan>, String> {
        self.plan.resolve(&self.script, &self.stand, obs)
    }
}

/// Executes one packaged test job (worker side): consult the cache at
/// admission, otherwise resolve the shared plan, run against the fresh
/// device, stream per-test events.
pub(crate) fn run_packaged_test(
    mut job: PackagedJob,
    ctx: &JobCtx,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<TestJobOutcome>>,
) {
    if ctx.cancel.is_cancelled() {
        let _ = results.send(JobMsg::Cancelled);
        return;
    }
    if ctx.try_cached_test(&job, events, results) {
        return;
    }
    // Predicted hit, actual miss, no device to run with: hand the job back
    // to the join (which can borrow the campaign's device factories) before
    // any started event leaks out.
    let Some(mut device) = job.take_device() else {
        let _ = results.send(JobMsg::Stranded(Strand::Test(Box::new(job))));
        return;
    };
    emit(
        events,
        EngineEvent::TestStarted {
            cell: job.cell,
            test: job.test,
            suite: job.suite.clone(),
            stand: job.stand_name.clone(),
            name: job.name.clone(),
        },
    );
    let span = ctx
        .obs
        .span_begin(SpanCat::Test, || format!("{}::{}", job.suite, job.name));
    ctx.obs.gauge_add(Gauge::InflightJobs, 1);
    let started = Instant::now();
    let outcome = plan_and_execute(&job.plan, &job.script, &job.stand, &mut device, ctx);
    let wall = started.elapsed();
    if let Some(runtime) = &ctx.cache {
        runtime.finish_test(job.cell, job.test, &outcome);
    }
    let (status, failed) = outcome_status(&outcome);
    ctx.obs.gauge_add(Gauge::InflightJobs, -1);
    ctx.obs.inc(Counter::JobsExecuted);
    ctx.obs.inc(Counter::TestsExecuted);
    ctx.obs.test_timing(wall, outcome_sim_end(&outcome));
    ctx.obs.span_end(span, || Some(status.clone()));
    emit(
        events,
        EngineEvent::TestFinished {
            cell: job.cell,
            test: job.test,
            suite: job.suite,
            stand: job.stand_name,
            name: job.name,
            status,
            failed,
            duration: wall,
        },
    );
    if failed && ctx.stop {
        ctx.cancel.trip();
    }
    let _ = results.send(JobMsg::Done(job.job, outcome));
}

/// Test-granular pooled launch: package every (entry, stand, test) triple,
/// submit, and join by merging through [`merge_test_outcomes`].
fn launch_pooled_tests<'a>(
    pool: &WorkerPool,
    campaign: &Campaign<'a, '_>,
) -> Result<CampaignHandle<'a>, CoreError> {
    let prepared = Prepared::new(campaign)?;
    let jobs = prepared.package_jobs(campaign.entries);
    let n_jobs = jobs.len();
    let ctx = JobCtx::new(campaign, &prepared);
    // Additive claim (not `gauge_set`): concurrent campaigns sharing one
    // recorder on one pool sum their claims and the gauge returns to zero
    // once every one of them joins.
    let claimed_workers = pool.workers() as i64;
    ctx.obs.gauge_add(Gauge::Workers, claimed_workers);
    let (events_tx, events_rx) = mpsc::channel();
    let (results_tx, results_rx) = mpsc::channel();
    ctx.emit_cache_warnings(&events_tx);
    for job in jobs {
        let ctx = ctx.clone();
        let events = events_tx.clone();
        let results = results_tx.clone();
        ctx.obs.gauge_add(Gauge::QueueDepth, 1);
        pool.submit_task(
            campaign.lane,
            Box::new(move || {
                ctx.obs.gauge_add(Gauge::QueueDepth, -1);
                run_packaged_test(job, &ctx, &events, &results);
            }),
        );
    }
    // Drop the launch-side senders so both streams end with the last job.
    drop(events_tx);
    drop(results_tx);

    let entries = campaign.entries;
    let stands = campaign.stands;
    let run_token = ctx.cancel.run_token();
    Ok(CampaignHandle::new(
        EventStream::new(events_rx),
        run_token,
        Box::new(move || {
            let (mut slots, acknowledged, strands) = collect(results_rx, n_jobs);
            ctx.obs.gauge_add(Gauge::Workers, -claimed_workers);
            rescue_test_strands(strands, entries, &ctx, &mut slots);
            let (result, cancelled) = merge_test_outcomes(entries, stands, slots);
            check_lost(cancelled, acknowledged)?;
            check_verified(&ctx.cache)?;
            Ok(CampaignOutcome { result, cancelled })
        }),
    ))
}

/// One test of a packaged cell: script, shared plan slot and a fresh
/// device (`None` when the whole cell was predicted to hit the cache).
pub(crate) struct PackagedTest {
    pub(crate) script: Arc<TestScript>,
    pub(crate) plan: Arc<PlanSlot>,
    pub(crate) device: Option<Device>,
}

impl PackagedTest {
    /// Takes the packaged device; `None` when the cell was packaged for a
    /// predicted hit that did not materialize at admission (the caller
    /// strands the whole cell instead of panicking).
    pub(crate) fn take_device(&mut self) -> Option<Device> {
        self.device.take()
    }
}

/// One packaged cell job: the whole suite×stand cell, owned.
pub(crate) struct PackagedCell {
    pub(crate) cell: usize,
    /// Index into the campaign's entries — lets the join rebuild devices
    /// through the entry's `DeviceFactory` when a predicted hit strands.
    pub(crate) entry: usize,
    pub(crate) suite: String,
    pub(crate) stand_name: String,
    pub(crate) stand: Arc<TestStand>,
    pub(crate) tests: Vec<PackagedTest>,
}

/// Executes one packaged cell (worker side): consult the cache at
/// admission, otherwise run the suite's tests in order — each against its
/// own fresh device, stopping at the first planning error — and report the
/// determined per-test outcomes to the cache before folding them into the
/// historical cell outcome byte for byte.
pub(crate) fn run_packaged_cell(
    cell: PackagedCell,
    ctx: &JobCtx,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<CampaignCell>>,
) {
    if ctx.cancel.is_cancelled() {
        let _ = results.send(JobMsg::Cancelled);
        return;
    }
    if ctx.try_cached_cell(&cell, events, results) {
        return;
    }
    // Predicted hit, actual miss: the cell was packaged without devices
    // (packaging decides per whole cell, so it is all-or-none). Strand it
    // back to the join before any started event leaks out.
    if cell.tests.iter().any(|t| t.device.is_none()) {
        let _ = results.send(JobMsg::Stranded(Strand::Cell(Box::new(cell))));
        return;
    }
    emit(
        events,
        EngineEvent::JobStarted {
            cell: cell.cell,
            suite: cell.suite.clone(),
            stand: cell.stand_name.clone(),
        },
    );
    let cell_span = ctx.obs.span_begin(SpanCat::Cell, || {
        format!("{} on {}", cell.suite, cell.stand_name)
    });
    ctx.obs.gauge_add(Gauge::InflightJobs, 1);
    let mut outcomes: Vec<TestJobOutcome> = Vec::with_capacity(cell.tests.len());
    for mut test in cell.tests {
        let Some(mut device) = test.take_device() else {
            // Unreachable after the pre-loop check; degrade to a planning
            // failure ending the cell rather than panic the worker.
            outcomes.push(Err("internal: packaged test lost its device".into()));
            break;
        };
        let PackagedTest { script, plan, .. } = test;
        let test_span = ctx
            .obs
            .span_begin(SpanCat::Test, || format!("{}::{}", cell.suite, script.name));
        let started = Instant::now();
        let outcome = plan_and_execute(&plan, &script, &cell.stand, &mut device, ctx);
        if ctx.obs.is_enabled() {
            ctx.obs.inc(Counter::TestsExecuted);
            ctx.obs
                .test_timing(started.elapsed(), outcome_sim_end(&outcome));
            ctx.obs
                .span_end(test_span, || Some(outcome_status(&outcome).0));
        }
        let stop_cell = outcome.is_err();
        outcomes.push(outcome);
        if stop_cell {
            break;
        }
    }
    if let Some(runtime) = &ctx.cache {
        runtime.finish_cell(cell.cell, &cell.suite, &cell.stand_name, &outcomes);
    }
    let campaign_cell = fold_cell(cell.suite, cell.stand_name, outcomes);
    let failed = !campaign_cell.passed();
    ctx.obs.gauge_add(Gauge::InflightJobs, -1);
    ctx.obs.inc(Counter::JobsExecuted);
    ctx.obs.span_end(cell_span, || Some(campaign_cell.status()));
    emit(
        events,
        EngineEvent::JobFinished {
            cell: cell.cell,
            suite: campaign_cell.suite.clone(),
            stand: campaign_cell.stand.clone(),
            status: campaign_cell.status(),
            failed,
        },
    );
    if failed && ctx.stop {
        ctx.cancel.trip();
    }
    let _ = results.send(JobMsg::Done(cell.cell, campaign_cell));
}

/// Cell-granular pooled launch: one packaged job per suite×stand cell.
fn launch_pooled_cells<'a>(
    pool: &WorkerPool,
    campaign: &Campaign<'a, '_>,
) -> Result<CampaignHandle<'a>, CoreError> {
    let prepared = Prepared::new(campaign)?;
    let cells = prepared.package_cells(campaign.entries);
    let n_cells = cells.len();
    let ctx = JobCtx::new(campaign, &prepared);
    // Additive claim, mirroring `launch_pooled_tests` (see the comment
    // there).
    let claimed_workers = pool.workers() as i64;
    ctx.obs.gauge_add(Gauge::Workers, claimed_workers);
    let (events_tx, events_rx) = mpsc::channel();
    let (results_tx, results_rx) = mpsc::channel();
    ctx.emit_cache_warnings(&events_tx);
    for cell in cells {
        let ctx = ctx.clone();
        let events = events_tx.clone();
        let results = results_tx.clone();
        ctx.obs.gauge_add(Gauge::QueueDepth, 1);
        pool.submit_task(
            campaign.lane,
            Box::new(move || {
                ctx.obs.gauge_add(Gauge::QueueDepth, -1);
                run_packaged_cell(cell, &ctx, &events, &results);
            }),
        );
    }
    drop(events_tx);
    drop(results_tx);

    let entries = campaign.entries;
    let run_token = ctx.cancel.run_token();
    Ok(CampaignHandle::new(
        EventStream::new(events_rx),
        run_token,
        Box::new(move || {
            let (mut slots, acknowledged, strands) = collect(results_rx, n_cells);
            ctx.obs.gauge_add(Gauge::Workers, -claimed_workers);
            rescue_cell_strands(strands, entries, &ctx, &mut slots);
            let outcome = fold_cell_slots(slots, acknowledged)?;
            check_verified(&ctx.cache)?;
            Ok(outcome)
        }),
    ))
}

/// Folds cell-granular merge slots into the deterministic outcome (missing
/// slots are cancelled cells), verifying every gap was an acknowledged
/// cancellation. Shared by the serial, pooled and async cell-granular
/// joins.
pub(crate) fn fold_cell_slots(
    slots: Vec<Option<CampaignCell>>,
    acknowledged: usize,
) -> Result<CampaignOutcome, CoreError> {
    let mut result = CampaignResult::default();
    let mut cancelled = 0usize;
    for slot in slots {
        match slot {
            Some(cell) => result.cells.push(cell),
            None => cancelled += 1,
        }
    }
    check_lost(cancelled, acknowledged)?;
    Ok(CampaignOutcome { result, cancelled })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CampaignCache, MemoryCache};
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho

[test day_off]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Lo
";

    fn stand() -> TestStand {
        TestStand::parse_str("a.stand", comptest_core::PAPER_STAND_A).unwrap()
    }

    fn entries(suites: &[comptest_model::TestSuite]) -> Vec<CampaignEntry<'_>> {
        suites
            .iter()
            .map(|suite| CampaignEntry {
                suite,
                device_factory: Box::new(|| {
                    comptest_dut::ecus::interior_light::device(Default::default())
                }),
            })
            .collect()
    }

    /// Regression for the panic at `take_device` (`"cache-miss job packaged
    /// without a device"`): package against a warm store (every job
    /// predicts a hit, so no devices are built), then execute against an
    /// empty store — the record was evicted between packaging and
    /// admission, legal whenever the store is shared between processes.
    /// The job must strand back to the join, get a rebuilt device from the
    /// entry's factory, and merge byte-identical to a cold run.
    #[test]
    fn evicted_prediction_strands_and_rescues_test_jobs() {
        let wb = Workbook::parse_str("a.cts", WB).unwrap();
        let suites = vec![wb.suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands: Vec<&TestStand> = vec![&stand];

        // Reference: a cold serial run without any cache.
        let cold = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .run(&SerialExecutor)
            .unwrap();

        // Warm a store, then package against it.
        let warm_store: Arc<dyn CampaignCache> = Arc::new(MemoryCache::new());
        Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .cache(Arc::clone(&warm_store))
            .run(&SerialExecutor)
            .unwrap();
        let warm = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .cache(Arc::clone(&warm_store));
        let prepared = Prepared::new(&warm).unwrap();
        let jobs = prepared.package_jobs(warm.entries);
        assert!(!jobs.is_empty());
        assert!(
            jobs.iter().all(|j| j.device.is_none()),
            "warm packaging must skip device builds"
        );

        // Execute the predicted-hit jobs with the record evicted.
        let evicted = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .cache(Arc::new(MemoryCache::new()) as Arc<dyn CampaignCache>);
        let prepared_evicted = Prepared::new(&evicted).unwrap();
        let ctx = JobCtx::new(&evicted, &prepared_evicted);
        let (events_tx, _events_rx) = mpsc::channel();
        let (results_tx, results_rx) = mpsc::channel();
        let n = jobs.len();
        for job in jobs {
            run_packaged_test(job, &ctx, &events_tx, &results_tx);
        }
        drop(results_tx);
        let (mut slots, acknowledged, strands) = collect(results_rx, n);
        assert_eq!(strands.len(), n, "every job must strand, not panic");
        assert_eq!(acknowledged, 0);
        rescue_test_strands(strands, evicted.entries, &ctx, &mut slots);
        let (result, cancelled) = merge_test_outcomes(evicted.entries, evicted.stands, slots);
        assert_eq!(cancelled, 0);
        assert_eq!(result, cold, "rescued outcomes must match a cold run");
    }

    /// Cell-granular twin of the eviction regression: the whole packaged
    /// cell (no devices) strands instead of panicking in the per-test
    /// `take_device`, and the rescue reproduces the cold result.
    #[test]
    fn evicted_prediction_strands_and_rescues_cells() {
        let wb = Workbook::parse_str("a.cts", WB).unwrap();
        let suites = vec![wb.suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands: Vec<&TestStand> = vec![&stand];

        let cold = Campaign::new(&entries, &stands)
            .granularity(Granularity::Cell)
            .run(&SerialExecutor)
            .unwrap();

        let warm_store: Arc<dyn CampaignCache> = Arc::new(MemoryCache::new());
        Campaign::new(&entries, &stands)
            .granularity(Granularity::Cell)
            .cache(Arc::clone(&warm_store))
            .run(&SerialExecutor)
            .unwrap();
        let warm = Campaign::new(&entries, &stands)
            .granularity(Granularity::Cell)
            .cache(Arc::clone(&warm_store));
        let prepared = Prepared::new(&warm).unwrap();
        let cells = prepared.package_cells(warm.entries);
        assert!(!cells.is_empty());
        assert!(
            cells
                .iter()
                .all(|c| c.tests.iter().all(|t| t.device.is_none())),
            "warm packaging must skip device builds"
        );

        let evicted = Campaign::new(&entries, &stands)
            .granularity(Granularity::Cell)
            .cache(Arc::new(MemoryCache::new()) as Arc<dyn CampaignCache>);
        let prepared_evicted = Prepared::new(&evicted).unwrap();
        let ctx = JobCtx::new(&evicted, &prepared_evicted);
        let (events_tx, _events_rx) = mpsc::channel();
        let (results_tx, results_rx) = mpsc::channel();
        let n = cells.len();
        for cell in cells {
            run_packaged_cell(cell, &ctx, &events_tx, &results_tx);
        }
        drop(results_tx);
        let (mut slots, acknowledged, strands) = collect(results_rx, n);
        assert_eq!(strands.len(), n, "every cell must strand, not panic");
        rescue_cell_strands(strands, evicted.entries, &ctx, &mut slots);
        let outcome = fold_cell_slots(slots, acknowledged).unwrap();
        assert_eq!(outcome.cancelled, 0);
        assert_eq!(outcome.result, cold, "rescued cells must match a cold run");
    }
}
