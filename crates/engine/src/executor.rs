//! Pluggable campaign executors: the [`CampaignExecutor`] trait, the
//! in-order [`SerialExecutor`] reference and the [`PooledExecutor`] backed
//! by a persistent [`WorkerPool`].

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use comptest_core::campaign::{
    execute_script_job, merge_test_outcomes, plan_cells, plan_test_jobs, CampaignCell,
    CampaignEntry, CampaignResult, TestJobOutcome,
};
use comptest_core::error::CoreError;
use comptest_core::exec::ExecOptions;
use comptest_core::SuiteResult;
use comptest_dut::Device;
use comptest_script::TestScript;
use comptest_stand::TestStand;

use crate::campaign::{Campaign, Granularity};
use crate::events::{emit, EngineEvent};
use crate::handle::{CampaignHandle, CampaignOutcome, EventStream, RunCancel};
use crate::pool::WorkerPool;

/// A strategy for executing an already-validated [`Campaign`].
///
/// The contract every implementation (and the planned `AsyncExecutor`)
/// must keep, so executors stay swappable without touching callers:
///
/// * jobs come from the deterministic plans ([`plan_cells`] /
///   [`plan_test_jobs`]) and outcomes merge back in that canonical order,
///   so the joined [`CampaignResult`] is byte-identical across executors
///   and worker counts;
/// * the first codegen error surfaces from `launch` before any job runs;
/// * cancellation is cooperative: the campaign's [`CancelToken`]
///   (`campaign.cancel`) and the per-run latch behind
///   `stop_on_first_fail` are checked before each job starts, skipped
///   jobs count into [`CampaignOutcome::cancelled`], and a started job
///   always finishes — yielding the same prefix-truncation semantics at
///   every worker count;
/// * events stream per cell at [`Granularity::Cell`] and per test at
///   [`Granularity::Test`], and the stream ends when the last job reports.
///
/// [`CancelToken`]: crate::CancelToken
pub trait CampaignExecutor {
    /// Launches the campaign, returning a handle to its events, its
    /// cancellation token and its eventual result. Called via
    /// [`Campaign::launch`], which validates first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Codegen`] for invalid suites; implementations
    /// must not start jobs in that case.
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError>;
}

impl<E: CampaignExecutor + ?Sized> CampaignExecutor for &E {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        (**self).launch(campaign)
    }
}

/// Runs every job in plan order on the calling thread — the reference
/// executor for determinism checks, byte-identical to the historical
/// serial `run_campaign`.
///
/// `launch` executes the whole campaign before returning: the handle's
/// event stream replays the buffered events and `join` is instant.
/// Cancellation still works — `stop_on_first_fail` and the campaign's
/// [`CancelToken`](crate::CancelToken) (cancellable from another thread
/// while `launch` runs) skip every job not yet started.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl CampaignExecutor for SerialExecutor {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        let cancel = RunCancel::new(campaign.cancel.clone());
        let (tx, rx) = mpsc::channel();
        let outcome = match campaign.granularity {
            Granularity::Cell => serial_cells(campaign, &cancel, &tx),
            Granularity::Test => serial_tests(campaign, &cancel, &tx),
        }?;
        drop(tx);
        Ok(CampaignHandle::new(
            EventStream::new(rx),
            cancel.run_token(),
            Box::new(move || Ok(outcome)),
        ))
    }
}

/// Serial cell-granular execution: one cell at a time, in plan order, from
/// scripts generated exactly once per entry.
fn serial_cells(
    campaign: &Campaign<'_, '_>,
    cancel: &RunCancel,
    events: &Sender<EngineEvent>,
) -> Result<CampaignOutcome, CoreError> {
    // Generating all scripts up front is the codegen precheck.
    let scripts = shared_scripts(campaign.entries)?;
    let mut result = CampaignResult::default();
    let mut cancelled = 0usize;
    for job in plan_cells(campaign.entries.len(), campaign.stands.len()) {
        if cancel.is_cancelled() {
            cancelled += 1;
            continue;
        }
        let entry = &campaign.entries[job.entry];
        let stand = campaign.stands[job.stand];
        emit(
            events,
            EngineEvent::JobStarted {
                cell: job.cell,
                suite: entry.suite.name.clone(),
                stand: stand.name().to_owned(),
            },
        );
        let cell = execute_cell(
            entry.suite.name.clone(),
            stand.name().to_owned(),
            stand,
            scripts[job.entry]
                .iter()
                .map(|s| (Arc::clone(s), entry.device_factory.build())),
            &campaign.exec,
        );
        let failed = !cell.passed();
        emit(
            events,
            EngineEvent::JobFinished {
                cell: job.cell,
                suite: cell.suite.clone(),
                stand: cell.stand.clone(),
                status: cell.status(),
                failed,
            },
        );
        result.cells.push(cell);
        if failed && campaign.stop_on_first_fail {
            cancel.trip();
        }
    }
    Ok(CampaignOutcome { result, cancelled })
}

/// Serial test-granular execution: one generated script per test, a fresh
/// device per job, merged through [`merge_test_outcomes`].
fn serial_tests(
    campaign: &Campaign<'_, '_>,
    cancel: &RunCancel,
    events: &Sender<EngineEvent>,
) -> Result<CampaignOutcome, CoreError> {
    let scripts: Vec<Vec<TestScript>> = campaign
        .entries
        .iter()
        .map(|e| Ok(comptest_script::generate_all(e.suite)?))
        .collect::<Result<_, CoreError>>()?;
    let counts: Vec<usize> = campaign
        .entries
        .iter()
        .map(|e| e.suite.tests.len())
        .collect();
    let jobs = plan_test_jobs(&counts, campaign.stands.len());
    let mut slots: Vec<Option<TestJobOutcome>> = (0..jobs.len()).map(|_| None).collect();
    for job in &jobs {
        if cancel.is_cancelled() {
            continue;
        }
        let entry = &campaign.entries[job.entry];
        let stand = campaign.stands[job.stand];
        let name = entry.suite.tests[job.test].name.clone();
        emit(
            events,
            EngineEvent::TestStarted {
                cell: job.cell,
                test: job.test,
                suite: entry.suite.name.clone(),
                stand: stand.name().to_owned(),
                name: name.clone(),
            },
        );
        let started = Instant::now();
        let mut device = entry.device_factory.build();
        let outcome = execute_script_job(
            &scripts[job.entry][job.test],
            stand,
            &mut device,
            &campaign.exec,
        );
        let (status, failed) = outcome_status(&outcome);
        emit(
            events,
            EngineEvent::TestFinished {
                cell: job.cell,
                test: job.test,
                suite: entry.suite.name.clone(),
                stand: stand.name().to_owned(),
                name,
                status,
                failed,
                duration: started.elapsed(),
            },
        );
        if failed && campaign.stop_on_first_fail {
            cancel.trip();
        }
        slots[job.job] = Some(outcome);
    }
    let (result, cancelled) = merge_test_outcomes(campaign.entries, campaign.stands, slots);
    Ok(CampaignOutcome { result, cancelled })
}

/// Short status line and failed flag of one test outcome — one
/// implementation for every executor, so events agree byte-for-byte. The
/// planning-failure reason is rendered the same way cell status lines
/// render it (`NOT RUNNABLE (<first line, truncated>)`), so live per-test
/// progress says *why* a test could not run.
pub(crate) fn outcome_status(outcome: &TestJobOutcome) -> (String, bool) {
    let status = match outcome {
        Ok(result) => result.verdict().to_string(),
        Err(reason) => comptest_core::campaign::not_runnable_status(reason),
    };
    let failed = !matches!(outcome, Ok(r) if r.passed());
    (status, failed)
}

/// Executes one cell: the suite's tests in order, each against its own
/// fresh device, stopping at the first planning error — the historical
/// `run_cell` outcome byte for byte, from pre-generated scripts. The one
/// cell-execution implementation shared by the serial and pooled paths.
fn execute_cell(
    suite: String,
    stand_name: String,
    stand: &TestStand,
    tests: impl IntoIterator<Item = (Arc<TestScript>, Device)>,
    exec: &ExecOptions,
) -> CampaignCell {
    let mut results = Vec::new();
    let mut planning_error = None;
    for (script, mut device) in tests {
        match execute_script_job(&script, stand, &mut device, exec) {
            Ok(result) => results.push(result),
            Err(reason) => {
                planning_error = Some(reason);
                break;
            }
        }
    }
    let outcome = match planning_error {
        Some(reason) => Err(reason),
        None => Ok(SuiteResult {
            suite: suite.clone(),
            results,
        }),
    };
    CampaignCell {
        suite,
        stand: stand_name,
        outcome,
    }
}

/// Executes campaigns on an owned persistent [`WorkerPool`]: jobs are
/// packaged (`'static`) and drained by the pool's threads, events stream
/// live, and the same executor is reusable across successive campaigns
/// (replay / watch mode pays thread start-up once).
///
/// A bare [`WorkerPool`] is also a [`CampaignExecutor`]; this wrapper owns
/// its pool so the common case needs no extra plumbing.
#[derive(Debug)]
pub struct PooledExecutor {
    pool: WorkerPool,
}

impl PooledExecutor {
    /// An executor with a fresh pool of `workers` threads.
    ///
    /// `workers` must be at least `1` — the same rule the CLI enforces for
    /// `--workers`. Passing `0` is a caller bug: debug builds assert on it,
    /// release builds clamp to `1` (a zero-thread pool would deadlock every
    /// campaign, which is strictly worse than running serially).
    ///
    /// Exactly `workers` threads are spawned for the executor's lifetime —
    /// a persistent executor serving many campaigns is sized by its owner.
    /// When building a fresh executor for one campaign, size it to
    /// [`Campaign::job_count`] (`workers.min(campaign.job_count())`, as
    /// the CLI and the deprecated shims do) so excess threads are not
    /// constructed only to park on the queue.
    ///
    /// # Panics
    ///
    /// Debug builds panic on `workers == 0`.
    pub fn new(workers: usize) -> Self {
        debug_assert!(
            workers > 0,
            "PooledExecutor::new(0): a pool needs at least one worker \
             (release builds clamp to 1; the CLI rejects --workers 0 outright)"
        );
        Self {
            pool: WorkerPool::new(workers),
        }
    }

    /// Wraps an existing pool.
    pub fn with_pool(pool: WorkerPool) -> Self {
        Self { pool }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The backing pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }
}

impl CampaignExecutor for PooledExecutor {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        self.pool.launch(campaign)
    }
}

impl CampaignExecutor for WorkerPool {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        match campaign.granularity {
            Granularity::Cell => launch_pooled_cells(self, campaign),
            Granularity::Test => launch_pooled_tests(self, campaign),
        }
    }
}

/// What a packaged job reports back to the joining collector.
pub(crate) enum JobMsg<T> {
    /// Outcome of slot `usize`.
    Done(usize, T),
    /// The job observed cancellation and never ran (or, on the async
    /// executor, was abandoned at a step boundary).
    Cancelled,
}

/// Drains exactly `jobs` collector messages into merge slots, counting
/// acknowledged cancellations.
pub(crate) fn collect<T>(results: Receiver<JobMsg<T>>, jobs: usize) -> (Vec<Option<T>>, usize) {
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let mut acknowledged = 0usize;
    for msg in results.iter().take(jobs) {
        match msg {
            JobMsg::Done(slot, outcome) => slots[slot] = Some(outcome),
            JobMsg::Cancelled => acknowledged += 1,
        }
    }
    (slots, acknowledged)
}

/// Every job either reports an outcome or acknowledges cancellation; a
/// slot missing *without* an acknowledgement means a worker died mid-job
/// (a panic caught by the pool). Surface it instead of returning a
/// silently truncated — possibly all-green — result.
pub(crate) fn check_lost(cancelled: usize, acknowledged: usize) -> Result<(), CoreError> {
    let lost = cancelled.saturating_sub(acknowledged);
    if lost > 0 {
        return Err(CoreError::JobsLost { lost });
    }
    Ok(())
}

/// One packaged test job: everything a worker (pool thread or async shard)
/// needs, owned.
pub(crate) struct PackagedJob {
    pub(crate) job: usize,
    pub(crate) cell: usize,
    pub(crate) test: usize,
    pub(crate) suite: String,
    pub(crate) stand_name: String,
    pub(crate) name: String,
    pub(crate) script: Arc<TestScript>,
    pub(crate) stand: Arc<TestStand>,
    pub(crate) device: Device,
}

/// Packages the deterministic test-job list: scripts are generated once per
/// (entry, test) and shared across stands, stands are cloned once, and
/// every job gets its own freshly built device (the serial pipeline
/// power-cycles the DUT per test; building up front keeps worker tasks
/// `'static`). The trade-off is deliberate: all devices are live until
/// their jobs run, which is cheap for simulated ECUs — revisit if device
/// construction ever becomes heavy.
pub(crate) fn package_jobs(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
) -> Result<Vec<PackagedJob>, CoreError> {
    let scripts = shared_scripts(entries)?;
    let stands_owned: Vec<Arc<TestStand>> = stands.iter().map(|s| Arc::new((*s).clone())).collect();

    let counts: Vec<usize> = entries.iter().map(|e| e.suite.tests.len()).collect();
    Ok(plan_test_jobs(&counts, stands.len())
        .into_iter()
        .map(|j| PackagedJob {
            job: j.job,
            cell: j.cell,
            test: j.test,
            suite: entries[j.entry].suite.name.clone(),
            stand_name: stands[j.stand].name().to_owned(),
            name: entries[j.entry].suite.tests[j.test].name.clone(),
            script: Arc::clone(&scripts[j.entry][j.test]),
            stand: Arc::clone(&stands_owned[j.stand]),
            device: entries[j.entry].device_factory.build(),
        })
        .collect())
}

/// All scripts of all entries, generated up front (the codegen precheck)
/// and `Arc`-shared across jobs.
fn shared_scripts(entries: &[CampaignEntry<'_>]) -> Result<Vec<Vec<Arc<TestScript>>>, CoreError> {
    entries
        .iter()
        .map(|e| {
            Ok(comptest_script::generate_all(e.suite)?
                .into_iter()
                .map(Arc::new)
                .collect())
        })
        .collect()
}

/// Executes one packaged test job (worker side): plan against the stand,
/// run against the fresh device, stream per-test events.
fn run_packaged_test(
    job: PackagedJob,
    exec: &ExecOptions,
    cancel: &RunCancel,
    stop_on_first_fail: bool,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<TestJobOutcome>>,
) {
    let PackagedJob {
        job,
        cell,
        test,
        suite,
        stand_name,
        name,
        script,
        stand,
        mut device,
    } = job;
    if cancel.is_cancelled() {
        let _ = results.send(JobMsg::Cancelled);
        return;
    }
    emit(
        events,
        EngineEvent::TestStarted {
            cell,
            test,
            suite: suite.clone(),
            stand: stand_name.clone(),
            name: name.clone(),
        },
    );
    let started = Instant::now();
    let outcome = execute_script_job(&script, &stand, &mut device, exec);
    let (status, failed) = outcome_status(&outcome);
    emit(
        events,
        EngineEvent::TestFinished {
            cell,
            test,
            suite,
            stand: stand_name,
            name,
            status,
            failed,
            duration: started.elapsed(),
        },
    );
    if failed && stop_on_first_fail {
        cancel.trip();
    }
    let _ = results.send(JobMsg::Done(job, outcome));
}

/// Test-granular pooled launch: package every (entry, stand, test) triple,
/// submit, and join by merging through [`merge_test_outcomes`].
fn launch_pooled_tests<'a>(
    pool: &WorkerPool,
    campaign: &Campaign<'a, '_>,
) -> Result<CampaignHandle<'a>, CoreError> {
    let jobs = package_jobs(campaign.entries, campaign.stands)?;
    let n_jobs = jobs.len();
    let cancel = RunCancel::new(campaign.cancel.clone());
    let stop = campaign.stop_on_first_fail;
    let exec = campaign.exec;
    let (events_tx, events_rx) = mpsc::channel();
    let (results_tx, results_rx) = mpsc::channel();
    for job in jobs {
        let cancel = cancel.clone();
        let events = events_tx.clone();
        let results = results_tx.clone();
        pool.submit(Box::new(move || {
            run_packaged_test(job, &exec, &cancel, stop, &events, &results);
        }));
    }
    // Drop the launch-side senders so both streams end with the last job.
    drop(events_tx);
    drop(results_tx);

    let entries = campaign.entries;
    let stands = campaign.stands;
    let run_token = cancel.run_token();
    Ok(CampaignHandle::new(
        EventStream::new(events_rx),
        run_token,
        Box::new(move || {
            let (slots, acknowledged) = collect(results_rx, n_jobs);
            let (result, cancelled) = merge_test_outcomes(entries, stands, slots);
            check_lost(cancelled, acknowledged)?;
            Ok(CampaignOutcome { result, cancelled })
        }),
    ))
}

/// One packaged cell job: the whole suite×stand cell, owned — scripts,
/// stand, and one fresh device per test.
pub(crate) struct PackagedCell {
    pub(crate) cell: usize,
    pub(crate) suite: String,
    pub(crate) stand_name: String,
    pub(crate) stand: Arc<TestStand>,
    pub(crate) tests: Vec<(Arc<TestScript>, Device)>,
}

/// Packages the deterministic cell list for cell-granular runs (pooled or
/// async).
pub(crate) fn package_cells(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
) -> Result<Vec<PackagedCell>, CoreError> {
    let scripts = shared_scripts(entries)?;
    let stands_owned: Vec<Arc<TestStand>> = stands.iter().map(|s| Arc::new((*s).clone())).collect();
    Ok(plan_cells(entries.len(), stands.len())
        .into_iter()
        .map(|j| PackagedCell {
            cell: j.cell,
            suite: entries[j.entry].suite.name.clone(),
            stand_name: stands[j.stand].name().to_owned(),
            stand: Arc::clone(&stands_owned[j.stand]),
            tests: scripts[j.entry]
                .iter()
                .map(|s| (Arc::clone(s), entries[j.entry].device_factory.build()))
                .collect(),
        })
        .collect())
}

/// Executes one packaged cell (worker side) through [`execute_cell`],
/// streaming per-cell events and honouring cancellation.
fn run_packaged_cell(
    cell: PackagedCell,
    exec: &ExecOptions,
    cancel: &RunCancel,
    stop_on_first_fail: bool,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<CampaignCell>>,
) {
    if cancel.is_cancelled() {
        let _ = results.send(JobMsg::Cancelled);
        return;
    }
    emit(
        events,
        EngineEvent::JobStarted {
            cell: cell.cell,
            suite: cell.suite.clone(),
            stand: cell.stand_name.clone(),
        },
    );
    let campaign_cell = execute_cell(cell.suite, cell.stand_name, &cell.stand, cell.tests, exec);
    let failed = !campaign_cell.passed();
    emit(
        events,
        EngineEvent::JobFinished {
            cell: cell.cell,
            suite: campaign_cell.suite.clone(),
            stand: campaign_cell.stand.clone(),
            status: campaign_cell.status(),
            failed,
        },
    );
    if failed && stop_on_first_fail {
        cancel.trip();
    }
    let _ = results.send(JobMsg::Done(cell.cell, campaign_cell));
}

/// Cell-granular pooled launch: one packaged job per suite×stand cell.
fn launch_pooled_cells<'a>(
    pool: &WorkerPool,
    campaign: &Campaign<'a, '_>,
) -> Result<CampaignHandle<'a>, CoreError> {
    let cells = package_cells(campaign.entries, campaign.stands)?;
    let n_cells = cells.len();
    let cancel = RunCancel::new(campaign.cancel.clone());
    let stop = campaign.stop_on_first_fail;
    let exec = campaign.exec;
    let (events_tx, events_rx) = mpsc::channel();
    let (results_tx, results_rx) = mpsc::channel();
    for cell in cells {
        let cancel = cancel.clone();
        let events = events_tx.clone();
        let results = results_tx.clone();
        pool.submit(Box::new(move || {
            run_packaged_cell(cell, &exec, &cancel, stop, &events, &results);
        }));
    }
    drop(events_tx);
    drop(results_tx);

    let run_token = cancel.run_token();
    Ok(CampaignHandle::new(
        EventStream::new(events_rx),
        run_token,
        Box::new(move || {
            let (slots, acknowledged) = collect(results_rx, n_cells);
            fold_cell_slots(slots, acknowledged)
        }),
    ))
}

/// Folds cell-granular merge slots into the deterministic outcome (missing
/// slots are cancelled cells), verifying every gap was an acknowledged
/// cancellation. Shared by the pooled and async cell-granular joins.
pub(crate) fn fold_cell_slots(
    slots: Vec<Option<CampaignCell>>,
    acknowledged: usize,
) -> Result<CampaignOutcome, CoreError> {
    let mut result = CampaignResult::default();
    let mut cancelled = 0usize;
    for slot in slots {
        match slot {
            Some(cell) => result.cells.push(cell),
            None => cancelled += 1,
        }
    }
    check_lost(cancelled, acknowledged)?;
    Ok(CampaignOutcome { result, cancelled })
}
