//! The [`Campaign`] builder: one validated description of a campaign run,
//! launchable on any [`CampaignExecutor`].

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use comptest_core::campaign::{validate_campaign, CampaignEntry, CampaignResult};
use comptest_core::error::CoreError;
use comptest_core::exec::ExecOptions;
use comptest_stand::TestStand;

use crate::cache::{CacheKeying, CampaignCache};
use crate::executor::{CampaignExecutor, KeyStore, PlanStore, ScriptStore};
use crate::handle::{CampaignHandle, CancelToken};
use crate::obs::{Recorder, SpanCat};

/// Scheduling granularity of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One job per (suite, stand) cell: a worker runs the whole suite.
    /// Lowest overhead, but one large workbook bounds wall-clock.
    #[default]
    Cell,
    /// One job per (suite, stand, test) triple: a large workbook's tests
    /// spread over all workers, and cancellation cuts in at test
    /// granularity.
    Test,
}

impl Granularity {
    /// The accepted `FromStr` spellings, for CLI error messages.
    pub const ACCEPTED: [&'static str; 2] = ["cell", "test"];
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Granularity::Cell => "cell",
            Granularity::Test => "test",
        })
    }
}

impl FromStr for Granularity {
    type Err = String;

    /// Parses a granularity name, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cell" => Ok(Granularity::Cell),
            "test" => Ok(Granularity::Test),
            _ => Err(format!(
                "unknown granularity {s:?}: expected one of {}",
                Granularity::ACCEPTED.join(", ")
            )),
        }
    }
}

/// One campaign, described once and launchable on any executor: the
/// entries × stands matrix plus execution options, scheduling granularity
/// and cancellation policy.
///
/// The builder owns *validation*: [`Campaign::launch`] rejects empty
/// matrices and duplicate stand names before any executor sees the
/// campaign ([`CoreError::InvalidCampaign`]), and every executor surfaces
/// the first codegen error before running a job. Fields are public so
/// executor implementations (including out-of-crate ones) can read the
/// whole description; the chainable methods are the intended way to set
/// them.
///
/// # Example
///
/// ```no_run
/// use comptest_core::campaign::CampaignEntry;
/// use comptest_engine::{Campaign, Granularity, PooledExecutor};
/// # fn demo(entries: &[CampaignEntry<'_>], stands: &[&comptest_stand::TestStand])
/// # -> Result<(), comptest_core::CoreError> {
/// let executor = PooledExecutor::new(4);
/// let mut handle = Campaign::new(entries, stands)
///     .granularity(Granularity::Test)
///     .stop_on_first_fail(true)
///     .launch(&executor)?;
/// for event in handle.events() {
///     eprintln!("{event:?}");
/// }
/// let outcome = handle.join()?;
/// println!("{}", outcome.result);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Campaign<'a, 'b> {
    /// Campaign entries (suite + device factory); major axis of the
    /// result matrix.
    pub entries: &'a [CampaignEntry<'b>],
    /// Stands; minor axis of the result matrix.
    pub stands: &'a [&'a TestStand],
    /// Per-test execution options.
    pub exec: ExecOptions,
    /// Scheduling granularity (default: [`Granularity::Cell`]).
    pub granularity: Granularity,
    /// Cancel remaining jobs as soon as one fails (or is not runnable).
    /// At [`Granularity::Cell`] a whole cell is the unit of cancellation;
    /// at [`Granularity::Test`] a single failing test cancels the rest,
    /// and the interrupted cell keeps its finished prefix of tests. Either
    /// way the result stays in deterministic order.
    pub stop_on_first_fail: bool,
    /// External cancellation signal, shared across every launch of this
    /// campaign. `stop_on_first_fail` trips a *per-run* latch instead, so
    /// one failed run never poisons a relaunch.
    pub cancel: CancelToken,
    /// Optional content-addressed campaign cache, consulted by every
    /// executor at job admission and fed on completion (see
    /// [`crate::cache`]). `None` (the default) runs everything cold.
    pub cache: Option<Arc<dyn CampaignCache>>,
    /// Audit mode for the cache: when `true`, cache hits never
    /// short-circuit — every cell executes anyway and
    /// [`CampaignHandle::join`] raises
    /// [`CoreError::CacheMismatch`] if any cached outcome diverged from
    /// the fresh execution.
    pub cache_verify: bool,
    /// How cells are keyed into the cache (default
    /// [`CacheKeying::Footprint`]): whole-artifact hashes, or per-cell
    /// dependency footprints that survive edits outside what a cell
    /// touches. See
    /// [the cache docs](crate::cache#what-invalidates-the-cache).
    pub cache_keying: CacheKeying,
    /// Author-supplied cache salt, folded into every footprint key (and
    /// recorded in stored footprints). Bump it to invalidate all
    /// footprint-keyed records at once — e.g. per firmware release.
    pub cache_salt: String,
    /// Observability recorder: disabled by default (zero cost), enabled
    /// via [`Campaign::recorder`]. See [`crate::obs`] for the metrics and
    /// tracing it collects.
    pub obs: Recorder,
    /// Fairness lane on a shared [`WorkerPool`](crate::WorkerPool)
    /// (default `0`). Campaigns launched concurrently on one pool with
    /// *distinct* lanes interleave round-robin instead of queueing behind
    /// each other — the `comptest serve` daemon assigns one lane per
    /// submitted campaign. Serial and async executors ignore it.
    pub lane: u64,
    /// Per-campaign plan store: one lazily resolved execution plan per
    /// (entry, test, stand) triple, shared across executors *and* across
    /// launches of this campaign value — relaunching (replay loops, warm
    /// cache runs, benches) never re-plans at admission.
    pub(crate) plans: PlanStore,
    /// Per-campaign script store: every entry's scripts are generated once
    /// (the codegen precheck of the first launch) and reused by later
    /// launches of this campaign value.
    pub(crate) scripts: ScriptStore,
    /// Per-campaign cache-key store: every cell's [`CellKey`]
    /// (suite/stand/DUT/exec hashes), computed once per campaign value on
    /// the first cached launch instead of re-hashed per launch.
    ///
    /// [`CellKey`]: comptest_core::hash::CellKey
    pub(crate) keys: KeyStore,
}

impl<'a, 'b> Campaign<'a, 'b> {
    /// A campaign over `entries` × `stands` with default options: default
    /// [`ExecOptions`], cell granularity, no early cancellation.
    pub fn new(entries: &'a [CampaignEntry<'b>], stands: &'a [&'a TestStand]) -> Self {
        Self {
            entries,
            stands,
            exec: ExecOptions::default(),
            granularity: Granularity::default(),
            stop_on_first_fail: false,
            cancel: CancelToken::new(),
            cache: None,
            cache_verify: false,
            cache_keying: CacheKeying::default(),
            cache_salt: String::new(),
            obs: Recorder::disabled(),
            lane: 0,
            plans: PlanStore::default(),
            scripts: ScriptStore::default(),
            keys: KeyStore::default(),
        }
    }

    /// Sets the per-test execution options (builder style).
    pub fn exec_options(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the scheduling granularity (builder style).
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Enables early cancellation on the first failed job (builder style).
    pub fn stop_on_first_fail(mut self, stop: bool) -> Self {
        self.stop_on_first_fail = stop;
        self
    }

    /// Installs an external cancellation token (builder style) — e.g. one
    /// shared with a ctrl-c handler. Cancelling it skips every job not yet
    /// started, in this and any later launch of the campaign.
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Installs a content-addressed campaign cache (builder style): every
    /// executor consults it at job admission (hits emit
    /// [`EngineEvent::CellCached`](crate::EngineEvent::CellCached) and
    /// merge byte-identical to a cold run) and stores executed outcomes on
    /// completion. See [`crate::cache`] for the key and record semantics.
    pub fn cache(mut self, cache: Arc<dyn CampaignCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables cache audit mode (builder style): cached cells re-execute
    /// anyway, executed outcomes are compared against the cached ones, and
    /// [`CampaignHandle::join`] raises [`CoreError::CacheMismatch`] on any
    /// divergence — the paper-style spot check that the content addressing
    /// covers every input. No effect without [`Campaign::cache`].
    pub fn cache_verify(mut self, verify: bool) -> Self {
        self.cache_verify = verify;
        self
    }

    /// Sets how cells are keyed into the cache (builder style). The
    /// default, [`CacheKeying::Footprint`], invalidates a cell only when
    /// something *it touches* changes; [`CacheKeying::Full`] restores
    /// whole-artifact keying. No effect without [`Campaign::cache`].
    pub fn cache_keying(mut self, keying: CacheKeying) -> Self {
        self.cache_keying = keying;
        self
    }

    /// Sets the author-supplied cache salt (builder style): an opaque
    /// string folded into every footprint key, so bumping it invalidates
    /// all footprint-keyed records at once. Ignored under
    /// [`CacheKeying::Full`].
    pub fn cache_salt(mut self, salt: impl Into<String>) -> Self {
        self.cache_salt = salt.into();
        self
    }

    /// Attaches an observability [`Recorder`] (builder style): every
    /// launch of this campaign then records metrics and trace spans into
    /// it, exportable after [`CampaignHandle::join`] via
    /// [`Recorder::metrics`] and [`Recorder::chrome_trace_json`]. The
    /// default is [`Recorder::disabled`] — zero recording cost, and
    /// results are byte-identical either way. Keep a clone of the
    /// recorder to export from.
    pub fn recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the fairness lane used when this campaign launches on a
    /// shared [`WorkerPool`](crate::WorkerPool) (builder style). Workers
    /// drain non-empty lanes round-robin, so concurrent campaigns on
    /// distinct lanes each make progress — a burst of tenants never
    /// starves the last one submitted. The default lane `0` reproduces
    /// plain FIFO behaviour for single-campaign use.
    pub fn lane(mut self, lane: u64) -> Self {
        self.lane = lane;
        self
    }

    /// Number of schedulable jobs at the configured granularity: whole
    /// suite×stand cells at [`Granularity::Cell`], single (entry, stand,
    /// test) triples at [`Granularity::Test`]. This is what a fresh
    /// per-campaign pool should be sized to (`workers.min(job_count)`) —
    /// one home for the computation, so callers and executors cannot
    /// drift.
    pub fn job_count(&self) -> usize {
        match self.granularity {
            Granularity::Cell => self.entries.len() * self.stands.len(),
            Granularity::Test => {
                self.entries
                    .iter()
                    .map(|e| e.suite.tests.len())
                    .sum::<usize>()
                    * self.stands.len()
            }
        }
    }

    /// Validates the campaign shape: at least one entry, at least one
    /// stand, no duplicate stand names. Called by [`Campaign::launch`];
    /// exposed for callers that want to fail fast before building an
    /// executor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCampaign`] for the first structural
    /// problem.
    pub fn validate(&self) -> Result<(), CoreError> {
        validate_campaign(self.entries, self.stands)
    }

    /// Validates the campaign and launches it on `executor`, returning a
    /// [`CampaignHandle`] that streams typed events, supports cooperative
    /// cancellation and joins into the deterministic result.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCampaign`] for structural problems and
    /// [`CoreError::Codegen`] for invalid suites — both before any job
    /// runs.
    pub fn launch<E: CampaignExecutor + ?Sized>(
        &self,
        executor: &E,
    ) -> Result<CampaignHandle<'a>, CoreError> {
        self.validate()?;
        let span = self.obs.span_begin(SpanCat::Campaign, || "campaign".into());
        match executor.launch(self) {
            Ok(handle) => Ok(handle.with_observation(self.obs.clone(), span)),
            Err(error) => {
                self.obs.span_end(span, || Some("launch-error".into()));
                Err(error)
            }
        }
    }

    /// Convenience: launch on `executor`, discard events, join, and return
    /// the bare result matrix.
    ///
    /// # Errors
    ///
    /// Everything [`Campaign::launch`] and [`CampaignHandle::join`] raise.
    pub fn run<E: CampaignExecutor + ?Sized>(
        &self,
        executor: &E,
    ) -> Result<CampaignResult, CoreError> {
        Ok(self.launch(executor)?.join()?.result)
    }
}
