//! A minimal, dependency-free JSON layer shared by the on-disk cache
//! records, the metrics exports and the `comptest-server` wire protocol.
//!
//! The build container has no registry access, so `serde_json` is not
//! available; this module implements exactly the subset those codecs
//! need. It started life inside `engine::cache` and was hoisted here once
//! the campaign service needed the same framing for its
//! newline-delimited JSON protocol. Two deliberate deviations from a
//! general-purpose library:
//!
//! * numbers keep their **lexeme** (`Value::Number(String)`) instead of
//!   being parsed into `f64`, so `u64` values round-trip exactly and each
//!   codec decides per field how to interpret digits;
//! * the parser is hardened for *hostile* input — cache files can be
//!   corrupted or truncated arbitrarily, and network peers can send
//!   anything at all; a bad document must read as a decode error (a cache
//!   miss, a protocol error frame), never a panic or a stack overflow
//!   (nesting is depth-limited).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Cache records nest a handful
/// of levels; anything deeper is hostile input.
const MAX_DEPTH: usize = 96;

/// One JSON value. Objects use a [`BTreeMap`], which makes serialisation
/// order deterministic (byte-identical files for equal records).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its lexeme (`"42"`, `"-1"`, `"6.5e3"`).
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

/// A decode problem: malformed JSON or a record with an unexpected shape.
/// Carries a short description for diagnostics; the cache layer maps any
/// decode error to a miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Value {
    /// Convenience constructor for an unsigned integer field.
    pub fn u64(v: u64) -> Value {
        Value::Number(v.to_string())
    }

    /// Convenience constructor for a string field.
    pub fn str(v: impl Into<String>) -> Value {
        Value::String(v.into())
    }

    /// The value as `u64`, if it is a plain unsigned integer number.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::Number(lexeme) => lexeme
                .parse::<u64>()
                .map_err(|_| JsonError(format!("expected unsigned integer, got {lexeme:?}"))),
            other => err(format!("expected number, got {}", other.kind())),
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {}", other.kind())),
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::String(s) => Ok(s),
            other => err(format!("expected string, got {}", other.kind())),
        }
    }

    /// The value as a slice of array elements.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            other => err(format!("expected array, got {}", other.kind())),
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Result<&BTreeMap<String, Value>, JsonError> {
        match self {
            Value::Object(map) => Ok(map),
            other => err(format!("expected object, got {}", other.kind())),
        }
    }

    /// A required object field.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Value, JsonError> {
        self.as_object()?
            .get(name)
            .ok_or_else(|| JsonError(format!("missing field {name:?}")))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Serialises the value (compact, deterministic field order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(lexeme) => out.push_str(lexeme),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err("trailing bytes after document");
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => err(format!(
                "unexpected byte {:?} at {}",
                other as char, self.pos
            )),
            None => err("unexpected end of input"),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return err("number without digits");
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return err("decimal point without digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return err("exponent without digits");
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("non-utf8 number".into()))?;
        Ok(Value::Number(lexeme.to_owned()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError("non-utf8 \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            // Surrogates and other unassignable code points
                            // become the replacement character: cache records
                            // never contain them, so this only fires on
                            // corrupt files (which decode as a miss anyway).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 3; // +1 below
                        }
                        _ => return err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // The ASCII fast path: record content is almost
                    // entirely ASCII, and consuming it byte-wise keeps the
                    // parser linear (validating the whole remaining input
                    // per character would be quadratic in record size).
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode one multi-byte UTF-8 scalar: at most 4 bytes
                    // need validating, never the rest of the document.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated")
                        }
                        Err(_) => return err("non-utf8 string content"),
                    };
                    let c = s.chars().next().ok_or_else(|| JsonError("empty".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Encodes an `f64` as a JSON *string* whose content round-trips exactly:
/// Rust's shortest-representation `Display` for finite values, and the
/// spellings `f64::from_str` accepts for the specials (`inf`, `-inf`,
/// `NaN`). JSON numbers cannot carry infinities, and execution bounds are
/// routinely `±INF`.
pub fn f64_value(v: f64) -> Value {
    Value::String(format!("{v}"))
}

/// Decodes an [`f64_value`] string.
pub fn f64_from(value: &Value) -> Result<f64, JsonError> {
    let s = value.as_str()?;
    s.parse::<f64>()
        .map_err(|_| JsonError(format!("bad f64 {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let mut obj = BTreeMap::new();
        obj.insert("n".to_owned(), Value::u64(42));
        obj.insert("s".to_owned(), Value::str("a\"\\\nb\tc\u{1}"));
        obj.insert(
            "a".to_owned(),
            Value::Array(vec![Value::Null, Value::Bool(true), f64_value(0.1)]),
        );
        let doc = Value::Object(obj);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn f64_strings_roundtrip_exactly() {
        for v in [
            0.0,
            -0.0,
            0.1,
            11.823529411764707,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-300,
            f64::MAX,
        ] {
            let round = f64_from(&f64_value(v)).unwrap();
            assert_eq!(v.to_bits(), round.to_bits(), "{v}");
        }
        assert!(f64_from(&f64_value(f64::NAN)).unwrap().is_nan());
    }

    #[test]
    fn hostile_inputs_error_without_panicking() {
        for text in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\":}",
            "nul",
            "123abc",
            "-",
            "1.",
            "1e",
            "[1,]",
            "{\"a\" 1}",
            "\"\\u12\"",
            "\"\\q\"",
            "[[[",
            "{}{}",
            "\u{0}",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail to parse");
        }
        // Deep nesting is rejected, not recursed into oblivion.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn shape_accessors_report_mismatches() {
        let v = parse("{\"n\": 3, \"s\": \"x\", \"a\": [1]}").unwrap();
        assert_eq!(v.field("n").unwrap().as_u64().unwrap(), 3);
        assert_eq!(v.field("s").unwrap().as_str().unwrap(), "x");
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.field("missing").is_err());
        assert!(v.field("s").unwrap().as_u64().is_err());
        assert!(v.field("n").unwrap().as_array().is_err());
        assert!(parse("[-1]").unwrap().as_array().unwrap()[0]
            .as_u64()
            .is_err());
    }
}
