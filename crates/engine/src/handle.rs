//! The cancellable side of a launched campaign: [`CancelToken`],
//! [`EventStream`], [`CampaignOutcome`] and [`CampaignHandle`].

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;

use comptest_core::campaign::CampaignResult;
use comptest_core::error::CoreError;

use crate::events::EngineEvent;
use crate::obs::{Counter, Recorder, SpanHandle};

/// A shared cooperative-cancellation latch.
///
/// Cloning is cheap (an `Arc` around one flag) and every clone observes the
/// same state, so a token handed to a ctrl-c handler, a watchdog thread or
/// a `stop-on-predicate` check cancels the campaign it was built into.
/// Cancellation is cooperative and latching: workers check the token
/// between jobs (a test that already started runs to completion, keeping
/// results deterministic), and a cancelled token never resets.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches cancellation: every clone of this token reports cancelled
    /// from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] ran on this token or any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The cancellation state of one launched run: the campaign's external
/// token OR-ed with a per-run latch. `stop_on_first_fail` (and
/// [`CampaignHandle::cancel`]) trip only the per-run latch, so a failed run
/// never poisons later launches of the same [`Campaign`](crate::Campaign);
/// the external token cancels every run it is shared with.
#[derive(Debug, Clone)]
pub(crate) struct RunCancel {
    external: CancelToken,
    run: CancelToken,
}

impl RunCancel {
    pub(crate) fn new(external: CancelToken) -> Self {
        Self {
            external,
            run: CancelToken::new(),
        }
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.run.is_cancelled() || self.external.is_cancelled()
    }

    /// Cancels this run only.
    pub(crate) fn trip(&self) {
        self.run.cancel();
    }

    /// The per-run token (what [`CampaignHandle::cancel_token`] hands out).
    pub(crate) fn run_token(&self) -> CancelToken {
        self.run.clone()
    }
}

/// A blocking, typed iterator over a campaign's [`EngineEvent`]s — the
/// builder API's replacement for the bare `mpsc::Receiver` the deprecated
/// entry points took.
///
/// The stream ends when the last worker finishes (or acknowledges
/// cancellation); it is `Send`, so it can be moved to a printer thread
/// while the launching thread joins the handle. Dropping it without
/// draining is always safe.
#[derive(Debug)]
pub struct EventStream {
    rx: Option<Receiver<EngineEvent>>,
}

impl EventStream {
    pub(crate) fn new(rx: Receiver<EngineEvent>) -> Self {
        Self { rx: Some(rx) }
    }

    /// A stream that yields nothing (what a second
    /// [`CampaignHandle::events`] call returns).
    pub(crate) fn empty() -> Self {
        Self { rx: None }
    }
}

impl Iterator for EventStream {
    type Item = EngineEvent;

    fn next(&mut self) -> Option<EngineEvent> {
        self.rx.as_ref()?.recv().ok()
    }
}

/// Everything a joined campaign produced: the deterministic result matrix
/// plus how many jobs were cancelled before they ran (whole cells at cell
/// granularity, single tests at test granularity).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// The merged result, in canonical (cell, test) order — byte-identical
    /// across executors and worker counts.
    pub result: CampaignResult,
    /// Jobs cancelled by `stop_on_first_fail` or a [`CancelToken`] before
    /// they ran.
    pub cancelled: usize,
}

type JoinFn<'a> = Box<dyn FnOnce() -> Result<CampaignOutcome, CoreError> + 'a>;

/// A launched campaign: typed event stream, cooperative cancellation, and
/// the join that folds worker outcomes into the deterministic
/// [`CampaignResult`].
///
/// Returned by [`Campaign::launch`](crate::Campaign::launch). Consume the
/// events (optional), then call [`CampaignHandle::join`] — dropping the
/// handle without joining leaves queued pool jobs running but discards
/// their outcomes.
pub struct CampaignHandle<'a> {
    events: Option<EventStream>,
    cancel: CancelToken,
    join: JoinFn<'a>,
    /// The campaign's recorder and open campaign span, finalized at join
    /// (attached by [`Campaign::launch`](crate::Campaign::launch)).
    obs: Option<(Recorder, SpanHandle)>,
}

impl<'a> CampaignHandle<'a> {
    pub(crate) fn new(events: EventStream, cancel: CancelToken, join: JoinFn<'a>) -> Self {
        Self {
            events: Some(events),
            cancel,
            join,
            obs: None,
        }
    }

    /// Attaches the campaign's recorder and open campaign span, to be
    /// finalized (cancelled-jobs counter, campaign wall time, span close)
    /// when the handle joins. Dropping the handle without joining leaves
    /// the campaign span open.
    pub(crate) fn with_observation(mut self, obs: Recorder, span: SpanHandle) -> Self {
        self.obs = Some((obs, span));
        self
    }

    /// Takes the typed event stream. The first call returns the live
    /// stream; later calls return an empty one (events are a single
    /// consumer resource).
    pub fn events(&mut self) -> EventStream {
        self.events.take().unwrap_or_else(EventStream::empty)
    }

    /// A clone of this run's cancellation token, for handing to signal
    /// handlers or watchdogs.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests cooperative cancellation of this run: jobs not yet started
    /// are skipped (and counted in [`CampaignOutcome::cancelled`]); running
    /// jobs finish, keeping the result's deterministic prefix-truncation
    /// semantics.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until every outstanding job reported, then folds the
    /// outcomes into the deterministic result.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::JobsLost`] when jobs vanished without
    /// cancellation (a worker died mid-job) — never a silently truncated
    /// result.
    pub fn join(self) -> Result<CampaignOutcome, CoreError> {
        let outcome = (self.join)();
        if let Some((obs, span)) = self.obs {
            match &outcome {
                Ok(outcome) => {
                    obs.add(Counter::JobsCancelled, outcome.cancelled as u64);
                    let cancelled = outcome.cancelled;
                    obs.span_end(span, || Some(format!("{cancelled} cancelled")));
                }
                Err(_) => obs.span_end(span, || Some("error".into())),
            }
        }
        outcome
    }
}

impl fmt::Debug for CampaignHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignHandle")
            .field("events_taken", &self.events.is_none())
            .field("cancelled", &self.cancel.is_cancelled())
            .finish_non_exhaustive()
    }
}
