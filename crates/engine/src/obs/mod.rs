//! Campaign observability: a lock-cheap metrics registry, span tracing
//! with a campaign → cell → test → step hierarchy, and exporters for
//! Chrome trace-event JSON and metrics snapshots.
//!
//! The entry point is [`Recorder`]. A disabled recorder (the default) is
//! a `None` behind a cheap `Clone` — every instrumentation hook is a
//! single branch and the executors take their uninstrumented fast paths,
//! so campaigns that never opt in pay nothing. [`Recorder::enabled`]
//! turns everything on:
//!
//! ```
//! use comptest_core::campaign::CampaignEntry;
//! use comptest_engine::{Campaign, Recorder, SerialExecutor};
//! # use comptest_sheets::Workbook;
//! # use comptest_stand::TestStand;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let wb = Workbook::parse_str("o.cts", "\
//! # [signals]
//! # name,    kind,                     direction, init
//! # DS_FL,   pin:DS_FL,                input,     Closed
//! # INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,
//! #
//! # [status]
//! # status, method,  attribut, var,   nom, min,  max
//! # Open,   put_r,   r,        ,      0,   0,    2
//! # Closed, put_r,   r,        ,      INF, 5000, INF
//! # Lo,     get_u,   u,        UBATT, 0,   0,    0.3
//! # Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1
//! #
//! # [test night_on]
//! # step, dt,  DS_FL, INT_ILL
//! # 0,    0.5, Open,  Ho
//! # ")?;
//! # let stand = TestStand::parse_str("a.stand", comptest_core::PAPER_STAND_A)?;
//! # let entries = vec![CampaignEntry {
//! #     suite: &wb.suite,
//! #     device_factory: Box::new(|| {
//! #         comptest_dut::ecus::interior_light::device(Default::default())
//! #     }),
//! # }];
//! # let stands = [&stand];
//! let obs = Recorder::enabled();
//! let outcome = Campaign::new(&entries, &stands)
//!     .recorder(obs.clone())
//!     .run(&SerialExecutor)?;
//! let metrics = obs.metrics().unwrap();
//! assert_eq!(
//!     metrics.counter("jobs_executed") + metrics.counter("jobs_cached"),
//!     metrics.counter("jobs_planned"),
//! );
//! let trace = obs.chrome_trace_json().unwrap(); // load in ui.perfetto.dev
//! assert!(trace.starts_with('['));
//! # Ok(())
//! # }
//! ```
//!
//! Timestamps and durations captured here are **export-only**: they are
//! never folded into results, cache keys, or cache records, so enabling
//! observability cannot change a campaign's outcome — the executor
//! conformance suite proves results stay byte-identical either way.

mod metrics;
mod trace;

use std::sync::Arc;
use std::time::{Duration, Instant};

use comptest_core::StepProbe;
use comptest_model::SimTime;

pub use metrics::{GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, PhaseSnapshot};

pub(crate) use metrics::{Counter, Gauge, Histogram, Phase};
pub(crate) use trace::SpanCat;

use metrics::Registry;
use trace::{SpanName, TraceBuf, TraceRecord};

/// Everything one enabled recorder owns; shared via `Arc` between the
/// campaign, its workers, and whoever exports at the end.
#[derive(Debug)]
struct ObsCore {
    /// All timestamps are microseconds since this instant.
    epoch: Instant,
    registry: Registry,
    trace: TraceBuf,
}

impl ObsCore {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            registry: Registry::new(),
            trace: TraceBuf::new(),
        }
    }

    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// Handle to the observability subsystem: metrics registry + span
/// tracing + exporters.
///
/// Cloning is cheap (an `Arc` clone, or nothing when disabled); all
/// clones share one registry and span buffer. Attach a clone to a
/// campaign with [`Campaign::recorder`](crate::Campaign::recorder) and
/// keep one to export from afterwards. See the [module docs](self) for
/// a worked example and the crate docs for the counter glossary.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    core: Option<Arc<ObsCore>>,
}

/// Token for an open span, returned by `span_begin` and consumed by
/// `span_end`. Dropping a handle without ending it leaves the span open
/// (visible as `spans_opened != spans_closed`).
///
/// The open-span state is boxed so a handle is one nullable pointer:
/// executors embed handles in per-job state (the async executor keeps
/// thousands in its timing wheel, moving them on every sift), so the
/// handle must stay pointer-sized — especially when disabled.
#[derive(Debug)]
pub(crate) struct SpanHandle(Option<Box<OpenSpan>>);

#[derive(Debug)]
struct OpenSpan {
    cat: SpanCat,
    name: SpanName,
    /// Pair id for async-rendered spans; unused for complete events.
    id: u64,
    /// Track of the opening thread (complete events render here).
    track: u32,
    begin_micros: u64,
}

impl Recorder {
    /// A recorder that records nothing, at no cost. Also the `Default`.
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// A live recorder; share clones with campaigns, export from any of
    /// them.
    pub fn enabled() -> Self {
        Self {
            core: Some(Arc::new(ObsCore::new())),
        }
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Snapshot of every counter, gauge, phase timing, and histogram;
    /// `None` when disabled.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.core.as_ref().map(|core| core.registry.snapshot())
    }

    /// The recorded spans as Chrome trace-event JSON (an array, loadable
    /// in `chrome://tracing` or <https://ui.perfetto.dev>); `None` when
    /// disabled.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.core.as_ref().map(|core| core.trace.chrome_trace())
    }

    /// Number of span records captured so far (begin/end pairs count as
    /// two); `0` when disabled.
    pub fn span_events(&self) -> usize {
        self.core.as_ref().map_or(0, |core| core.trace.len())
    }

    pub(crate) fn add(&self, counter: Counter, n: u64) {
        if let Some(core) = &self.core {
            core.registry.add(counter, n);
        }
    }

    pub(crate) fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    pub(crate) fn gauge_add(&self, gauge: Gauge, delta: i64) {
        if let Some(core) = &self.core {
            core.registry.gauge_add(gauge, delta);
        }
    }

    /// Times `f` under the `report` phase accumulator — the one phase
    /// whose work (rendering tables, JUnit, exports) happens outside the
    /// engine, after [`CampaignHandle::join`](crate::CampaignHandle::join).
    /// A disabled recorder just calls `f`.
    pub fn time_report<T>(&self, f: impl FnOnce() -> T) -> T {
        self.time_phase(Phase::Report, f)
    }

    /// Times `f` as one call of `phase`, recording a complete span on the
    /// calling thread's track.
    pub(crate) fn time_phase<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let Some(core) = &self.core else { return f() };
        let begin = Instant::now();
        let ts_micros = core.now_micros();
        let out = f();
        let wall = begin.elapsed();
        core.registry.phase_add(phase, wall);
        core.registry.add(Counter::SpansOpened, 1);
        core.registry.add(Counter::SpansClosed, 1);
        core.trace.push(TraceRecord::Complete {
            cat: SpanCat::Phase,
            name: SpanName::Static(phase.name()),
            track: core.trace.track(),
            ts_micros,
            dur_micros: wall.as_micros() as u64,
        });
        out
    }

    /// Opens a span. `name` is only evaluated when enabled, so callers
    /// can format freely.
    pub(crate) fn span_begin(&self, cat: SpanCat, name: impl FnOnce() -> String) -> SpanHandle {
        let Some(core) = &self.core else {
            return SpanHandle(None);
        };
        let name = SpanName::Owned(name().into());
        let id = core.trace.next_id();
        let track = core.trace.track();
        let begin_micros = core.now_micros();
        core.registry.add(Counter::SpansOpened, 1);
        if cat.renders_async() {
            core.trace.push(TraceRecord::Begin {
                cat,
                name: name.clone(),
                id,
                track,
                ts_micros: begin_micros,
            });
        }
        SpanHandle(Some(Box::new(OpenSpan {
            cat,
            name,
            id,
            track,
            begin_micros,
        })))
    }

    /// Closes a span; `status` is only evaluated when the span is live.
    pub(crate) fn span_end(&self, handle: SpanHandle, status: impl FnOnce() -> Option<String>) {
        let (Some(core), Some(open)) = (&self.core, handle.0) else {
            return;
        };
        let ts_micros = core.now_micros();
        core.registry.add(Counter::SpansClosed, 1);
        if open.cat == SpanCat::Campaign {
            core.registry.add(
                Counter::CampaignWallMicros,
                ts_micros.saturating_sub(open.begin_micros),
            );
        }
        if open.cat.renders_async() {
            core.trace.push(TraceRecord::End {
                cat: open.cat,
                name: open.name,
                id: open.id,
                track: core.trace.track(),
                ts_micros,
                status: status(),
            });
        } else {
            core.trace.push(TraceRecord::Complete {
                cat: open.cat,
                name: open.name,
                track: open.track,
                ts_micros: open.begin_micros,
                dur_micros: ts_micros.saturating_sub(open.begin_micros),
            });
        }
    }

    /// Records one executed plan step: a complete span on the worker's
    /// track, the step histogram/counters, and the execute-phase and
    /// worker-utilization accumulators (this is the *only* place those
    /// accumulate, keeping them uniform across executors).
    pub(crate) fn step_executed(&self, nr: u32, wall: Duration) {
        let Some(core) = &self.core else { return };
        let wall_micros = wall.as_micros() as u64;
        let ts_micros = core.now_micros().saturating_sub(wall_micros);
        core.registry.add(Counter::StepsExecuted, 1);
        core.registry.add(Counter::WorkerBusyMicros, wall_micros);
        core.registry.add(Counter::SpansOpened, 1);
        core.registry.add(Counter::SpansClosed, 1);
        core.registry.phase_add(Phase::Execute, wall);
        core.registry.observe(Histogram::StepWall, wall_micros);
        core.trace.push(TraceRecord::Complete {
            cat: SpanCat::Step,
            name: SpanName::StepNr(nr),
            track: core.trace.track(),
            ts_micros,
            dur_micros: wall_micros,
        });
    }

    /// Records one executed test's wall-clock and simulated durations.
    pub(crate) fn test_timing(&self, wall: Duration, sim: SimTime) {
        let Some(core) = &self.core else { return };
        let wall_micros = wall.as_micros() as u64;
        let sim_micros = sim.as_micros();
        core.registry.add(Counter::TestWallMicrosTotal, wall_micros);
        core.registry.add(Counter::TestSimMicrosTotal, sim_micros);
        core.registry.observe(Histogram::TestWall, wall_micros);
        core.registry.observe(Histogram::TestSim, sim_micros);
    }

    /// A [`StepProbe`] feeding this recorder, for attaching to
    /// [`TestRun`](comptest_core::TestRun)s; `None` when disabled.
    pub(crate) fn step_probe(&self) -> Option<Arc<dyn StepProbe>> {
        self.core.as_ref()?;
        Some(Arc::new(StepRecorder { obs: self.clone() }))
    }
}

/// Adapter wiring `core`'s step hook into the recorder.
#[derive(Debug)]
struct StepRecorder {
    obs: Recorder,
}

impl StepProbe for StepRecorder {
    fn step_executed(&self, nr: u32, _sim_end: SimTime, wall: Duration) {
        self.obs.step_executed(nr, wall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert_and_free_of_output() {
        let obs = Recorder::disabled();
        assert!(!obs.is_enabled());
        obs.inc(Counter::JobsExecuted);
        let span = obs.span_begin(SpanCat::Test, || unreachable!("name not evaluated"));
        obs.span_end(span, || unreachable!("status not evaluated"));
        assert_eq!(obs.span_events(), 0);
        assert!(obs.metrics().is_none());
        assert!(obs.chrome_trace_json().is_none());
        assert!(obs.step_probe().is_none());
    }

    #[test]
    fn spans_balance_and_campaign_wall_accumulates() {
        let obs = Recorder::enabled();
        let campaign = obs.span_begin(SpanCat::Campaign, || "campaign".into());
        let test = obs.span_begin(SpanCat::Test, || "suite::t".into());
        obs.span_end(test, || Some("pass".into()));
        obs.time_phase(Phase::Plan, || ());
        obs.step_executed(3, Duration::from_micros(40));
        obs.test_timing(Duration::from_micros(90), SimTime::from_micros(1_000_000));
        obs.span_end(campaign, || None);

        let snap = obs.metrics().unwrap();
        assert_eq!(snap.counter("spans_opened"), snap.counter("spans_closed"));
        assert_eq!(snap.counter("spans_opened"), 4);
        assert_eq!(snap.counter("steps_executed"), 1);
        assert_eq!(snap.counter("worker_busy_micros"), 40);
        assert_eq!(snap.counter("test_sim_micros_total"), 1_000_000);
        assert_eq!(snap.phases["plan"].calls, 1);
        assert_eq!(snap.phases["execute"].micros, 40);
        // campaign span + test pair + phase + step, plus 2 metadata events.
        assert_eq!(obs.span_events(), 5);
        let trace = obs.chrome_trace_json().unwrap();
        crate::cache::json::parse(&trace).expect("valid JSON");
    }

    #[test]
    fn step_probe_feeds_the_registry() {
        let obs = Recorder::enabled();
        let probe = obs.step_probe().unwrap();
        probe.step_executed(0, SimTime::from_micros(10), Duration::from_micros(7));
        let snap = obs.metrics().unwrap();
        assert_eq!(snap.counter("steps_executed"), 1);
        assert_eq!(snap.histograms["step_wall_micros"].count, 1);
    }
}
