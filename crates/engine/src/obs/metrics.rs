//! The lock-cheap metrics registry behind [`Recorder`](super::Recorder):
//! fixed sets of atomic counters, gauges (current + high-water), phase
//! accumulators and fixed-bucket histograms, snapshotted into the public
//! [`MetricsSnapshot`].
//!
//! Everything on the hot path is a relaxed atomic op; names and bucket
//! bounds are compile-time constants, so recording a metric never
//! allocates or locks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

use crate::cache::json::Value;

/// Monotonic event counters. The names (see [`Counter::name`]) are the
/// stable identifiers exported in the metrics JSON and summary table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Counter {
    /// Jobs the launch planned at its granularity (cells or tests).
    JobsPlanned,
    /// Jobs that executed (including not-runnable planning failures).
    JobsExecuted,
    /// Jobs served from the campaign cache instead of executing.
    JobsCached,
    /// Jobs cancelled before they ran (or abandoned at a step boundary).
    JobsCancelled,
    /// Remote jobs re-dispatched after a worker died mid-job. Each retry
    /// re-queues the same planned job, so the invariant `jobs_executed +
    /// jobs_cached + jobs_cancelled == jobs_planned` stays balanced —
    /// retries are extra attempts, not extra jobs.
    JobsRetried,
    /// Individual tests whose outcome was determined by execution.
    TestsExecuted,
    /// Plan steps executed across all runs.
    StepsExecuted,
    /// Cache admissions served from a record.
    CacheHits,
    /// Cache hits served from binary-format records (subset of
    /// `cache_hits`; format-less caches count only the total).
    CacheHitsBin,
    /// Cache hits served from JSON-format records (subset of
    /// `cache_hits`).
    CacheHitsJson,
    /// Cache admissions that had to execute (absent, undetermined record,
    /// or verify mode).
    CacheMisses,
    /// Cache entries that existed but were corrupt/truncated/wrong-version.
    CacheCorruptEntries,
    /// Encoded record bytes read from the cache at preload — what the
    /// `cache_preload` phase cost buys.
    CacheBytesRead,
    /// Encoded record bytes written to the cache by stores.
    CacheBytesWritten,
    /// Trace spans opened.
    SpansOpened,
    /// Trace spans closed.
    SpansClosed,
    /// Wall-clock microseconds workers spent executing steps.
    WorkerBusyMicros,
    /// Wall-clock microseconds from launch to join.
    CampaignWallMicros,
    /// Total wall-clock microseconds across executed tests.
    TestWallMicrosTotal,
    /// Total simulated microseconds across executed tests.
    TestSimMicrosTotal,
    /// Cache hits admitted under footprint keying (subset of `cache_hits`;
    /// zero when the campaign keys on full hashes).
    CacheHitsFootprint,
    /// Cells whose preload lookup missed — the cells the campaign will
    /// (re-)execute because no valid record matched their key.
    CellsInvalidated,
    /// Encoded footprint bytes attached to this campaign's cells.
    FootprintBytes,
}

impl Counter {
    pub(crate) const ALL: [Counter; 23] = [
        Counter::JobsPlanned,
        Counter::JobsExecuted,
        Counter::JobsCached,
        Counter::JobsCancelled,
        Counter::JobsRetried,
        Counter::TestsExecuted,
        Counter::StepsExecuted,
        Counter::CacheHits,
        Counter::CacheHitsBin,
        Counter::CacheHitsJson,
        Counter::CacheMisses,
        Counter::CacheCorruptEntries,
        Counter::CacheBytesRead,
        Counter::CacheBytesWritten,
        Counter::SpansOpened,
        Counter::SpansClosed,
        Counter::WorkerBusyMicros,
        Counter::CampaignWallMicros,
        Counter::TestWallMicrosTotal,
        Counter::TestSimMicrosTotal,
        Counter::CacheHitsFootprint,
        Counter::CellsInvalidated,
        Counter::FootprintBytes,
    ];

    pub(crate) fn name(self) -> &'static str {
        match self {
            Counter::JobsPlanned => "jobs_planned",
            Counter::JobsExecuted => "jobs_executed",
            Counter::JobsCached => "jobs_cached",
            Counter::JobsCancelled => "jobs_cancelled",
            Counter::JobsRetried => "jobs_retried",
            Counter::TestsExecuted => "tests_executed",
            Counter::StepsExecuted => "steps_executed",
            Counter::CacheHits => "cache_hits",
            Counter::CacheHitsBin => "cache_hits_bin",
            Counter::CacheHitsJson => "cache_hits_json",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheCorruptEntries => "cache_corrupt_entries",
            Counter::CacheBytesRead => "cache_bytes_read",
            Counter::CacheBytesWritten => "cache_bytes_written",
            Counter::SpansOpened => "spans_opened",
            Counter::SpansClosed => "spans_closed",
            Counter::WorkerBusyMicros => "worker_busy_micros",
            Counter::CampaignWallMicros => "campaign_wall_micros",
            Counter::TestWallMicrosTotal => "test_wall_micros_total",
            Counter::TestSimMicrosTotal => "test_sim_micros_total",
            Counter::CacheHitsFootprint => "cache_hits_footprint",
            Counter::CellsInvalidated => "cells_invalidated",
            Counter::FootprintBytes => "footprint_bytes",
        }
    }
}

/// Instantaneous values with high-water tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Gauge {
    /// Jobs handed to an executor but not yet started (pool backlog /
    /// async admission queue).
    QueueDepth,
    /// Jobs currently executing (blocking executors) or parked on a
    /// sim-time wheel (async executor).
    InflightJobs,
    /// Worker threads (pool size, shard count, or 1 for serial).
    Workers,
}

impl Gauge {
    pub(crate) const ALL: [Gauge; 3] = [Gauge::QueueDepth, Gauge::InflightJobs, Gauge::Workers];

    pub(crate) fn name(self) -> &'static str {
        match self {
            Gauge::QueueDepth => "queue_depth",
            Gauge::InflightJobs => "inflight_jobs",
            Gauge::Workers => "workers",
        }
    }
}

/// Launch/run phases whose wall-clock time is accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Script generation (the codegen precheck; cached per campaign).
    Codegen,
    /// Suite/stand/DUT/exec-options hashing for the `CellKey` sweep
    /// (cached per campaign).
    Hash,
    /// Cache record pre-loading on the launch thread.
    CachePreload,
    /// Execution-plan resolution (cached per (entry, test, stand) slot).
    Plan,
    /// Step execution on workers (sums across threads, so it can exceed
    /// the campaign wall time).
    Execute,
    /// Report rendering (recorded by the CLI after join).
    Report,
}

impl Phase {
    pub(crate) const ALL: [Phase; 6] = [
        Phase::Codegen,
        Phase::Hash,
        Phase::CachePreload,
        Phase::Plan,
        Phase::Execute,
        Phase::Report,
    ];

    pub(crate) fn name(self) -> &'static str {
        match self {
            Phase::Codegen => "codegen",
            Phase::Hash => "hash",
            Phase::CachePreload => "cache_preload",
            Phase::Plan => "plan",
            Phase::Execute => "execute",
            Phase::Report => "report",
        }
    }
}

/// Fixed-bucket duration histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Histogram {
    /// Wall-clock time per executed test.
    TestWall,
    /// Simulated time per executed test.
    TestSim,
    /// Wall-clock time per executed step.
    StepWall,
}

impl Histogram {
    pub(crate) const ALL: [Histogram; 3] =
        [Histogram::TestWall, Histogram::TestSim, Histogram::StepWall];

    pub(crate) fn name(self) -> &'static str {
        match self {
            Histogram::TestWall => "test_wall_micros",
            Histogram::TestSim => "test_sim_micros",
            Histogram::StepWall => "step_wall_micros",
        }
    }
}

/// Upper bucket bounds in microseconds (`<=`); values above the last bound
/// land in the overflow bucket.
const BUCKET_BOUNDS_MICROS: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

#[derive(Debug, Default)]
struct GaugeCell {
    current: AtomicI64,
    max: AtomicI64,
}

#[derive(Debug, Default)]
struct PhaseCell {
    micros: AtomicU64,
    calls: AtomicU64,
}

#[derive(Debug)]
struct HistogramCell {
    /// One slot per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self {
            buckets: (0..=BUCKET_BOUNDS_MICROS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

/// The registry proper: one cell per metric, all atomics.
#[derive(Debug)]
pub(crate) struct Registry {
    counters: Vec<AtomicU64>,
    gauges: Vec<GaugeCell>,
    phases: Vec<PhaseCell>,
    histograms: Vec<HistogramCell>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Self {
            counters: (0..Counter::ALL.len()).map(|_| AtomicU64::new(0)).collect(),
            gauges: (0..Gauge::ALL.len())
                .map(|_| GaugeCell::default())
                .collect(),
            phases: (0..Phase::ALL.len())
                .map(|_| PhaseCell::default())
                .collect(),
            histograms: (0..Histogram::ALL.len())
                .map(|_| HistogramCell::default())
                .collect(),
        }
    }

    pub(crate) fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn gauge_add(&self, gauge: Gauge, delta: i64) {
        let cell = &self.gauges[gauge as usize];
        let now = cell.current.fetch_add(delta, Ordering::Relaxed) + delta;
        if delta > 0 {
            cell.max.fetch_max(now, Ordering::Relaxed);
        }
    }

    pub(crate) fn phase_add(&self, phase: Phase, wall: Duration) {
        let cell = &self.phases[phase as usize];
        cell.micros
            .fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
        cell.calls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe(&self, histogram: Histogram, micros: u64) {
        let cell = &self.histograms[histogram as usize];
        let slot = BUCKET_BOUNDS_MICROS
            .iter()
            .position(|&le| micros <= le)
            .unwrap_or(BUCKET_BOUNDS_MICROS.len());
        cell.buckets[slot].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name(), self.counters[c as usize].load(Ordering::Relaxed)))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| {
                    let cell = &self.gauges[g as usize];
                    (
                        g.name(),
                        GaugeSnapshot {
                            current: cell.current.load(Ordering::Relaxed),
                            max: cell.max.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
            phases: Phase::ALL
                .iter()
                .map(|&p| {
                    let cell = &self.phases[p as usize];
                    (
                        p.name(),
                        PhaseSnapshot {
                            micros: cell.micros.load(Ordering::Relaxed),
                            calls: cell.calls.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
            histograms: Histogram::ALL
                .iter()
                .map(|&h| {
                    let cell = &self.histograms[h as usize];
                    let buckets = cell
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, b)| {
                            (
                                BUCKET_BOUNDS_MICROS.get(i).copied(),
                                b.load(Ordering::Relaxed),
                            )
                        })
                        .collect();
                    (
                        h.name(),
                        HistogramSnapshot {
                            buckets,
                            count: cell.count.load(Ordering::Relaxed),
                            sum_micros: cell.sum_micros.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// One gauge's state at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Value at snapshot time.
    pub current: i64,
    /// Highest value observed.
    pub max: i64,
}

/// One phase accumulator's state at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Accumulated wall-clock microseconds.
    pub micros: u64,
    /// Number of timed calls.
    pub calls: u64,
}

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(upper_bound_micros, count)` per bucket; `None` is the overflow
    /// bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed microseconds.
    pub sum_micros: u64,
}

/// A point-in-time copy of every metric a [`Recorder`](super::Recorder)
/// collected — the machine-readable face of the observability layer
/// (`--metrics-out` serialises it; `comptest_report::metrics_text`
/// renders it).
///
/// Field maps are keyed by the stable metric names listed in the counter
/// glossary (crate docs, "Observability" section). Core invariants a
/// joined, un-cancelled campaign satisfies: `jobs_executed + jobs_cached
/// == jobs_planned` and `spans_opened == spans_closed`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauges (current + high-water) by name.
    pub gauges: BTreeMap<&'static str, GaugeSnapshot>,
    /// Phase timing accumulators by name.
    pub phases: BTreeMap<&'static str, PhaseSnapshot>,
    /// Fixed-bucket histograms by name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, `0` when the name is unknown.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's current value, `0` when the name is unknown. Gauges are
    /// additive across concurrent campaigns sharing one recorder: every
    /// launch's claims are balanced by releases, so `queue_depth`,
    /// `inflight_jobs` and `workers` all read `0` once every campaign
    /// recorded here has joined.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).map(|g| g.current).unwrap_or(0)
    }

    /// Serialises the snapshot as deterministic, machine-readable JSON —
    /// what `--metrics-out` writes.
    pub fn to_json(&self) -> String {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(&k, &v)| (k.to_owned(), Value::u64(v)))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(&k, g)| {
                    let mut map = BTreeMap::new();
                    map.insert("current".to_owned(), Value::Number(g.current.to_string()));
                    map.insert("max".to_owned(), Value::Number(g.max.to_string()));
                    (k.to_owned(), Value::Object(map))
                })
                .collect(),
        );
        let phases = Value::Object(
            self.phases
                .iter()
                .map(|(&k, p)| {
                    let mut map = BTreeMap::new();
                    map.insert("micros".to_owned(), Value::u64(p.micros));
                    map.insert("calls".to_owned(), Value::u64(p.calls));
                    (k.to_owned(), Value::Object(map))
                })
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(&k, h)| {
                    let buckets = Value::Array(
                        h.buckets
                            .iter()
                            .map(|&(le, count)| {
                                let mut map = BTreeMap::new();
                                map.insert(
                                    "le".to_owned(),
                                    le.map(Value::u64).unwrap_or(Value::Null),
                                );
                                map.insert("count".to_owned(), Value::u64(count));
                                Value::Object(map)
                            })
                            .collect(),
                    );
                    let mut map = BTreeMap::new();
                    map.insert("buckets".to_owned(), buckets);
                    map.insert("count".to_owned(), Value::u64(h.count));
                    map.insert("sum_micros".to_owned(), Value::u64(h.sum_micros));
                    (k.to_owned(), Value::Object(map))
                })
                .collect(),
        );
        let mut root = BTreeMap::new();
        root.insert("counters".to_owned(), counters);
        root.insert("gauges".to_owned(), gauges);
        root.insert("phases".to_owned(), phases);
        root.insert("histograms".to_owned(), histograms);
        Value::Object(root).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_phases_and_histograms_round_trip() {
        let registry = Registry::new();
        registry.add(Counter::JobsPlanned, 10);
        registry.add(Counter::JobsExecuted, 7);
        registry.add(Counter::JobsCached, 3);
        registry.gauge_add(Gauge::QueueDepth, 5);
        registry.gauge_add(Gauge::QueueDepth, -2);
        registry.phase_add(Phase::Plan, Duration::from_micros(250));
        registry.observe(Histogram::TestWall, 50);
        registry.observe(Histogram::TestWall, 5_000_000);
        registry.observe(Histogram::TestWall, 99_000_000_000);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("jobs_planned"), 10);
        assert_eq!(
            snap.counter("jobs_executed") + snap.counter("jobs_cached"),
            snap.counter("jobs_planned")
        );
        assert_eq!(snap.counter("no_such_counter"), 0);
        let queue = &snap.gauges["queue_depth"];
        assert_eq!((queue.current, queue.max), (3, 5));
        let plan = &snap.phases["plan"];
        assert_eq!((plan.micros, plan.calls), (250, 1));
        let wall = &snap.histograms["test_wall_micros"];
        assert_eq!(wall.count, 3);
        assert_eq!(wall.sum_micros, 50 + 5_000_000 + 99_000_000_000);
        assert_eq!(wall.buckets.first(), Some(&(Some(100), 1)));
        assert_eq!(wall.buckets.last(), Some(&(None, 1)));

        let json = snap.to_json();
        assert!(json.contains("\"jobs_planned\":10"), "{json}");
        assert!(json.contains("\"le\":null"), "{json}");
    }
}
