//! Span storage and the Chrome trace-event exporter behind
//! [`Recorder`](super::Recorder).
//!
//! Spans are buffered as compact [`TraceRecord`]s (one `Mutex<Vec<_>>`
//! push per record — the only lock on the hot path, held for a push) and
//! rendered on demand into the Chrome trace-event JSON array format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly, via the same hand-rolled [`Value`] writer the cache codec
//! uses.
//!
//! Two event shapes are used:
//!
//! - **Complete events** (`ph: "X"`) for spans that never overlap within
//!   one worker thread: campaign, launch phases, cells and tests on the
//!   blocking executors, and individual steps. Each worker thread gets
//!   its own track (`tid`), named via `thread_name` metadata.
//! - **Async begin/end pairs** (`ph: "b"` / `ph: "e"`) for test and cell
//!   spans on the event-loop executor, where thousands of jobs interleave
//!   on one shard thread and would otherwise render as nonsense nesting.
//!
//! Timestamps are microseconds since the recorder was created — pure
//! export data, never fed into results, hashes, or cache records.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

use crate::cache::json::Value;

/// Span categories; also the Chrome `cat` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpanCat {
    /// The whole campaign, launch to join.
    Campaign,
    /// A launch phase (codegen, hash, cache preload, plan, report).
    Phase,
    /// One cell job (suite × stand) at cell granularity.
    Cell,
    /// One test execution.
    Test,
    /// One plan step.
    Step,
}

impl SpanCat {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            SpanCat::Campaign => "campaign",
            SpanCat::Phase => "phase",
            SpanCat::Cell => "cell",
            SpanCat::Test => "test",
            SpanCat::Step => "step",
        }
    }

    /// Async-rendered categories get begin/end pairs; the rest are
    /// complete events.
    pub(crate) fn renders_async(self) -> bool {
        matches!(self, SpanCat::Cell | SpanCat::Test)
    }
}

/// A span name in the cheapest form the hot path can produce it: the
/// export path formats step numbers and borrows statics, so recording a
/// step or phase allocates nothing and a begin/end pair shares one
/// allocation via `Arc`.
#[derive(Debug, Clone)]
pub(crate) enum SpanName {
    /// A formatted name, shared between the begin and end halves.
    Owned(Arc<str>),
    /// A static name (launch phases).
    Static(&'static str),
    /// A plan step, rendered as `step {nr}` at export time.
    StepNr(u32),
}

impl SpanName {
    fn render(&self) -> Cow<'_, str> {
        match self {
            SpanName::Owned(name) => Cow::Borrowed(name),
            SpanName::Static(name) => Cow::Borrowed(name),
            SpanName::StepNr(nr) => Cow::Owned(format!("step {nr}")),
        }
    }
}

/// One buffered span, already reduced to export form.
#[derive(Debug)]
pub(crate) enum TraceRecord {
    /// A closed, non-overlapping span on a worker-thread track.
    Complete {
        cat: SpanCat,
        name: SpanName,
        track: u32,
        ts_micros: u64,
        dur_micros: u64,
    },
    /// Opening half of an async span pair.
    Begin {
        cat: SpanCat,
        name: SpanName,
        id: u64,
        track: u32,
        ts_micros: u64,
    },
    /// Closing half of an async span pair; `status` becomes an arg.
    End {
        cat: SpanCat,
        name: SpanName,
        id: u64,
        track: u32,
        ts_micros: u64,
        status: Option<String>,
    },
}

/// Distinguishes trace buffers for the per-thread track cache; `0` is
/// reserved as the cache's "empty" marker.
static NEXT_BUF_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The calling thread's `(TraceBuf id, track)` from its last
    /// [`TraceBuf::track`] call — worker threads record thousands of
    /// spans into one buffer, so this skips the registry lock on all
    /// but the first.
    static CACHED_TRACK: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
}

/// The span buffer: records plus the thread → track registry.
#[derive(Debug)]
pub(crate) struct TraceBuf {
    /// This buffer's [`NEXT_BUF_ID`] tag, keying [`CACHED_TRACK`].
    buf_id: u64,
    records: Mutex<Vec<TraceRecord>>,
    /// Maps each recording thread to a stable track id, remembering the
    /// thread's name for the exported `thread_name` metadata.
    tracks: Mutex<(HashMap<ThreadId, u32>, Vec<String>)>,
    next_id: AtomicU64,
}

impl TraceBuf {
    pub(crate) fn new() -> Self {
        Self {
            buf_id: NEXT_BUF_ID.fetch_add(1, Ordering::Relaxed),
            records: Mutex::new(Vec::new()),
            tracks: Mutex::new((HashMap::new(), Vec::new())),
            next_id: AtomicU64::new(1),
        }
    }

    /// A fresh id for an async begin/end pair.
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The calling thread's track id, assigning one on first use.
    ///
    /// The common case — the thread recorded into this buffer before —
    /// is answered from [`CACHED_TRACK`] without touching the registry
    /// lock.
    pub(crate) fn track(&self) -> u32 {
        CACHED_TRACK.with(|cached| {
            let (buf_id, track) = cached.get();
            if buf_id == self.buf_id {
                return track;
            }
            let track = self.track_slow();
            cached.set((self.buf_id, track));
            track
        })
    }

    /// Registry-lock path of [`TraceBuf::track`]: look the thread up,
    /// assigning the next track id on first use.
    fn track_slow(&self) -> u32 {
        let current = std::thread::current();
        let mut tracks = self.tracks.lock().expect("track registry poisoned");
        let (by_thread, names) = &mut *tracks;
        if let Some(&track) = by_thread.get(&current.id()) {
            return track;
        }
        let track = names.len() as u32;
        names.push(match current.name() {
            Some(name) => name.to_owned(),
            None => format!("worker-{track}"),
        });
        by_thread.insert(current.id(), track);
        track
    }

    pub(crate) fn push(&self, record: TraceRecord) {
        self.records
            .lock()
            .expect("trace buffer poisoned")
            .push(record);
    }

    pub(crate) fn len(&self) -> usize {
        self.records.lock().expect("trace buffer poisoned").len()
    }

    /// Renders the buffer as a Chrome trace-event JSON array.
    pub(crate) fn chrome_trace(&self) -> String {
        let records = self.records.lock().expect("trace buffer poisoned");
        let tracks = self.tracks.lock().expect("track registry poisoned");
        let mut events = Vec::with_capacity(records.len() + tracks.1.len() + 1);
        events.push(metadata_event("process_name", None, "comptest"));
        for (track, name) in tracks.1.iter().enumerate() {
            events.push(metadata_event("thread_name", Some(track as u32), name));
        }
        for record in records.iter() {
            events.push(match record {
                TraceRecord::Complete {
                    cat,
                    name,
                    track,
                    ts_micros,
                    dur_micros,
                } => {
                    let mut event = event_base("X", *cat, name, *track, *ts_micros);
                    event.insert("dur".to_owned(), Value::u64(*dur_micros));
                    Value::Object(event)
                }
                TraceRecord::Begin {
                    cat,
                    name,
                    id,
                    track,
                    ts_micros,
                } => {
                    let mut event = event_base("b", *cat, name, *track, *ts_micros);
                    event.insert("id".to_owned(), Value::str(format!("{id:#x}")));
                    Value::Object(event)
                }
                TraceRecord::End {
                    cat,
                    name,
                    id,
                    track,
                    ts_micros,
                    status,
                } => {
                    let mut event = event_base("e", *cat, name, *track, *ts_micros);
                    event.insert("id".to_owned(), Value::str(format!("{id:#x}")));
                    if let Some(status) = status {
                        let mut args = BTreeMap::new();
                        args.insert("status".to_owned(), Value::str(status));
                        event.insert("args".to_owned(), Value::Object(args));
                    }
                    Value::Object(event)
                }
            });
        }
        Value::Array(events).render()
    }
}

fn event_base(
    ph: &str,
    cat: SpanCat,
    name: &SpanName,
    track: u32,
    ts_micros: u64,
) -> BTreeMap<String, Value> {
    let mut event = BTreeMap::new();
    event.insert("ph".to_owned(), Value::str(ph));
    event.insert("cat".to_owned(), Value::str(cat.as_str()));
    event.insert("name".to_owned(), Value::str(name.render()));
    event.insert("pid".to_owned(), Value::u64(1));
    event.insert("tid".to_owned(), Value::u64(u64::from(track)));
    event.insert("ts".to_owned(), Value::u64(ts_micros));
    event
}

fn metadata_event(kind: &str, track: Option<u32>, name: &str) -> Value {
    let mut args = BTreeMap::new();
    args.insert("name".to_owned(), Value::str(name));
    let mut event = BTreeMap::new();
    event.insert("ph".to_owned(), Value::str("M"));
    event.insert("name".to_owned(), Value::str(kind));
    event.insert("pid".to_owned(), Value::u64(1));
    if let Some(track) = track {
        event.insert("tid".to_owned(), Value::u64(u64::from(track)));
    }
    event.insert("args".to_owned(), Value::Object(args));
    Value::Object(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_renders_metadata_complete_and_async_events() {
        let buf = TraceBuf::new();
        let track = buf.track();
        assert_eq!(track, buf.track(), "track id is stable per thread");
        buf.push(TraceRecord::Complete {
            cat: SpanCat::Phase,
            name: SpanName::Static("plan"),
            track,
            ts_micros: 10,
            dur_micros: 5,
        });
        buf.push(TraceRecord::Complete {
            cat: SpanCat::Step,
            name: SpanName::StepNr(7),
            track,
            ts_micros: 12,
            dur_micros: 2,
        });
        let id = buf.next_id();
        let name = SpanName::Owned("suite::t0".into());
        buf.push(TraceRecord::Begin {
            cat: SpanCat::Test,
            name: name.clone(),
            id,
            track,
            ts_micros: 20,
        });
        buf.push(TraceRecord::End {
            cat: SpanCat::Test,
            name,
            id,
            track,
            ts_micros: 30,
            status: Some("pass".into()),
        });
        assert_eq!(buf.len(), 4);

        let json = buf.chrome_trace();
        let parsed = crate::cache::json::parse(&json).expect("exporter emits valid JSON");
        let events = parsed.as_array().expect("top level is an array");
        // 1 process_name + 1 thread_name + 4 records.
        assert_eq!(events.len(), 6);
        assert!(json.contains("\"name\":\"step 7\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"b\""), "{json}");
        assert!(json.contains("\"ph\":\"e\""), "{json}");
        assert!(json.contains("\"status\":\"pass\""), "{json}");
        assert!(json.contains("thread_name"), "{json}");
    }
}
