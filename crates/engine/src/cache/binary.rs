//! The binary on-disk record codec: length-prefixed, field-tagged, decoded
//! in one pass over a single borrowed byte buffer.
//!
//! This is the [`DirCache`](super::DirCache)'s default record encoding
//! (see [`RecordFormat`](super::RecordFormat)); the JSON codec remains for
//! reading pre-existing entries and for `--cache-format json`. The design
//! follows the packed-value idiom: a tagged byte layout that a reader
//! walks directly — no intermediate value tree, no string escaping, no
//! float formatting. Decode borrows from the one `Vec<u8>` the cache read
//! from disk: varint lengths are bounds-checked against the remaining
//! buffer, strings are UTF-8-validated in place on the borrowed slice, and
//! floats travel as raw `f64::to_bits` little-endian words (so `±INF`,
//! `-0.0` and even NaN payloads round-trip bit-exactly, with no
//! shortest-representation printing on the warm path).
//!
//! # Record layout
//!
//! ```text
//! record    := magic "CCR" | version u8 | flags u8
//!              | varint(total) | varint(n_tests)
//!              | footprint?                      -- iff flags bit1 (v2+)
//!              | outcome{n_tests}
//! flags     := bit0 = record ends in a planning error (Err outcome)
//!              bit1 = a footprint section follows the counts (v2+ only)
//! footprint := string(salt)
//!              | varint(n) string{n}             -- signals
//!              | varint(n) string{n}             -- pins
//!              | varint(n) varint{n}             -- CAN frame ids
//!              | varint(n) string{n}             -- resources
//!              | varint(n) string{n}             -- ECUs
//!              | u64le(plan_hash) u64le(dut_slice_hash)
//! outcome   := varint(len) body        -- len = exact byte length of body
//! body      := 0x00 test_result | 0x01 string(reason)
//! ```
//!
//! The fixed-position header (everything before the first outcome) is
//! enough to answer the two admission questions — *does the record cover
//! test `i`?* (`i < n_tests`) and *does it determine the whole cell?*
//! (`n_tests == total` or the ends-in-error flag) — without touching any
//! per-test payload; [`probe`] decodes exactly that. The per-outcome
//! length prefix makes skipping an outcome O(1).
//!
//! ```text
//! test_result := string(test) string(stand) string(dut)
//!                varint(n_steps) step{n_steps}
//!                opt_string(error)
//!                varint(n_events) trace_event{n_events}
//! step        := varint(nr) varint(t_end µs) varint(n_checks) check{n_checks}
//! check       := varint(step) varint(at µs) string(signal) string(method)
//!                bound measured verdict string(message)
//! bound       := 0x00 opt_f64(nominal) f64(lo) f64(hi) | 0x01 bits
//! measured    := 0x00 f64 | 0x01 varint(raw) | 0x02 (none)
//! applied     := 0x00 f64 | 0x01 bits
//! bits        := varint(bits) u8(width)
//! verdict     := 0x00 pass | 0x01 fail | 0x02 error
//! trace_event := 0x00 varint(at µs) string(signal) string(resource) applied
//!              | 0x01 varint(at µs) string(signal) string(resource) measured
//!              | 0x02 varint(nr) varint(at µs)
//! string      := varint(len) utf8-bytes
//! opt_string  := 0x00 | 0x01 string        opt_f64 := 0x00 | 0x01 f64
//! f64         := 8 bytes, f64::to_bits little-endian
//! varint      := LEB128 u64 (7 value bits per byte, high bit = continue)
//! ```
//!
//! # Versioning rules
//!
//! * Any layout change bumps [`VERSION`]; versions this build does not
//!   know are a decode error, which the cache layer treats as a miss —
//!   stale files never produce wrong verdicts, they just re-execute.
//! * Older versions stay *readable* where the layout allows it: a v1
//!   record is exactly a v2 record without the footprint section (and
//!   with flags restricted to bit0), so v1 files decode to records with
//!   `footprint: None` and remain valid hits — a format upgrade never
//!   cold-starts an existing cache.
//! * Every length and count is validated against the bytes actually
//!   remaining before it is trusted (an "oversized length" is an
//!   immediate error, never an allocation), every tag byte must match an
//!   arm, each outcome body must consume exactly its declared length, and
//!   the record must consume the whole buffer — so `encode(decode(b)) ==
//!   b` for every accepted current-version input (older versions re-encode
//!   as the equivalent current-version record), and hostile input can only
//!   ever produce an error, not a panic or a giant allocation.

use comptest_core::campaign::TestJobOutcome;
use comptest_core::hash::Footprint;
use comptest_core::{CheckResult, Measured, StepResult, TestResult, Trace, TraceEvent, Verdict};
use comptest_model::{BitPattern, MethodName, SignalName, SimTime, StatusBound};
use comptest_stand::AppliedValue;

use super::CellRecord;

/// The three magic bytes opening every binary record file.
pub const MAGIC: [u8; 3] = *b"CCR";

/// Binary format version; bump on any layout change. Unknown versions
/// read as misses; version 1 (pre-footprint) records remain readable —
/// they are exactly version-2 records without the footprint section. (The
/// JSON codec's records carry their own independent version field.)
pub const VERSION: u8 = 2;

/// The oldest version [`decode`] still accepts.
pub const MIN_VERSION: u8 = 1;

/// A failed decode: the input is truncated, tagged wrong, over-declared,
/// or otherwise not a record this version wrote. The cache layer maps
/// every such error to a miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binary record decode: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(message: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError(message.into()))
}

/// The fixed-position record header: everything admission needs to answer
/// hit/miss — coverage and determinedness — without decoding a single
/// per-test payload. Returned by [`probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Number of tests the suite had when the record was stored.
    pub total: usize,
    /// Number of outcomes the record carries (a prefix of the suite).
    pub tests: usize,
    /// True when the last outcome is a planning error.
    pub ends_err: bool,
    /// True when a footprint section follows the counts (v2+ records
    /// stored by a footprint-keyed run).
    pub has_footprint: bool,
}

impl RecordHeader {
    /// True when the record determines the whole cell: it covers every
    /// test, or execution stopped at a planning error.
    pub fn determines_cell(&self) -> bool {
        self.tests == self.total || self.ends_err
    }

    /// True when the record covers test index `test`.
    pub fn covers(&self, test: usize) -> bool {
        test < self.tests
    }
}

// ---------------------------------------------------------------------------
// Reader: one bounds-checked cursor over the borrowed record buffer.
// ---------------------------------------------------------------------------

/// A zero-copy cursor: every accessor checks the remaining length before
/// touching the buffer, and string reads hand back `&'a str` slices
/// validated in place.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return err(format!("need {n} bytes, {} remain", self.remaining()));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// LEB128 varint, at most 10 bytes, rejecting u64 overflow.
    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return err("varint overflows u64");
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return err("varint overflows u64");
            }
        }
    }

    /// A varint used as a byte length or element count: validated against
    /// the bytes actually remaining *before* it is trusted, so a hostile
    /// length can neither over-read nor size an allocation.
    fn length(&mut self) -> Result<usize, DecodeError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return err(format!(
                "declared length {n} exceeds {} remaining bytes",
                self.remaining()
            ));
        }
        Ok(n as usize)
    }

    fn str(&mut self) -> Result<&'a str, DecodeError> {
        let n = self.length()?;
        std::str::from_utf8(self.take(n)?).map_err(|_| DecodeError("invalid UTF-8".into()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("take(8) is 8 bytes");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        u32::try_from(self.varint()?).map_err(|_| DecodeError("u32 out of range".into()))
    }

    fn u64_le(&mut self) -> Result<u64, DecodeError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("take(8) is 8 bytes");
        Ok(u64::from_le_bytes(bytes))
    }

    fn simtime(&mut self) -> Result<SimTime, DecodeError> {
        Ok(SimTime::from_micros(self.varint()?))
    }
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
    }
}

fn put_simtime(out: &mut Vec<u8>, t: SimTime) {
    put_varint(out, t.as_micros());
}

fn put_bits(out: &mut Vec<u8>, b: BitPattern) {
    put_varint(out, b.bits());
    out.push(b.width());
}

fn put_bound(out: &mut Vec<u8>, b: &StatusBound) {
    match b {
        StatusBound::Numeric { nominal, lo, hi } => {
            out.push(0);
            put_opt_f64(out, *nominal);
            put_f64(out, *lo);
            put_f64(out, *hi);
        }
        StatusBound::Bits(bits) => {
            out.push(1);
            put_bits(out, *bits);
        }
    }
}

fn put_measured(out: &mut Vec<u8>, m: &Measured) {
    match m {
        Measured::Num(n) => {
            out.push(0);
            put_f64(out, *n);
        }
        Measured::Bits(raw) => {
            out.push(1);
            put_varint(out, *raw);
        }
        Measured::None => out.push(2),
    }
}

fn put_applied(out: &mut Vec<u8>, v: &AppliedValue) {
    match v {
        AppliedValue::Num(n) => {
            out.push(0);
            put_f64(out, *n);
        }
        AppliedValue::Bits(bits) => {
            out.push(1);
            put_bits(out, *bits);
        }
    }
}

fn put_check(out: &mut Vec<u8>, c: &CheckResult) {
    put_varint(out, u64::from(c.step));
    put_simtime(out, c.at);
    put_str(out, c.signal.as_str());
    put_str(out, c.method.as_str());
    put_bound(out, &c.bound);
    put_measured(out, &c.measured);
    out.push(match c.verdict {
        Verdict::Pass => 0,
        Verdict::Fail => 1,
        Verdict::Error => 2,
    });
    put_str(out, &c.message);
}

fn put_trace_event(out: &mut Vec<u8>, e: &TraceEvent) {
    match e {
        TraceEvent::Applied {
            at,
            signal,
            resource,
            value,
        } => {
            out.push(0);
            put_simtime(out, *at);
            put_str(out, signal.as_str());
            put_str(out, resource);
            put_applied(out, value);
        }
        TraceEvent::Measured {
            at,
            signal,
            resource,
            value,
        } => {
            out.push(1);
            put_simtime(out, *at);
            put_str(out, signal.as_str());
            put_str(out, resource);
            put_measured(out, value);
        }
        TraceEvent::StepEnd { nr, at } => {
            out.push(2);
            put_varint(out, u64::from(*nr));
            put_simtime(out, *at);
        }
    }
}

fn put_test_result(out: &mut Vec<u8>, r: &TestResult) {
    put_str(out, &r.test);
    put_str(out, &r.stand);
    put_str(out, &r.dut);
    put_varint(out, r.steps.len() as u64);
    for step in &r.steps {
        put_varint(out, u64::from(step.nr));
        put_simtime(out, step.t_end);
        put_varint(out, step.checks.len() as u64);
        for check in &step.checks {
            put_check(out, check);
        }
    }
    match &r.error {
        None => out.push(0),
        Some(e) => {
            out.push(1);
            put_str(out, e);
        }
    }
    let events: Vec<&TraceEvent> = r.trace.iter().collect();
    put_varint(out, events.len() as u64);
    for event in events {
        put_trace_event(out, event);
    }
}

fn put_str_list(out: &mut Vec<u8>, items: &[String]) {
    put_varint(out, items.len() as u64);
    for item in items {
        put_str(out, item);
    }
}

fn put_footprint(out: &mut Vec<u8>, fp: &Footprint) {
    put_str(out, &fp.salt);
    put_str_list(out, &fp.signals);
    put_str_list(out, &fp.pins);
    put_varint(out, fp.frames.len() as u64);
    for frame in &fp.frames {
        put_varint(out, u64::from(*frame));
    }
    put_str_list(out, &fp.resources);
    put_str_list(out, &fp.ecus);
    out.extend_from_slice(&fp.plan_hash.to_le_bytes());
    out.extend_from_slice(&fp.dut_slice_hash.to_le_bytes());
}

/// The encoded size of a footprint section — what the `footprint_bytes`
/// counter accounts per cell.
pub(crate) fn footprint_bytes(fp: &Footprint) -> u64 {
    let mut buf = Vec::new();
    put_footprint(&mut buf, fp);
    buf.len() as u64
}

/// Serialises a cell record into the binary layout (see module docs).
pub fn encode(record: &CellRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    let ends_err = matches!(record.tests.last(), Some(Err(_)));
    let flags = u8::from(ends_err) | (u8::from(record.footprint.is_some()) << 1);
    out.push(flags);
    put_varint(&mut out, record.total as u64);
    put_varint(&mut out, record.tests.len() as u64);
    if let Some(fp) = &record.footprint {
        put_footprint(&mut out, fp);
    }
    let mut body = Vec::new();
    for outcome in &record.tests {
        body.clear();
        match outcome {
            Ok(result) => {
                body.push(0);
                put_test_result(&mut body, result);
            }
            Err(reason) => {
                body.push(1);
                put_str(&mut body, reason);
            }
        }
        put_varint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
    }
    out
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

fn signal(r: &mut Reader<'_>) -> Result<SignalName, DecodeError> {
    SignalName::new(r.str()?).map_err(|e| DecodeError(e.to_string()))
}

fn bits(r: &mut Reader<'_>) -> Result<BitPattern, DecodeError> {
    let raw = r.varint()?;
    let width = r.u8()?;
    BitPattern::new(raw, width).map_err(|e| DecodeError(e.to_string()))
}

fn bound(r: &mut Reader<'_>) -> Result<StatusBound, DecodeError> {
    match r.u8()? {
        0 => Ok(StatusBound::Numeric {
            nominal: match r.u8()? {
                0 => None,
                1 => Some(r.f64()?),
                tag => return err(format!("bad option tag {tag}")),
            },
            lo: r.f64()?,
            hi: r.f64()?,
        }),
        1 => Ok(StatusBound::Bits(bits(r)?)),
        tag => err(format!("bad bound tag {tag}")),
    }
}

fn measured(r: &mut Reader<'_>) -> Result<Measured, DecodeError> {
    match r.u8()? {
        0 => Ok(Measured::Num(r.f64()?)),
        1 => Ok(Measured::Bits(r.varint()?)),
        2 => Ok(Measured::None),
        tag => err(format!("bad measured tag {tag}")),
    }
}

fn applied(r: &mut Reader<'_>) -> Result<AppliedValue, DecodeError> {
    match r.u8()? {
        0 => Ok(AppliedValue::Num(r.f64()?)),
        1 => Ok(AppliedValue::Bits(bits(r)?)),
        tag => err(format!("bad applied tag {tag}")),
    }
}

fn check(r: &mut Reader<'_>) -> Result<CheckResult, DecodeError> {
    Ok(CheckResult {
        step: r.u32()?,
        at: r.simtime()?,
        signal: signal(r)?,
        method: MethodName::new(r.str()?).map_err(|e| DecodeError(e.to_string()))?,
        bound: bound(r)?,
        measured: measured(r)?,
        verdict: match r.u8()? {
            0 => Verdict::Pass,
            1 => Verdict::Fail,
            2 => Verdict::Error,
            tag => return err(format!("bad verdict tag {tag}")),
        },
        message: r.str()?.to_owned(),
    })
}

fn trace_event(r: &mut Reader<'_>) -> Result<TraceEvent, DecodeError> {
    match r.u8()? {
        0 => Ok(TraceEvent::Applied {
            at: r.simtime()?,
            signal: signal(r)?,
            resource: r.str()?.to_owned(),
            value: applied(r)?,
        }),
        1 => Ok(TraceEvent::Measured {
            at: r.simtime()?,
            signal: signal(r)?,
            resource: r.str()?.to_owned(),
            value: measured(r)?,
        }),
        2 => Ok(TraceEvent::StepEnd {
            nr: r.u32()?,
            at: r.simtime()?,
        }),
        tag => err(format!("bad trace tag {tag}")),
    }
}

fn test_result(r: &mut Reader<'_>) -> Result<TestResult, DecodeError> {
    let test = r.str()?.to_owned();
    let stand = r.str()?.to_owned();
    let dut = r.str()?.to_owned();
    let n_steps = r.length()?;
    let mut steps = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        let nr = r.u32()?;
        let t_end = r.simtime()?;
        let n_checks = r.length()?;
        let mut checks = Vec::with_capacity(n_checks);
        for _ in 0..n_checks {
            checks.push(check(r)?);
        }
        steps.push(StepResult { nr, t_end, checks });
    }
    let error = match r.u8()? {
        0 => None,
        1 => Some(r.str()?.to_owned()),
        tag => return err(format!("bad option tag {tag}")),
    };
    let n_events = r.length()?;
    let mut trace = Trace::new();
    for _ in 0..n_events {
        trace.push(trace_event(r)?);
    }
    Ok(TestResult {
        test,
        stand,
        dut,
        steps,
        error,
        trace,
    })
}

/// Parses just the fixed-position header: magic, version, determinedness
/// flag and the total/covered test counts — the hit/miss answer without
/// any per-test payload work.
pub fn probe(bytes: &[u8]) -> Result<RecordHeader, DecodeError> {
    let mut r = Reader::new(bytes);
    header(&mut r)
}

fn header(r: &mut Reader<'_>) -> Result<RecordHeader, DecodeError> {
    if r.take(3)? != MAGIC {
        return err("bad magic");
    }
    let version = r.u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return err(format!("unknown record version {version}"));
    }
    let flags = r.u8()?;
    // v1 knew only the ends-in-error bit; the footprint bit exists since v2.
    let known = if version >= 2 { 0b11 } else { 0b01 };
    if flags & !known != 0 {
        return err(format!("bad flags {flags:#04x}"));
    }
    let total =
        usize::try_from(r.varint()?).map_err(|_| DecodeError("total out of range".into()))?;
    let tests = r.length()?;
    if tests > total {
        return err("more outcomes than tests");
    }
    Ok(RecordHeader {
        total,
        tests,
        ends_err: flags & 0b01 != 0,
        has_footprint: flags & 0b10 != 0,
    })
}

fn str_list(r: &mut Reader<'_>) -> Result<Vec<String>, DecodeError> {
    let n = r.length()?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(r.str()?.to_owned());
    }
    Ok(items)
}

fn footprint(r: &mut Reader<'_>) -> Result<Footprint, DecodeError> {
    let salt = r.str()?.to_owned();
    let signals = str_list(r)?;
    let pins = str_list(r)?;
    let n_frames = r.length()?;
    let mut frames = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        frames.push(r.u32()?);
    }
    Ok(Footprint {
        salt,
        signals,
        pins,
        frames,
        resources: str_list(r)?,
        ecus: str_list(r)?,
        plan_hash: r.u64_le()?,
        dut_slice_hash: r.u64_le()?,
    })
}

/// Parses a full cell record; any malformed, truncated, over-declared or
/// wrong-version input is an error (which the cache layer treats as a
/// miss). Accepted inputs re-encode byte-identically.
pub fn decode(bytes: &[u8]) -> Result<CellRecord, DecodeError> {
    let mut r = Reader::new(bytes);
    let head = header(&mut r)?;
    let footprint = if head.has_footprint {
        Some(footprint(&mut r)?)
    } else {
        None
    };
    let mut tests: Vec<TestJobOutcome> = Vec::with_capacity(head.tests);
    for _ in 0..head.tests {
        let len = r.length()?;
        let end = r.pos + len;
        let outcome = match r.u8()? {
            0 => Ok(test_result(&mut r)?),
            1 => Err(r.str()?.to_owned()),
            tag => return err(format!("bad outcome tag {tag}")),
        };
        if r.pos != end {
            return err("outcome body length mismatch");
        }
        tests.push(outcome);
    }
    if !r.is_empty() {
        return err(format!("{} trailing bytes", r.remaining()));
    }
    if matches!(tests.last(), Some(Err(_))) != head.ends_err {
        return err("ends-in-error flag contradicts outcomes");
    }
    Ok(CellRecord {
        total: head.total,
        tests,
        footprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> CellRecord {
        let check = CheckResult {
            step: 1,
            at: SimTime::from_micros(1500),
            signal: SignalName::new("u_out").unwrap(),
            method: MethodName::new("get_u").unwrap(),
            bound: StatusBound::Numeric {
                nominal: Some(12.0),
                lo: f64::NEG_INFINITY,
                hi: 13.5,
            },
            verdict: Verdict::Pass,
            measured: Measured::Num(12.25),
            message: "u_out in [−INF, 13.5] ✓".into(),
        };
        let mut trace = Trace::new();
        trace.push(TraceEvent::Applied {
            at: SimTime::from_micros(0),
            signal: SignalName::new("u_in").unwrap(),
            resource: "psu0".into(),
            value: AppliedValue::Num(-0.0),
        });
        trace.push(TraceEvent::Measured {
            at: SimTime::from_micros(1500),
            signal: SignalName::new("u_out").unwrap(),
            resource: "dmm0".into(),
            value: Measured::Bits(u64::MAX),
        });
        trace.push(TraceEvent::StepEnd {
            nr: 1,
            at: SimTime::from_micros(2000),
        });
        CellRecord {
            total: 3,
            tests: vec![
                Ok(TestResult {
                    test: "t_power".into(),
                    stand: "HIL-A".into(),
                    dut: "interior_light".into(),
                    steps: vec![StepResult {
                        nr: 1,
                        t_end: SimTime::from_micros(2000),
                        checks: vec![check],
                    }],
                    error: Some("late check".into()),
                    trace,
                }),
                Err("no resource supports set_r".into()),
            ],
            footprint: None,
        }
    }

    fn sample_footprint() -> Footprint {
        Footprint {
            salt: "fw-2026.08".into(),
            signals: vec!["door_sw".into(), "lamp".into()],
            pins: vec!["pin:S3".into(), "pin:X9".into()],
            frames: vec![0x2A0, 0x7FF],
            resources: vec!["dec0".into(), "dvm1".into()],
            ecus: vec!["interior_light".into()],
            plan_hash: 0xDEAD_BEEF_CAFE_F00D,
            dut_slice_hash: 0x0123_4567_89AB_CDEF,
        }
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let record = sample_record();
        let bytes = encode(&record);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(encode(&decoded), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn footprinted_records_roundtrip_and_probe() {
        let mut record = sample_record();
        record.footprint = Some(sample_footprint());
        let bytes = encode(&record);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(encode(&decoded), bytes, "re-encode is byte-identical");

        // The footprint flag is visible from the fixed-position header…
        let head = probe(&bytes).unwrap();
        assert!(head.has_footprint);
        assert!(!probe(&encode(&sample_record())).unwrap().has_footprint);

        // …and every truncation of a footprinted record is still an error.
        for n in 0..bytes.len() {
            assert!(decode(&bytes[..n]).is_err(), "prefix of {n} bytes decoded");
        }
    }

    #[test]
    fn v1_records_without_footprints_remain_readable() {
        // A v1 record is byte-for-byte a v2 record without the footprint
        // section (and with flags restricted to bit0), so forging one is
        // just a version-byte patch.
        let record = sample_record();
        let mut v1 = encode(&record);
        assert_eq!(v1[3], VERSION);
        v1[3] = 1;
        let decoded = decode(&v1).expect("v1 record must stay a valid hit");
        assert_eq!(decoded, record);
        assert_eq!(decoded.footprint, None);
        let head = probe(&v1).unwrap();
        assert!(head.ends_err && !head.has_footprint);

        // The footprint bit did not exist in v1: a v1 header carrying it
        // is hostile input, not a record any writer produced.
        let mut record = sample_record();
        record.footprint = Some(sample_footprint());
        let mut forged = encode(&record);
        forged[3] = 1;
        assert!(decode(&forged).is_err(), "v1 cannot carry a footprint");
    }

    #[test]
    fn header_probe_answers_admission_without_payload() {
        let bytes = encode(&sample_record());
        let head = probe(&bytes).unwrap();
        assert_eq!(head.total, 3);
        assert_eq!(head.tests, 2);
        assert!(head.ends_err);
        assert!(head.determines_cell(), "trailing Err determines the cell");
        assert!(head.covers(1) && !head.covers(2));

        let undetermined = CellRecord {
            total: 2,
            tests: vec![Ok(sample_record().tests[0].clone().unwrap())],
            footprint: None,
        };
        let head = probe(&encode(&undetermined)).unwrap();
        assert!(!head.determines_cell());
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let bytes = encode(&sample_record());
        for n in 0..bytes.len() {
            assert!(decode(&bytes[..n]).is_err(), "prefix of {n} bytes decoded");
        }
    }

    #[test]
    fn hostile_inputs_are_errors() {
        // Wrong magic / version.
        assert!(decode(b"XXX").is_err());
        let mut bytes = encode(&sample_record());
        bytes[3] = VERSION + 1;
        assert!(decode(&bytes).is_err(), "future version must read as miss");

        // Flags contradicting the outcomes.
        let mut bytes = encode(&sample_record());
        bytes[4] ^= 1;
        assert!(decode(&bytes).is_err());

        // Unknown flag bits (only bits 0 and 1 are defined).
        let mut bytes = encode(&sample_record());
        bytes[4] |= 0b100;
        assert!(decode(&bytes).is_err());

        // A footprint flag with no footprint section: the outcome bytes
        // cannot parse as a footprint and the record must not decode.
        let mut bytes = encode(&sample_record());
        bytes[4] |= 0b10;
        assert!(decode(&bytes).is_err());

        // Oversized declared length: header says 2^60 outcomes.
        let mut forged = Vec::new();
        forged.extend_from_slice(&MAGIC);
        forged.push(VERSION);
        forged.push(0);
        put_varint(&mut forged, 1 << 60);
        put_varint(&mut forged, 1 << 60);
        assert!(decode(&forged).is_err());

        // Trailing garbage after a valid record.
        let mut bytes = encode(&sample_record());
        bytes.push(0);
        assert!(decode(&bytes).is_err());

        // Varint that never terminates / overflows.
        let mut forged = Vec::new();
        forged.extend_from_slice(&MAGIC);
        forged.push(VERSION);
        forged.push(0);
        forged.extend_from_slice(&[0xff; 11]);
        assert!(decode(&forged).is_err());
    }

    #[test]
    fn non_finite_floats_roundtrip() {
        let record = CellRecord {
            total: 1,
            tests: vec![Ok(TestResult {
                test: "t".into(),
                stand: "s".into(),
                dut: "d".into(),
                steps: vec![StepResult {
                    nr: 0,
                    t_end: SimTime::from_micros(1),
                    checks: vec![CheckResult {
                        step: 0,
                        at: SimTime::from_micros(1),
                        signal: SignalName::new("x").unwrap(),
                        method: MethodName::new("get_u").unwrap(),
                        bound: StatusBound::Numeric {
                            nominal: None,
                            lo: f64::NEG_INFINITY,
                            hi: f64::INFINITY,
                        },
                        measured: Measured::Num(-0.0),
                        verdict: Verdict::Pass,
                        message: String::new(),
                    }],
                }],
                error: None,
                trace: Trace::new(),
            })],
            footprint: None,
        };
        let decoded = decode(&encode(&record)).unwrap();
        assert_eq!(decoded, record);
        let Ok(result) = &decoded.tests[0] else {
            panic!("ok outcome")
        };
        let Measured::Num(m) = result.steps[0].checks[0].measured else {
            panic!("num")
        };
        assert!(
            m == 0.0 && m.is_sign_negative(),
            "-0.0 survives bit-exactly"
        );
    }
}
