//! The content-addressed campaign cache: [`CampaignCache`], the in-memory
//! [`MemoryCache`], the on-disk [`DirCache`], and the per-run
//! [`CacheRuntime`] every executor consults.
//!
//! Regression campaigns re-run mostly unchanged suites on mostly unchanged
//! stands; compositional-testing results (Kanso & Chebaro; Daca &
//! Henzinger) justify skipping re-verification of a component whose
//! interface contract is unchanged. A cell's contract is captured by its
//! [`CellKey`] — stable structural hashes of suite, stand, DUT config and
//! execution options (see [`comptest_core::hash`]) — and the cache maps
//! that key to the cell's full per-test outcomes.
//!
//! Design points:
//!
//! * **Records are per cell, granularity-agnostic.** A [`CellRecord`]
//!   holds per-test outcomes (full [`TestResult`]s including traces and
//!   simulated step timing, so reports from a warm run carry the same
//!   timing a cold run would). Because every test runs against a fresh
//!   power-cycled DUT, a record written by a test-granular run serves a
//!   cell-granular one and vice versa — the same independence argument
//!   behind the engine's byte-identity guarantee.
//! * **A record may be a prefix.** Cell-granular execution stops at the
//!   first planning error, so tests after it are unknown; the record
//!   stores the determined prefix. Test-granular lookups hit any stored
//!   index; cell-granular lookups hit only when the record *determines*
//!   the cell outcome (it ends in a planning error, or covers every test).
//! * **Anything unreadable is a miss.** Corrupt, truncated or
//!   wrong-version entries decode to an error and the cell simply
//!   executes; only an unusable cache *directory* raises
//!   [`CoreError::Cache`], at configuration time.
//! * **Hits keep campaign semantics.** A hit resolves at the same
//!   admission point where the job would have run: it emits
//!   [`EngineEvent::CellCached`](crate::EngineEvent::CellCached) and a
//!   cached failure trips the `stop_on_first_fail` latch exactly like an
//!   executed one, so warm runs cancel the same deterministic suffix.
//! * **`cache_verify` audits instead of skipping.** Every cell executes,
//!   executed outcomes are compared to cached ones, and
//!   [`CampaignHandle::join`](crate::CampaignHandle::join) raises
//!   [`CoreError::CacheMismatch`] when any diverged — the paper-style
//!   spot-check that the content addressing really covers every input.
//! * **Hits build no devices.** Records are pre-loaded before jobs are
//!   packaged and are immutable for the launch, so admission is a
//!   deterministic function of them; packaging asks
//!   `CacheRuntime::will_hit_*` and skips constructing the per-job DUT
//!   device for every predicted hit — a fully warm run builds zero
//!   devices.
//!
//! # What invalidates the cache
//!
//! Two keying modes decide *which* edits turn hits into misses
//! ([`CacheKeying`], CLI `--cache-key`, footprint default):
//!
//! * **[`CacheKeying::Full`]** keys each cell on the whole suite, the
//!   whole stand and the whole DUT config ([`CellKey`]). Safe and simple,
//!   but coarse: editing one ECU's fault set on a shared DUT, or touching
//!   any stand resource, invalidates every cell keyed against them.
//! * **[`CacheKeying::Footprint`]** (the default) keys each cell on its
//!   recorded dependency [`Footprint`]: the digest of the cell's
//!   *resolved execution plans* (the exact stand slice the planner
//!   allocated) and of the *DUT slice* its signals route through (touched
//!   pin/CAN bindings refined by
//!   [`Behavior::port_slice`](comptest_dut::Behavior::port_slice)). Edits
//!   outside a cell's footprint — an unrelated stand resource, another
//!   ECU's configuration block — leave its key, and its cached verdict,
//!   untouched. Anything the footprint cannot prove untouched falls back
//!   to whole-device hashing, so footprint keying is never less safe than
//!   full keying, only more precise.
//!
//! Both modes fold the campaign's **cache salt**
//! ([`Campaign::cache_salt`](crate::Campaign::cache_salt), CLI
//! `--cache-salt`) into footprint keys; bump it (e.g. on a firmware
//! release) to invalidate every footprint-keyed record at once. The two
//! modes' keys live in disjoint hash domains, so one directory can hold
//! both without aliasing; switching modes is safe but starts cold on the
//! first run.
//!
//! # On-disk record formats
//!
//! [`DirCache`] stores one file per [`CellKey`] and speaks two encodings,
//! negotiated per entry by file extension ([`RecordFormat`]):
//!
//! * **Binary (`<key>.bin`, the default write format).** A
//!   length-prefixed, field-tagged layout decoded in one pass over the
//!   single `Vec<u8>` read from disk:
//!
//!   ```text
//!   magic "CCR" | version u8 | flags u8 | varint total | varint n_tests
//!   | [ footprint section, if flags bit 1 ]
//!   | n_tests × ( varint len | tagged outcome body )
//!   ```
//!
//!   Varint lengths are bounds-checked before use, strings are
//!   UTF-8-validated in place, floats are raw `to_bits` LE words, and the
//!   fixed-position header alone answers hit/miss (coverage and
//!   determinedness) without decoding any per-test payload. The full
//!   field-by-field layout and the versioning rules live in the
//!   [`binary`] module docs.
//! * **JSON (`<key>.json`).** The original hand-rolled JSON codec, still
//!   written under `--cache-format json` and always readable: lookups fall
//!   back to the other extension, so pre-binary caches keep hitting —
//!   migration never turns valid entries into silent misses.
//!
//! Whichever format is written, `store` removes a **pre-existing**
//! other-format file for the key after its rename lands, so the latest
//! write wins even across writers configured differently — while a file
//! that appeared *during* the store (a concurrent writer in the other
//! format) is left alone rather than deleted out from under its writer.
//! Version bumps (either codec) make stale files decode as errors →
//! misses; they re-execute and are rewritten in the current format.

pub mod binary;
mod codec;
pub(crate) use crate::codec as json;

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};

use comptest_core::campaign::{CampaignCell, TestJobOutcome};
use comptest_core::error::CoreError;
use comptest_core::hash::{CellKey, Footprint};
use comptest_core::{SuiteResult, TestResult};

use crate::campaign::{Campaign, Granularity};
use crate::events::{emit, EngineEvent};
use crate::executor::KeySet;
use crate::obs::{Counter, Recorder};

/// How campaign cells are keyed into the cache — which edits invalidate
/// what. See the [module docs](self#what-invalidates-the-cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheKeying {
    /// Whole-artifact keys ([`CellKey`]): any change to the suite, the
    /// stand or the DUT config invalidates every cell keyed against it.
    Full,
    /// Dependency-footprint keys ([`Footprint`]): a cell is invalidated
    /// only by changes to the stand slice its plans allocate or the DUT
    /// slice its signals touch. The default.
    #[default]
    Footprint,
}

impl CacheKeying {
    /// Accepted [`FromStr`](std::str::FromStr) spellings, for CLI help.
    pub const ACCEPTED: [&'static str; 2] = ["full", "footprint"];
}

impl fmt::Display for CacheKeying {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheKeying::Full => write!(f, "full"),
            CacheKeying::Footprint => write!(f, "footprint"),
        }
    }
}

impl std::str::FromStr for CacheKeying {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(CacheKeying::Full),
            "footprint" => Ok(CacheKeying::Footprint),
            _ => Err(format!(
                "unknown cache keying {s:?}: expected one of {}",
                Self::ACCEPTED.join(", ")
            )),
        }
    }
}

/// The cached outcomes of one campaign cell: per-test outcomes in suite
/// order, possibly truncated to the prefix a cell-granular run determined.
///
/// Invariant: `tests.len() <= total`, where `total` is the suite's test
/// count at store time. A record *determines* the whole cell when it ends
/// in a planning error or covers every test.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Number of tests the suite had when the record was stored.
    pub total: usize,
    /// Per-test outcomes (full results including traces and sim timing),
    /// a prefix of the suite's tests.
    pub tests: Vec<TestJobOutcome>,
    /// The dependency footprint the cell was keyed under when stored by a
    /// footprint-keyed run ([`CacheKeying::Footprint`]); `None` for
    /// full-keyed stores and for records written before the footprint
    /// format revision. Informational: admission recomputes keys fresh
    /// every run, so a missing footprint never weakens a hit.
    pub footprint: Option<Footprint>,
}

impl CellRecord {
    /// The cached outcome of one test, if the record covers it. Each test
    /// runs against a fresh power-cycled DUT, so any stored entry is valid
    /// independently of the others.
    pub fn test_outcome(&self, test: usize) -> Option<&TestJobOutcome> {
        self.tests.get(test)
    }

    /// True when the record covers every test of the suite.
    pub fn is_complete(&self) -> bool {
        self.tests.len() == self.total
    }

    /// True when the record determines the whole cell: it is complete, or
    /// it ends in a planning error (exactly where sequential cell
    /// execution stops).
    pub fn is_determined(&self) -> bool {
        self.is_complete() || matches!(self.tests.last(), Some(Err(_)))
    }

    /// The whole-cell outcome, if the record determines it: the fold stops
    /// at the first planning error (exactly where sequential cell
    /// execution stops), otherwise every test must be present.
    pub fn cell_outcome(&self, suite: &str, stand: &str) -> Option<CampaignCell> {
        if !self.is_determined() {
            return None;
        }
        Some(fold_cell(
            suite.to_owned(),
            stand.to_owned(),
            self.tests.iter().cloned(),
        ))
    }
}

/// Folds per-test outcomes into the canonical [`CampaignCell`]: results
/// accumulate until the first planning error ends the cell as
/// `Err(reason)` — byte-identical to sequential cell execution. The one
/// fold shared by cache hits and every executor's cold path.
pub(crate) fn fold_cell(
    suite: String,
    stand: String,
    tests: impl IntoIterator<Item = TestJobOutcome>,
) -> CampaignCell {
    let mut results: Vec<TestResult> = Vec::new();
    let mut planning_error = None;
    for outcome in tests {
        match outcome {
            Ok(result) => results.push(result),
            Err(reason) => {
                planning_error = Some(reason);
                break;
            }
        }
    }
    let outcome = match planning_error {
        Some(reason) => Err(reason),
        None => Ok(SuiteResult {
            suite: suite.clone(),
            results,
        }),
    };
    CampaignCell {
        suite,
        stand,
        outcome,
    }
}

/// A content-addressed store of campaign cell outcomes.
///
/// Implementations must be safe to share across worker threads and should
/// treat `store` as best-effort: a cache that cannot persist must not fail
/// the campaign (the outcome it was asked to store is already merged).
pub trait CampaignCache: fmt::Debug + Send + Sync {
    /// Loads the record for a key; `None` for absent *or unreadable*
    /// entries — a corrupt cache degrades to cold execution, never to an
    /// error.
    fn load(&self, key: &CellKey) -> Option<CellRecord>;

    /// Stores (or replaces) the record for a key. Best-effort.
    fn store(&self, key: &CellKey, record: &CellRecord);

    /// Like [`CampaignCache::load`], but distinguishes an entry that does
    /// not exist from one that exists and cannot be decoded, so the
    /// engine can tell a cold cache from a rotting store (it emits
    /// [`EngineEvent::CellCacheCorrupt`](crate::EngineEvent::CellCacheCorrupt)
    /// and bumps the `cache_corrupt_entries` counter for the latter).
    ///
    /// The default implementation cannot see corruption and maps `load`
    /// to `Hit`/`Miss`; stores with their own decode step (like
    /// [`DirCache`]) should override it.
    fn lookup(&self, key: &CellKey) -> CacheLookup {
        match self.load(key) {
            Some(record) => CacheLookup::Hit(record),
            None => CacheLookup::Miss,
        }
    }

    /// Like [`CampaignCache::lookup`], annotated with I/O accounting: how
    /// many encoded bytes were read and which [`RecordFormat`] served the
    /// entry. The engine feeds these into the `cache_bytes_read` and
    /// per-format hit counters.
    ///
    /// The default implementation performs no I/O it could measure and
    /// reports zero bytes and no format; stores that actually read
    /// encoded records (like [`DirCache`]) should override it.
    fn lookup_io(&self, key: &CellKey) -> LookupInfo {
        LookupInfo {
            lookup: self.lookup(key),
            bytes: 0,
            format: None,
        }
    }

    /// Like [`CampaignCache::store`], returning the number of encoded
    /// bytes written (`0` for in-memory stores or failed best-effort
    /// writes). The engine feeds this into the `cache_bytes_written`
    /// counter.
    fn store_io(&self, key: &CellKey, record: &CellRecord) -> u64 {
        self.store(key, record);
        0
    }
}

/// The on-disk record encodings a [`DirCache`] can read and write. See
/// the [module docs](self#on-disk-record-formats) for the negotiation
/// rules and the [`binary`] module for the binary layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordFormat {
    /// Length-prefixed, field-tagged binary records (`.bin`, default).
    Binary,
    /// Hand-rolled JSON records (`.json`, the pre-binary format).
    Json,
}

impl RecordFormat {
    fn extension(self) -> &'static str {
        match self {
            RecordFormat::Binary => "bin",
            RecordFormat::Json => "json",
        }
    }

    /// The other format — what lookups fall back to and stores clean up.
    fn other(self) -> Self {
        match self {
            RecordFormat::Binary => RecordFormat::Json,
            RecordFormat::Json => RecordFormat::Binary,
        }
    }
}

/// A [`CampaignCache::lookup_io`] result: the lookup outcome plus the
/// encoded bytes read and the format that served (or failed to serve)
/// the entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupInfo {
    /// The lookup outcome.
    pub lookup: CacheLookup,
    /// Encoded bytes read from the backing store (0 when nothing was
    /// read, e.g. a miss or an in-memory cache).
    pub bytes: u64,
    /// The record format involved, when the backing store distinguishes
    /// formats (in-memory caches report `None`).
    pub format: Option<RecordFormat>,
}

/// Outcome of a [`CampaignCache::lookup`]: a usable record, a plain
/// absence, or an entry that exists but cannot be decoded. `Corrupt`
/// behaves like `Miss` for execution (the cell runs cold) and exists so
/// the condition can be surfaced instead of silently swallowed.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// A decodable record was found.
    Hit(CellRecord),
    /// No entry exists for the key.
    Miss,
    /// An entry exists but is truncated, wrong-version, or garbage.
    Corrupt,
}

/// An in-process cache: outcomes survive across launches of the same (or
/// an equal) campaign within one process — replay loops, watch mode,
/// benches.
#[derive(Debug, Default)]
pub struct MemoryCache {
    cells: Mutex<HashMap<CellKey, CellRecord>>,
}

impl MemoryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("cache lock").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CampaignCache for MemoryCache {
    fn load(&self, key: &CellKey) -> Option<CellRecord> {
        self.cells.lock().expect("cache lock").get(key).cloned()
    }

    fn store(&self, key: &CellKey, record: &CellRecord) {
        self.cells
            .lock()
            .expect("cache lock")
            .insert(*key, record.clone());
    }
}

/// An on-disk cache: one record file per cell key under a directory,
/// shared across processes and campaign runs. Records are binary by
/// default ([`RecordFormat::Binary`], see the
/// [module docs](self#on-disk-record-formats)); lookups read either
/// format, so a cache written before the binary codec — or by a
/// differently configured writer — keeps hitting. Writes go through a
/// temporary file in the same directory followed by an atomic rename, so
/// concurrent runs and crashes never leave a half-written record —
/// readers see the old record or the new one, and a torn file can only be
/// a leftover `.tmp` no reader ever opens.
#[derive(Debug)]
pub struct DirCache {
    dir: PathBuf,
    format: RecordFormat,
}

/// Temp-name disambiguator shared by every [`DirCache`] in the process:
/// two instances opened on the same directory (different campaigns, a
/// cache and its verify pass, the multi-tenant daemon) must never race on
/// the same `.tmp` name, so the counter cannot live per instance.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Serializes the publish step of [`DirCache::store`] (rename +
/// stale-other-format cleanup) across every instance in the process.
/// Without it two racing writers in different formats can *each* see the
/// other's old file as stale and delete the other's *new* file after both
/// renames land — leaving zero records for a key both just wrote. Held
/// only around two cheap filesystem calls; record encoding and the temp
/// write stay outside.
static PUBLISH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

impl DirCache {
    /// Opens (creating if needed) a cache directory, writing
    /// [`RecordFormat::Binary`] records.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] when the directory cannot be created
    /// or is not usable as a directory (e.g. the path names a file).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let dir = dir.into();
        if dir.as_os_str().is_empty() {
            return Err(CoreError::Cache {
                message: "cache directory path is empty".into(),
            });
        }
        std::fs::create_dir_all(&dir).map_err(|e| CoreError::Cache {
            message: format!("cannot create cache directory {}: {e}", dir.display()),
        })?;
        if !dir.is_dir() {
            return Err(CoreError::Cache {
                message: format!("{} is not a directory", dir.display()),
            });
        }
        Ok(Self {
            dir,
            format: RecordFormat::Binary,
        })
    }

    /// Sets the format new records are written in (builder style). Reads
    /// are unaffected: both formats always hit.
    pub fn with_format(mut self, format: RecordFormat) -> Self {
        self.format = format;
        self
    }

    /// The format new records are written in.
    pub fn format(&self) -> RecordFormat {
        self.format
    }

    /// The cache directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// The record file path a `store` would write for a key (lookups also
    /// fall back to the other format's path).
    pub fn entry_path(&self, key: &CellKey) -> PathBuf {
        self.format_path(key, self.format)
    }

    fn format_path(&self, key: &CellKey, format: RecordFormat) -> PathBuf {
        self.dir.join(format!("{key}.{}", format.extension()))
    }
}

impl CampaignCache for DirCache {
    fn load(&self, key: &CellKey) -> Option<CellRecord> {
        match self.lookup(key) {
            CacheLookup::Hit(record) => Some(record),
            CacheLookup::Miss | CacheLookup::Corrupt => None,
        }
    }

    fn lookup(&self, key: &CellKey) -> CacheLookup {
        self.lookup_io(key).lookup
    }

    fn lookup_io(&self, key: &CellKey) -> LookupInfo {
        // A concurrent store can rename its record into the format we
        // already checked and clean up the format we are about to check —
        // a transient false miss for a key that had a record throughout.
        // One retry closes that window (a second store cannot land the
        // same way twice in a row for the same reader); true misses pay
        // two extra not-found probes, which preload noise absorbs.
        let first = self.scan_formats(key);
        match first.lookup {
            CacheLookup::Miss => self.scan_formats(key),
            _ => first,
        }
    }

    fn store(&self, key: &CellKey, record: &CellRecord) {
        self.store_io(key, record);
    }

    fn store_io(&self, key: &CellKey, record: &CellRecord) -> u64 {
        // Unique-per-writer temp name: process id + process-wide counter
        // (two DirCache instances on one directory must not collide).
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = match self.format {
            RecordFormat::Binary => binary::encode(record),
            RecordFormat::Json => codec::encode(record).into_bytes(),
        };
        let written = bytes.len() as u64;
        // Best-effort: a cache that cannot persist (full disk, revoked
        // permissions) degrades to a smaller cache, never a failed run —
        // but whatever happens, the temp file must not survive (a
        // partially written one would otherwise accumulate per attempt).
        if std::fs::write(&tmp, bytes).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return 0;
        }
        // Publish atomically with respect to other in-process writers: an
        // other-format file observed *at rename time* is genuinely stale
        // (its writer renamed before us), so removing it is exactly
        // "latest write wins" — while a writer that publishes after us
        // will see and remove ours, never the other way around. A file
        // that only appears mid-store (no pre-existing entry) belongs to
        // a concurrent out-of-process writer and is left alone.
        let guard = PUBLISH_LOCK.lock().expect("cache publish lock");
        let other = self.format_path(key, self.format.other());
        let other_stale = other.exists();
        if std::fs::rename(&tmp, self.entry_path(key)).is_err() {
            drop(guard);
            let _ = std::fs::remove_file(&tmp);
            return 0;
        }
        if other_stale {
            let _ = std::fs::remove_file(other);
        }
        written
    }
}

impl DirCache {
    /// One pass over both record formats — preferring the write format
    /// (it is what this writer last stored), falling back to the other so
    /// entries from older caches or differently configured writers are
    /// never silent misses.
    fn scan_formats(&self, key: &CellKey) -> LookupInfo {
        for format in [self.format, self.format.other()] {
            let bytes = match std::fs::read(self.format_path(key, format)) {
                Ok(bytes) => bytes,
                // Absent in this format: try the other.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                // Present but unreadable (permissions, I/O error): the
                // store has the entry and cannot serve it — report rot.
                Err(_) => {
                    return LookupInfo {
                        lookup: CacheLookup::Corrupt,
                        bytes: 0,
                        format: Some(format),
                    }
                }
            };
            let decoded = match format {
                RecordFormat::Binary => binary::decode(&bytes).ok(),
                RecordFormat::Json => std::str::from_utf8(&bytes)
                    .ok()
                    .and_then(|text| codec::decode(text).ok()),
            };
            return LookupInfo {
                lookup: match decoded {
                    Some(record) => CacheLookup::Hit(record),
                    None => CacheLookup::Corrupt,
                },
                bytes: bytes.len() as u64,
                format: Some(format),
            };
        }
        LookupInfo {
            lookup: CacheLookup::Miss,
            bytes: 0,
            format: None,
        }
    }
}

/// Per-cell accumulator for test-granular runs: collects outcomes (cached
/// and executed) until the cell is fully covered, then stores once.
struct Collector {
    outcomes: Vec<Option<TestJobOutcome>>,
    filled: usize,
    /// At least one outcome came from execution (a fully-warm cell is
    /// never re-stored — 10k identical writes would erase the warm win).
    executed: bool,
    stored: bool,
}

/// The cache state of one launched campaign run, shared by every worker:
/// pre-computed keys, pre-loaded records, per-cell store accumulators
/// (test-granular runs only — cell-granular jobs report their whole cell
/// at once and need no accumulation) and the `cache_verify` mismatch
/// count.
///
/// Loading happens once on the launch thread (one I/O pass in
/// deterministic cell order); workers only read records and accumulate
/// outcomes.
pub(crate) struct CacheRuntime {
    cache: Arc<dyn CampaignCache>,
    verify: bool,
    /// The keying mode the campaign's keys were computed under — what the
    /// `cache_hits_footprint` counter reports against.
    keying: CacheKeying,
    keys: Vec<CellKey>,
    /// Per-cell dependency footprints (`None` under [`CacheKeying::Full`]
    /// or when capture was skipped) — attached to stored records.
    footprints: Vec<Option<Footprint>>,
    records: Vec<Option<CellRecord>>,
    /// The format that served each preloaded record (`None` for misses
    /// and format-less caches) — what the per-format hit counters report.
    formats: Vec<Option<RecordFormat>>,
    /// Per-cell suite test count (the stored record's `total`).
    totals: Vec<usize>,
    /// Per-cell accumulators; empty for cell-granular runs.
    collectors: Vec<Mutex<Collector>>,
    /// Cells whose stored entry existed but could not be decoded:
    /// `(cell, suite, stand)`, collected at preload so every launch path
    /// can emit [`EngineEvent::CellCacheCorrupt`] warnings once its event
    /// channel exists.
    corrupt: Vec<(usize, String, String)>,
    mismatches: AtomicUsize,
    /// Recorder for store-side accounting (`cache_bytes_written`) — reads
    /// are accounted once in [`CacheRuntime::prepare`], stores happen on
    /// workers throughout the run.
    obs: Recorder,
}

impl CacheRuntime {
    /// Pre-loads every cell's record using the campaign's precomputed
    /// [`CellKey`]s (hashed once per campaign *value* in the `OnceLock`
    /// key store, not once per launch). `collect_tests` is true for
    /// test-granular runs, which need the per-cell store accumulators.
    /// Corrupt entries are treated as misses, remembered for warning
    /// events, and counted on `obs`. Every lookup that fails to produce a
    /// usable record counts as `cells_invalidated` (the cells this run
    /// will re-execute); per-cell footprints ride along to be attached to
    /// stored records, their encoded size feeding `footprint_bytes`.
    pub(crate) fn prepare(
        cache: Arc<dyn CampaignCache>,
        campaign: &Campaign<'_, '_>,
        keyset: &KeySet,
        obs: &Recorder,
    ) -> Arc<Self> {
        let verify = campaign.cache_verify;
        let collect_tests = campaign.granularity == Granularity::Test;
        let keying = campaign.cache_keying;
        let entries = campaign.entries;
        let stands = campaign.stands;
        let keys = &keyset.keys;
        let footprints = &keyset.footprints;
        debug_assert_eq!(keys.len(), entries.len() * stands.len());
        debug_assert_eq!(footprints.len(), keys.len());
        let mut records = Vec::with_capacity(keys.len());
        let mut formats = Vec::with_capacity(keys.len());
        let mut totals = Vec::with_capacity(keys.len());
        let mut collectors = Vec::new();
        let mut corrupt = Vec::new();
        let mut bytes_read = 0u64;
        let mut footprint_bytes = 0u64;
        let mut cell = 0;
        for entry in entries {
            for stand in stands {
                if let Some(fp) = &footprints[cell] {
                    footprint_bytes += binary::footprint_bytes(fp);
                }
                let info = cache.lookup_io(&keys[cell]);
                bytes_read += info.bytes;
                records.push(match info.lookup {
                    CacheLookup::Hit(record) => {
                        formats.push(info.format);
                        Some(record)
                    }
                    CacheLookup::Miss => {
                        obs.inc(Counter::CellsInvalidated);
                        formats.push(None);
                        None
                    }
                    CacheLookup::Corrupt => {
                        obs.inc(Counter::CacheCorruptEntries);
                        obs.inc(Counter::CellsInvalidated);
                        corrupt.push((cell, entry.suite.name.clone(), stand.name().to_owned()));
                        formats.push(None);
                        None
                    }
                });
                totals.push(entry.suite.tests.len());
                if collect_tests {
                    collectors.push(Mutex::new(Collector {
                        outcomes: vec![None; entry.suite.tests.len()],
                        filled: 0,
                        executed: false,
                        stored: false,
                    }));
                }
                cell += 1;
            }
        }
        obs.add(Counter::CacheBytesRead, bytes_read);
        obs.add(Counter::FootprintBytes, footprint_bytes);
        Arc::new(Self {
            cache,
            verify,
            keying,
            keys: keys.to_vec(),
            footprints: footprints.to_vec(),
            records,
            formats,
            totals,
            collectors,
            corrupt,
            mismatches: AtomicUsize::new(0),
            obs: obs.clone(),
        })
    }

    /// Emits one [`EngineEvent::CellCacheCorrupt`] per rotten entry found
    /// at preload. Every launch path calls this right after creating its
    /// event channel, before any job runs.
    pub(crate) fn emit_corrupt_warnings(&self, events: &Sender<EngineEvent>) {
        for (cell, suite, stand) in &self.corrupt {
            emit(
                events,
                EngineEvent::CellCacheCorrupt {
                    cell: *cell,
                    suite: suite.clone(),
                    stand: stand.clone(),
                },
            );
        }
    }

    /// Whether [`CacheRuntime::admit_test`] will serve this (cell, test)
    /// job from the cache. Records are pre-loaded before packaging and
    /// immutable for the launch, so this prediction is exact — packaging
    /// uses it to skip building DUT devices for jobs that will never run.
    pub(crate) fn will_hit_test(&self, cell: usize, test: usize) -> bool {
        !self.verify
            && self.records[cell]
                .as_ref()
                .is_some_and(|r| r.test_outcome(test).is_some())
    }

    /// Whether [`CacheRuntime::admit_cell`] will serve this whole cell
    /// from the cache — the cell-granular counterpart of
    /// [`CacheRuntime::will_hit_test`].
    pub(crate) fn will_hit_cell(&self, cell: usize) -> bool {
        !self.verify
            && self.records[cell]
                .as_ref()
                .is_some_and(CellRecord::is_determined)
    }

    /// Bumps the per-format hit counter for a cell served from a
    /// format-aware store (format-less caches count only `cache_hits`),
    /// plus `cache_hits_footprint` when the run keys by footprint.
    fn count_format_hit(&self, cell: usize) {
        if self.keying == CacheKeying::Footprint {
            self.obs.inc(Counter::CacheHitsFootprint);
        }
        match self.formats[cell] {
            Some(RecordFormat::Binary) => self.obs.inc(Counter::CacheHitsBin),
            Some(RecordFormat::Json) => self.obs.inc(Counter::CacheHitsJson),
            None => {}
        }
    }

    /// Test-granular admission: the cached outcome for one (cell, test)
    /// job, or `None` (miss / verify mode — the job must execute). A hit
    /// also feeds the cell's store accumulator so mixed warm/cold cells
    /// can complete their record.
    pub(crate) fn admit_test(&self, cell: usize, test: usize) -> Option<TestJobOutcome> {
        if self.verify {
            return None;
        }
        let record = self.records[cell].as_ref()?;
        let outcome = record.test_outcome(test)?.clone();
        self.count_format_hit(cell);
        // A complete record can never need re-storing, so fully-warm cells
        // skip the accumulator entirely (a 10k-test warm run would
        // otherwise clone every outcome twice for nothing); partial
        // records keep feeding it so mixed warm/cold cells can finish
        // their record.
        if !record.is_complete() {
            self.note(cell, test, &outcome, false);
        }
        Some(outcome)
    }

    /// Cell-granular admission: the determined whole-cell outcome, or
    /// `None` (miss / undetermined record / verify mode).
    pub(crate) fn admit_cell(&self, cell: usize, suite: &str, stand: &str) -> Option<CampaignCell> {
        if self.verify {
            return None;
        }
        let outcome = self.records[cell].as_ref()?.cell_outcome(suite, stand)?;
        self.count_format_hit(cell);
        Some(outcome)
    }

    /// Reports one *executed* test outcome: feeds the store accumulator
    /// and, in verify mode, compares against the cached outcome.
    pub(crate) fn finish_test(&self, cell: usize, test: usize, outcome: &TestJobOutcome) {
        if self.verify {
            if let Some(cached) = self.records[cell]
                .as_ref()
                .and_then(|r| r.test_outcome(test))
            {
                if cached != outcome {
                    self.mismatches.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.note(cell, test, outcome, true);
    }

    /// Reports one *executed* cell's determined per-test outcomes: stores
    /// the record and, in verify mode, compares the folded cell outcome
    /// against the cached one.
    pub(crate) fn finish_cell(
        &self,
        cell: usize,
        suite: &str,
        stand: &str,
        tests: &[TestJobOutcome],
    ) {
        if self.verify {
            if let Some(cached) = self.records[cell]
                .as_ref()
                .and_then(|r| r.cell_outcome(suite, stand))
            {
                let executed = fold_cell(suite.to_owned(), stand.to_owned(), tests.to_vec());
                if cached != executed {
                    self.mismatches.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let written = self.cache.store_io(
            &self.keys[cell],
            &CellRecord {
                total: self.totals[cell],
                tests: tests.to_vec(),
                footprint: self.footprints[cell].clone(),
            },
        );
        self.obs.add(Counter::CacheBytesWritten, written);
    }

    /// Number of cached-vs-executed divergences seen in verify mode.
    pub(crate) fn mismatches(&self) -> usize {
        self.mismatches.load(Ordering::Relaxed)
    }

    /// Raises [`CoreError::CacheMismatch`] if verify mode saw divergences
    /// — called by every executor's join.
    pub(crate) fn check_verified(&self) -> Result<(), CoreError> {
        match self.mismatches() {
            0 => Ok(()),
            mismatches => Err(CoreError::CacheMismatch { mismatches }),
        }
    }

    fn note(&self, cell: usize, test: usize, outcome: &TestJobOutcome, executed: bool) {
        let mut c = self.collectors[cell].lock().expect("collector");
        if c.outcomes[test].is_none() {
            c.outcomes[test] = Some(outcome.clone());
            c.filled += 1;
        }
        c.executed |= executed;
        if c.filled == c.outcomes.len() && c.executed && !c.stored {
            c.stored = true;
            let tests: Vec<TestJobOutcome> = c
                .outcomes
                .iter()
                .map(|o| o.clone().expect("filled"))
                .collect();
            let record = CellRecord {
                total: tests.len(),
                tests,
                footprint: self.footprints[cell].clone(),
            };
            drop(c);
            let written = self.cache.store_io(&self.keys[cell], &record);
            self.obs.add(Counter::CacheBytesWritten, written);
        }
    }
}

impl fmt::Debug for CacheRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheRuntime")
            .field("verify", &self.verify)
            .field("cells", &self.keys.len())
            .field(
                "preloaded",
                &self.records.iter().filter(|r| r.is_some()).count(),
            )
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_core::Trace;

    fn result(test: &str) -> TestResult {
        TestResult {
            test: test.into(),
            stand: "HIL-A".into(),
            dut: "interior_light".into(),
            steps: vec![comptest_core::StepResult {
                nr: 0,
                t_end: comptest_model::SimTime::from_millis(500),
                checks: vec![],
            }],
            error: None,
            trace: Trace::new(),
        }
    }

    fn key(n: u64) -> CellKey {
        CellKey {
            suite_hash: n,
            stand_hash: n ^ 1,
            dut_config_hash: n ^ 2,
            exec_hash: n ^ 3,
        }
    }

    #[test]
    fn record_roundtrips_through_the_codec() {
        let record = CellRecord {
            total: 3,
            tests: vec![Ok(result("a")), Err("no resource supports get_u".into())],
            footprint: None,
        };
        let decoded = codec::decode(&codec::encode(&record)).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn cache_keying_parses_and_displays() {
        assert_eq!(CacheKeying::default(), CacheKeying::Footprint);
        for accepted in CacheKeying::ACCEPTED {
            let keying: CacheKeying = accepted.parse().unwrap();
            assert_eq!(keying.to_string(), accepted);
        }
        let err = "bogus".parse::<CacheKeying>().unwrap_err();
        assert!(err.contains("full, footprint"), "{err}");
    }

    #[test]
    fn partial_record_determines_cells_only_through_an_error() {
        let with_error = CellRecord {
            total: 3,
            tests: vec![Ok(result("a")), Err("boom".into())],
            footprint: None,
        };
        assert!(with_error.cell_outcome("s", "x").is_some());
        assert_eq!(with_error.test_outcome(0), Some(&Ok(result("a"))));
        assert!(with_error.test_outcome(2).is_none());

        let undetermined = CellRecord {
            total: 3,
            tests: vec![Ok(result("a")), Ok(result("b"))],
            footprint: None,
        };
        assert!(
            undetermined.cell_outcome("s", "x").is_none(),
            "missing tail"
        );
        assert!(
            undetermined.test_outcome(1).is_some(),
            "per-test still hits"
        );

        let complete = CellRecord {
            total: 2,
            tests: vec![Ok(result("a")), Ok(result("b"))],
            footprint: None,
        };
        let cell = complete.cell_outcome("s", "x").unwrap();
        assert_eq!(cell.outcome.as_ref().unwrap().results.len(), 2);
    }

    #[test]
    fn memory_cache_stores_and_loads() {
        let cache = MemoryCache::new();
        assert!(cache.is_empty());
        let record = CellRecord {
            total: 1,
            tests: vec![Ok(result("a"))],
            footprint: None,
        };
        assert!(cache.load(&key(1)).is_none());
        cache.store(&key(1), &record);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.load(&key(1)), Some(record));
        assert!(cache.load(&key(2)).is_none());
    }

    #[test]
    fn dir_cache_roundtrips_and_treats_corruption_as_a_miss() {
        let dir = std::env::temp_dir().join(format!("comptest-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DirCache::open(&dir).unwrap();
        assert_eq!(cache.format(), RecordFormat::Binary);
        let record = CellRecord {
            total: 1,
            tests: vec![Ok(result("a"))],
            footprint: None,
        };
        cache.store(&key(7), &record);
        assert_eq!(cache.load(&key(7)), Some(record.clone()));

        // Truncate the entry: unreadable -> miss, not an error.
        let path = cache.entry_path(&key(7));
        assert_eq!(path.extension().unwrap(), "bin");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(cache.load(&key(7)), None);

        // Arbitrary garbage and a wrong-version header: all misses.
        std::fs::write(&path, "not a record at all \u{0}\u{1}").unwrap();
        assert_eq!(cache.load(&key(7)), None);
        let mut wrong_version = bytes.clone();
        wrong_version[3] = binary::VERSION + 1;
        std::fs::write(&path, &wrong_version).unwrap();
        assert_eq!(cache.load(&key(7)), None);

        // A fresh store replaces the rotten entry (self-heal).
        cache.store(&key(7), &record);
        assert_eq!(cache.load(&key(7)), Some(record.clone()));

        // Reopening an existing directory is fine; a file path is not.
        assert!(DirCache::open(&dir).is_ok());
        let file = dir.join("plain-file");
        std::fs::write(&file, "x").unwrap();
        assert!(matches!(
            DirCache::open(&file),
            Err(CoreError::Cache { .. })
        ));
        assert!(matches!(DirCache::open(""), Err(CoreError::Cache { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_cache_reads_both_formats_and_latest_write_wins() {
        let dir =
            std::env::temp_dir().join(format!("comptest-cache-fmt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let record = CellRecord {
            total: 2,
            tests: vec![Ok(result("a")), Err("boom".into())],
            footprint: None,
        };

        // A JSON-written entry hits through a binary-default cache…
        let json_cache = DirCache::open(&dir)
            .unwrap()
            .with_format(RecordFormat::Json);
        assert_eq!(json_cache.entry_path(&key(1)).extension().unwrap(), "json");
        json_cache.store(&key(1), &record);
        let bin_cache = DirCache::open(&dir).unwrap();
        let info = bin_cache.lookup_io(&key(1));
        assert_eq!(info.lookup, CacheLookup::Hit(record.clone()));
        assert_eq!(info.format, Some(RecordFormat::Json));
        assert!(info.bytes > 0);

        // …and a binary-written entry hits through a JSON-writing cache.
        bin_cache.store(&key(2), &record);
        let info = json_cache.lookup_io(&key(2));
        assert_eq!(info.lookup, CacheLookup::Hit(record.clone()));
        assert_eq!(info.format, Some(RecordFormat::Binary));

        // Re-storing in the other format removes the stale file, so the
        // latest write wins for every reader.
        let updated = CellRecord {
            total: 2,
            tests: vec![Ok(result("b")), Err("boom".into())],
            footprint: None,
        };
        bin_cache.store(&key(1), &updated);
        assert!(!json_cache.entry_path(&key(1)).exists(), "stale JSON gone");
        assert_eq!(json_cache.load(&key(1)), Some(updated));

        // Misses report no bytes and no format.
        let info = bin_cache.lookup_io(&key(9));
        assert_eq!(info.lookup, CacheLookup::Miss);
        assert_eq!((info.bytes, info.format), (0, None));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Many writers — separate `DirCache` instances, mixed formats, shared
    /// keys — may interleave freely: every key must stay loadable at every
    /// instant (atomic rename means readers see old or new, never torn),
    /// the slower of two racing stores must not delete the faster one's
    /// record, and no `.tmp` files may survive.
    #[test]
    fn dir_cache_concurrent_writers_never_lose_the_winning_record() {
        let dir =
            std::env::temp_dir().join(format!("comptest-cache-hammer-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = DirCache::open(&dir).unwrap();
        const THREADS: usize = 8;
        const ROUNDS: usize = 50;
        const KEYS: u64 = 4;
        let record = CellRecord {
            total: 1,
            tests: vec![Ok(result("a"))],
            footprint: None,
        };
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let dir = &dir;
                let record = &record;
                scope.spawn(move || {
                    // Each thread its own instance — the temp-name counter
                    // must disambiguate across instances, not within one.
                    let format = if t % 2 == 0 {
                        RecordFormat::Binary
                    } else {
                        RecordFormat::Json
                    };
                    let cache = DirCache::open(dir).unwrap().with_format(format);
                    for round in 0..ROUNDS {
                        let k = key((t + round) as u64 % KEYS);
                        cache.store(&k, record);
                        // A concurrent reader (any format preference) must
                        // never observe a torn or vanished record.
                        assert_eq!(
                            cache.load(&k),
                            Some(record.clone()),
                            "store raced a concurrent writer into a miss"
                        );
                    }
                });
            }
        });
        let reader = DirCache::open(&dir).unwrap();
        for k in 0..KEYS {
            assert_eq!(reader.load(&key(k)), Some(record.clone()));
        }
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy();
            assert!(
                !name.starts_with(".tmp-"),
                "leftover temp file {name} survived the hammer"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
