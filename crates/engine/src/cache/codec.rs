//! Encoding cell records to and from the on-disk JSON shape.
//!
//! The codec is exhaustive: a cached [`TestResult`] carries its full step
//! results (including per-step simulated end times, so reports keep their
//! deterministic sim timing) **and** its complete stimulus/measurement
//! trace — a warm run must merge byte-identical to a cold one, and
//! `PartialEq` on `TestResult` compares everything. Floats travel as
//! strings (see [`super::json::f64_value`]) so `±INF` bounds and
//! shortest-representation round-tripping both work.
//!
//! Any malformed input decodes to an error, which the cache layer treats
//! as a miss.

use std::collections::BTreeMap;

use comptest_core::campaign::TestJobOutcome;
use comptest_core::hash::Footprint;
use comptest_core::{CheckResult, Measured, StepResult, TestResult, Trace, TraceEvent, Verdict};
use comptest_model::{BitPattern, MethodName, SignalName, SimTime, StatusBound};
use comptest_stand::AppliedValue;

use super::json::{f64_from, f64_value, parse, JsonError, Value};
use super::CellRecord;

/// Format version; bump on any *incompatible* shape change so stale files
/// read as misses. The optional `footprint` field is additive — readers
/// ignore unknown keys and absent footprints decode to `None` — so it did
/// not bump the version and pre-footprint records keep hitting.
const VERSION: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn opt_f64_value(v: Option<f64>) -> Value {
    match v {
        Some(v) => f64_value(v),
        None => Value::Null,
    }
}

fn opt_f64_from(v: &Value) -> Result<Option<f64>, JsonError> {
    match v {
        Value::Null => Ok(None),
        other => Ok(Some(f64_from(other)?)),
    }
}

fn simtime_value(t: SimTime) -> Value {
    Value::u64(t.as_micros())
}

fn simtime_from(v: &Value) -> Result<SimTime, JsonError> {
    Ok(SimTime::from_micros(v.as_u64()?))
}

fn u32_from(v: &Value) -> Result<u32, JsonError> {
    u32::try_from(v.as_u64()?).map_err(|_| JsonError("u32 out of range".into()))
}

fn signal_from(v: &Value) -> Result<SignalName, JsonError> {
    SignalName::new(v.as_str()?).map_err(|e| JsonError(e.to_string()))
}

fn method_from(v: &Value) -> Result<MethodName, JsonError> {
    MethodName::new(v.as_str()?).map_err(|e| JsonError(e.to_string()))
}

fn bits_value(b: BitPattern) -> Value {
    obj(vec![
        ("bits", Value::u64(b.bits())),
        ("width", Value::u64(u64::from(b.width()))),
    ])
}

fn bits_from(v: &Value) -> Result<BitPattern, JsonError> {
    let bits = v.field("bits")?.as_u64()?;
    let width = u8::try_from(v.field("width")?.as_u64()?)
        .map_err(|_| JsonError("bit width out of range".into()))?;
    BitPattern::new(bits, width).map_err(|e| JsonError(e.to_string()))
}

fn bound_value(b: &StatusBound) -> Value {
    match b {
        StatusBound::Numeric { nominal, lo, hi } => obj(vec![
            ("kind", Value::str("num")),
            ("nominal", opt_f64_value(*nominal)),
            ("lo", f64_value(*lo)),
            ("hi", f64_value(*hi)),
        ]),
        StatusBound::Bits(bits) => {
            obj(vec![("kind", Value::str("bits")), ("v", bits_value(*bits))])
        }
    }
}

fn bound_from(v: &Value) -> Result<StatusBound, JsonError> {
    match v.field("kind")?.as_str()? {
        "num" => Ok(StatusBound::Numeric {
            nominal: opt_f64_from(v.field("nominal")?)?,
            lo: f64_from(v.field("lo")?)?,
            hi: f64_from(v.field("hi")?)?,
        }),
        "bits" => Ok(StatusBound::Bits(bits_from(v.field("v")?)?)),
        other => Err(JsonError(format!("bad bound kind {other:?}"))),
    }
}

fn measured_value(m: &Measured) -> Value {
    match m {
        Measured::Num(n) => obj(vec![("kind", Value::str("num")), ("v", f64_value(*n))]),
        Measured::Bits(b) => obj(vec![("kind", Value::str("bits")), ("v", Value::u64(*b))]),
        Measured::None => obj(vec![("kind", Value::str("none"))]),
    }
}

fn measured_from(v: &Value) -> Result<Measured, JsonError> {
    match v.field("kind")?.as_str()? {
        "num" => Ok(Measured::Num(f64_from(v.field("v")?)?)),
        "bits" => Ok(Measured::Bits(v.field("v")?.as_u64()?)),
        "none" => Ok(Measured::None),
        other => Err(JsonError(format!("bad measured kind {other:?}"))),
    }
}

fn verdict_value(v: Verdict) -> Value {
    Value::str(match v {
        Verdict::Pass => "pass",
        Verdict::Fail => "fail",
        Verdict::Error => "error",
    })
}

fn verdict_from(v: &Value) -> Result<Verdict, JsonError> {
    match v.as_str()? {
        "pass" => Ok(Verdict::Pass),
        "fail" => Ok(Verdict::Fail),
        "error" => Ok(Verdict::Error),
        other => Err(JsonError(format!("bad verdict {other:?}"))),
    }
}

fn check_value(c: &CheckResult) -> Value {
    obj(vec![
        ("step", Value::u64(u64::from(c.step))),
        ("at", simtime_value(c.at)),
        ("signal", Value::str(c.signal.as_str())),
        ("method", Value::str(c.method.as_str())),
        ("bound", bound_value(&c.bound)),
        ("measured", measured_value(&c.measured)),
        ("verdict", verdict_value(c.verdict)),
        ("message", Value::str(&c.message)),
    ])
}

fn check_from(v: &Value) -> Result<CheckResult, JsonError> {
    Ok(CheckResult {
        step: u32_from(v.field("step")?)?,
        at: simtime_from(v.field("at")?)?,
        signal: signal_from(v.field("signal")?)?,
        method: method_from(v.field("method")?)?,
        bound: bound_from(v.field("bound")?)?,
        measured: measured_from(v.field("measured")?)?,
        verdict: verdict_from(v.field("verdict")?)?,
        message: v.field("message")?.as_str()?.to_owned(),
    })
}

fn applied_value(v: &AppliedValue) -> Value {
    match v {
        AppliedValue::Num(n) => obj(vec![("kind", Value::str("num")), ("v", f64_value(*n))]),
        AppliedValue::Bits(b) => obj(vec![("kind", Value::str("bits")), ("v", bits_value(*b))]),
    }
}

fn applied_from(v: &Value) -> Result<AppliedValue, JsonError> {
    match v.field("kind")?.as_str()? {
        "num" => Ok(AppliedValue::Num(f64_from(v.field("v")?)?)),
        "bits" => Ok(AppliedValue::Bits(bits_from(v.field("v")?)?)),
        other => Err(JsonError(format!("bad applied kind {other:?}"))),
    }
}

fn trace_event_value(e: &TraceEvent) -> Value {
    match e {
        TraceEvent::Applied {
            at,
            signal,
            resource,
            value,
        } => obj(vec![
            ("kind", Value::str("apply")),
            ("at", simtime_value(*at)),
            ("signal", Value::str(signal.as_str())),
            ("resource", Value::str(resource)),
            ("value", applied_value(value)),
        ]),
        TraceEvent::Measured {
            at,
            signal,
            resource,
            value,
        } => obj(vec![
            ("kind", Value::str("measure")),
            ("at", simtime_value(*at)),
            ("signal", Value::str(signal.as_str())),
            ("resource", Value::str(resource)),
            ("value", measured_value(value)),
        ]),
        TraceEvent::StepEnd { nr, at } => obj(vec![
            ("kind", Value::str("step_end")),
            ("nr", Value::u64(u64::from(*nr))),
            ("at", simtime_value(*at)),
        ]),
    }
}

fn trace_event_from(v: &Value) -> Result<TraceEvent, JsonError> {
    match v.field("kind")?.as_str()? {
        "apply" => Ok(TraceEvent::Applied {
            at: simtime_from(v.field("at")?)?,
            signal: signal_from(v.field("signal")?)?,
            resource: v.field("resource")?.as_str()?.to_owned(),
            value: applied_from(v.field("value")?)?,
        }),
        "measure" => Ok(TraceEvent::Measured {
            at: simtime_from(v.field("at")?)?,
            signal: signal_from(v.field("signal")?)?,
            resource: v.field("resource")?.as_str()?.to_owned(),
            value: measured_from(v.field("value")?)?,
        }),
        "step_end" => Ok(TraceEvent::StepEnd {
            nr: u32_from(v.field("nr")?)?,
            at: simtime_from(v.field("at")?)?,
        }),
        other => Err(JsonError(format!("bad trace kind {other:?}"))),
    }
}

fn test_result_value(r: &TestResult) -> Value {
    obj(vec![
        ("test", Value::str(&r.test)),
        ("stand", Value::str(&r.stand)),
        ("dut", Value::str(&r.dut)),
        (
            "steps",
            Value::Array(
                r.steps
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("nr", Value::u64(u64::from(s.nr))),
                            ("t_end", simtime_value(s.t_end)),
                            (
                                "checks",
                                Value::Array(s.checks.iter().map(check_value).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "error",
            match &r.error {
                Some(e) => Value::str(e),
                None => Value::Null,
            },
        ),
        (
            "trace",
            Value::Array(r.trace.iter().map(trace_event_value).collect()),
        ),
    ])
}

fn test_result_from(v: &Value) -> Result<TestResult, JsonError> {
    let steps = v
        .field("steps")?
        .as_array()?
        .iter()
        .map(|s| {
            Ok(StepResult {
                nr: u32_from(s.field("nr")?)?,
                t_end: simtime_from(s.field("t_end")?)?,
                checks: s
                    .field("checks")?
                    .as_array()?
                    .iter()
                    .map(check_from)
                    .collect::<Result<_, _>>()?,
            })
        })
        .collect::<Result<_, JsonError>>()?;
    let mut trace = Trace::new();
    for e in v.field("trace")?.as_array()? {
        trace.push(trace_event_from(e)?);
    }
    Ok(TestResult {
        test: v.field("test")?.as_str()?.to_owned(),
        stand: v.field("stand")?.as_str()?.to_owned(),
        dut: v.field("dut")?.as_str()?.to_owned(),
        steps,
        error: match v.field("error")? {
            Value::Null => None,
            other => Some(other.as_str()?.to_owned()),
        },
        trace,
    })
}

fn str_list_value(items: &[String]) -> Value {
    Value::Array(items.iter().map(|s| Value::str(s.as_str())).collect())
}

fn str_list_from(v: &Value) -> Result<Vec<String>, JsonError> {
    v.as_array()?
        .iter()
        .map(|s| Ok(s.as_str()?.to_owned()))
        .collect()
}

fn footprint_value(fp: &Footprint) -> Value {
    obj(vec![
        ("salt", Value::str(&fp.salt)),
        ("signals", str_list_value(&fp.signals)),
        ("pins", str_list_value(&fp.pins)),
        (
            "frames",
            Value::Array(
                fp.frames
                    .iter()
                    .map(|f| Value::u64(u64::from(*f)))
                    .collect(),
            ),
        ),
        ("resources", str_list_value(&fp.resources)),
        ("ecus", str_list_value(&fp.ecus)),
        ("plan_hash", Value::u64(fp.plan_hash)),
        ("dut_slice_hash", Value::u64(fp.dut_slice_hash)),
    ])
}

fn footprint_from(v: &Value) -> Result<Footprint, JsonError> {
    Ok(Footprint {
        salt: v.field("salt")?.as_str()?.to_owned(),
        signals: str_list_from(v.field("signals")?)?,
        pins: str_list_from(v.field("pins")?)?,
        frames: v
            .field("frames")?
            .as_array()?
            .iter()
            .map(|f| {
                u32::try_from(f.as_u64()?).map_err(|_| JsonError("frame id out of range".into()))
            })
            .collect::<Result<_, _>>()?,
        resources: str_list_from(v.field("resources")?)?,
        ecus: str_list_from(v.field("ecus")?)?,
        plan_hash: v.field("plan_hash")?.as_u64()?,
        dut_slice_hash: v.field("dut_slice_hash")?.as_u64()?,
    })
}

fn outcome_value(outcome: &TestJobOutcome) -> Value {
    match outcome {
        Ok(result) => obj(vec![("ok", test_result_value(result))]),
        Err(reason) => obj(vec![("err", Value::str(reason))]),
    }
}

fn outcome_from(v: &Value) -> Result<TestJobOutcome, JsonError> {
    let map = v.as_object()?;
    match (map.get("ok"), map.get("err")) {
        (Some(ok), None) => Ok(Ok(test_result_from(ok)?)),
        (None, Some(err)) => Ok(Err(err.as_str()?.to_owned())),
        _ => Err(JsonError("outcome needs exactly one of ok/err".into())),
    }
}

/// Serialises a cell record (compact JSON, deterministic field order).
pub(crate) fn encode(record: &CellRecord) -> String {
    let mut fields = vec![
        ("version", Value::u64(VERSION)),
        ("total", Value::u64(record.total as u64)),
        (
            "tests",
            Value::Array(record.tests.iter().map(outcome_value).collect()),
        ),
    ];
    if let Some(fp) = &record.footprint {
        fields.push(("footprint", footprint_value(fp)));
    }
    obj(fields).render()
}

/// Parses a cell record; any malformed or truncated input is an error
/// (which the caller treats as a cache miss).
pub(crate) fn decode(text: &str) -> Result<CellRecord, JsonError> {
    let doc = parse(text)?;
    if doc.field("version")?.as_u64()? != VERSION {
        return Err(JsonError("unknown record version".into()));
    }
    let total = usize::try_from(doc.field("total")?.as_u64()?)
        .map_err(|_| JsonError("total out of range".into()))?;
    let tests: Vec<TestJobOutcome> = doc
        .field("tests")?
        .as_array()?
        .iter()
        .map(outcome_from)
        .collect::<Result<_, _>>()?;
    if tests.len() > total {
        return Err(JsonError("more outcomes than tests".into()));
    }
    let footprint = match doc.as_object()?.get("footprint") {
        Some(v) => Some(footprint_from(v)?),
        None => None,
    };
    Ok(CellRecord {
        total,
        tests,
        footprint,
    })
}
