//! The event-loop [`AsyncExecutor`]: thousands of concurrent simulated
//! stands per OS thread.
//!
//! Where [`PooledExecutor`](crate::PooledExecutor) needs one OS thread per
//! in-flight run, this executor exploits what the resumable
//! [`TestRun`] core makes possible: a run is a suspendable transition
//! system, so one thread can interleave thousands of them. Each shard
//! thread owns a **sim-time wheel** — a [`BinaryHeap`] keyed by every
//! active run's next step deadline — pops the run with the earliest
//! simulated deadline, advances it exactly one planned step, and
//! re-inserts it. Runs thus progress in global simulated-time order, like
//! event-driven co-simulation of that many physical stands racked side by
//! side. No extra dependencies: the loop is a plain heap over `mpsc`
//! channels.
//!
//! Admission is cheap by construction: plans come from the campaign's
//! shared [`PlanSlot`](crate::executor::PlanSlot)s (resolved at most once
//! per (entry, test, stand) triple, and reused across launches of the same
//! campaign), and a configured campaign cache resolves hits *at
//! admission* — a cached run never touches the wheel at all.
//!
//! The executor keeps the full [`CampaignExecutor`](crate::CampaignExecutor)
//! contract: jobs come from the same deterministic plans, outcomes merge
//! byte-identical to [`SerialExecutor`](crate::SerialExecutor) at both
//! granularities, and the first codegen error surfaces from launch before
//! any job runs. Cancellation is *finer-grained* than on the other
//! executors: the token is checked before every **step**, so a cancelled
//! campaign stops mid-run at the next step boundary — an abandoned run
//! reports no outcome, counts into `cancelled`, and (having never
//! finished) emits no `TestFinished`/`JobFinished` event.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::time::Instant;

use comptest_core::campaign::{merge_test_outcomes, CampaignCell, TestJobOutcome};
use comptest_core::error::CoreError;
use comptest_core::exec::{RunState, TestRun};
use comptest_dut::Device;
use comptest_model::SimTime;
use comptest_stand::{ExecutionPlan, TestStand};

use crate::cache::fold_cell;
use crate::campaign::{Campaign, Granularity};
use crate::events::{emit, EngineEvent};
use crate::executor::{
    check_lost, check_verified, collect, fold_cell_slots, outcome_sim_end, outcome_status,
    rescue_cell_strands, rescue_test_strands, CampaignExecutor, JobCtx, JobMsg, PackagedCell,
    PackagedJob, PackagedTest, Prepared, Strand,
};
use crate::handle::{CampaignHandle, CampaignOutcome, EventStream};
use crate::obs::{Counter, Gauge, SpanCat, SpanHandle};

/// Executes campaigns on an event loop of resumable [`TestRun`]s: up to
/// `concurrency` runs are open simultaneously, interleaved step by step in
/// simulated-time order on one OS thread (optionally sharded over
/// several). Concurrency is therefore bounded by memory, not by thread
/// count — `AsyncExecutor::new(10_000)` is an ordinary configuration.
///
/// Outcomes merge byte-identical to every other executor; see the
/// [module docs](self) for the scheduling and cancellation details.
#[derive(Debug, Clone, Copy)]
pub struct AsyncExecutor {
    concurrency: usize,
    shards: usize,
}

impl AsyncExecutor {
    /// An executor admitting up to `concurrency` simultaneous in-flight
    /// runs, all interleaved on a single shard thread.
    ///
    /// `concurrency` must be at least `1` — the same rule the CLI enforces
    /// for `--concurrency`. Debug builds assert on `0`, release builds
    /// clamp to `1` (which degenerates to serial execution in plan order).
    ///
    /// # Panics
    ///
    /// Debug builds panic on `concurrency == 0`.
    pub fn new(concurrency: usize) -> Self {
        debug_assert!(
            concurrency > 0,
            "AsyncExecutor::new(0): at least one in-flight run is required \
             (release builds clamp to 1; the CLI rejects --concurrency 0 outright)"
        );
        Self {
            concurrency: concurrency.max(1),
            shards: 1,
        }
    }

    /// Shards the event loop over `shards` OS threads (builder style).
    /// Jobs are dealt round-robin across shards in plan order, the
    /// in-flight budget is split so the shard limits sum to exactly
    /// `concurrency` (a launch never spawns more shards than it has
    /// budget or jobs for), and merge order is unaffected.
    ///
    /// # Panics
    ///
    /// Debug builds panic on `shards == 0`; release builds clamp to `1`.
    pub fn sharded(mut self, shards: usize) -> Self {
        debug_assert!(
            shards > 0,
            "AsyncExecutor::sharded(0): at least one shard thread is required \
             (release builds clamp to 1)"
        );
        self.shards = shards.max(1);
        self
    }

    /// Maximum simultaneously in-flight runs across all shards.
    pub fn concurrency(&self) -> usize {
        self.concurrency
    }

    /// Number of shard threads the event loop spreads over.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

/// Splits the total in-flight budget over `parts` shards so the limits sum
/// to exactly `concurrency`: the first `concurrency % parts` shards get
/// one extra slot. Callers cap `parts` at `concurrency`, so every shard's
/// limit is at least 1 (a zero-limit shard would spin without admitting).
fn shard_limits(concurrency: usize, parts: usize) -> impl Iterator<Item = usize> {
    let base = concurrency / parts;
    let extra = concurrency % parts;
    (0..parts).map(move |i| base + usize::from(i < extra))
}

impl CampaignExecutor for AsyncExecutor {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        match campaign.granularity {
            Granularity::Cell => launch_async_cells(self, campaign),
            Granularity::Test => launch_async_tests(self, campaign),
        }
    }
}

/// Deals `items` round-robin into at most `shards` non-empty parts,
/// preserving plan order within each part.
fn partition<T>(items: Vec<T>, shards: usize) -> Vec<VecDeque<T>> {
    let shards = shards.min(items.len()).max(1);
    let mut parts: Vec<VecDeque<T>> = (0..shards).map(|_| VecDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        parts[i % shards].push_back(item);
    }
    parts
}

/// One sim-time-wheel entry: a payload keyed by (deadline, admission
/// sequence). The ordering is *reversed* so [`BinaryHeap`] pops the
/// earliest deadline first; the sequence breaks ties in admission order,
/// keeping the schedule deterministic.
struct Scheduled<T> {
    deadline: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}

/// Test-granular async launch: the planned job list is dealt across shard
/// threads, each interleaving its runs on a sim-time wheel; outcomes merge
/// through [`merge_test_outcomes`] exactly like every other executor.
fn launch_async_tests<'a>(
    executor: &AsyncExecutor,
    campaign: &Campaign<'a, '_>,
) -> Result<CampaignHandle<'a>, CoreError> {
    let prepared = Prepared::new(campaign)?;
    let jobs = prepared.package_jobs(campaign.entries);
    let n_jobs = jobs.len();
    let ctx = JobCtx::new(campaign, &prepared);
    let (events_tx, events_rx) = mpsc::channel();
    let (results_tx, results_rx) = mpsc::channel();
    ctx.emit_cache_warnings(&events_tx);
    let parts = partition(jobs, executor.shards.min(executor.concurrency));
    // Additive claim (not `gauge_set`): concurrent campaigns sharing one
    // recorder sum their shard counts, released when each joins.
    let claimed_workers = parts.len() as i64;
    ctx.obs.gauge_add(Gauge::Workers, claimed_workers);
    let limits = shard_limits(executor.concurrency, parts.len());
    for (part, limit) in parts.into_iter().zip(limits) {
        let ctx = ctx.clone();
        let events = events_tx.clone();
        let results = results_tx.clone();
        std::thread::spawn(move || {
            drive_test_shard(part, limit, &ctx, &events, &results);
        });
    }
    // Drop the launch-side senders so both streams end with the last shard.
    drop(events_tx);
    drop(results_tx);

    let entries = campaign.entries;
    let stands = campaign.stands;
    let run_token = ctx.cancel.run_token();
    Ok(CampaignHandle::new(
        EventStream::new(events_rx),
        run_token,
        Box::new(move || {
            let (mut slots, acknowledged, strands) = collect(results_rx, n_jobs);
            ctx.obs.gauge_add(Gauge::Workers, -claimed_workers);
            rescue_test_strands(strands, entries, &ctx, &mut slots);
            let (result, cancelled) = merge_test_outcomes(entries, stands, slots);
            check_lost(cancelled, acknowledged)?;
            check_verified(&ctx.cache)?;
            Ok(CampaignOutcome { result, cancelled })
        }),
    ))
}

/// Everything about one admitted test except its run — what the finish
/// path needs after the state machine is consumed.
struct TestTicket {
    slot: usize,
    cell: usize,
    test: usize,
    suite: String,
    stand: String,
    name: String,
    started: Instant,
    /// The test's trace span, closed at finish (or on abandonment, so
    /// span-open always equals span-close even under cancellation).
    span: SpanHandle,
}

/// One in-flight test on the wheel (the plan is the campaign's shared
/// `Arc`, so parking a run never clones the plan).
struct ActiveTest {
    ticket: TestTicket,
    run: TestRun<Arc<ExecutionPlan>, Device>,
}

/// One shard's event loop at test granularity: admit until the in-flight
/// limit is reached (so `limit` runs are genuinely open at once), then
/// repeatedly advance the earliest-deadline run by one step.
fn drive_test_shard(
    mut pending: VecDeque<PackagedJob>,
    limit: usize,
    ctx: &JobCtx,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<TestJobOutcome>>,
) {
    let mut wheel: BinaryHeap<Scheduled<ActiveTest>> = BinaryHeap::new();
    let mut seq = 0u64;
    ctx.obs.gauge_add(Gauge::QueueDepth, pending.len() as i64);
    loop {
        while wheel.len() < limit {
            let Some(job) = pending.pop_front() else {
                break;
            };
            ctx.obs.gauge_add(Gauge::QueueDepth, -1);
            admit_test(job, ctx, events, results, &mut wheel, &mut seq);
        }
        let Some(entry) = wheel.pop() else {
            if pending.is_empty() {
                return;
            }
            // Every admitted job resolved at admission (cache hits,
            // planning errors or cancellations); go admit more.
            continue;
        };
        // Step-granular cancellation: abandon the popped run at its step
        // boundary; later iterations drain the rest of the wheel the same
        // way. The abandoned slot stays empty, which the merge counts as
        // cancelled; acknowledging here is what keeps join() from calling
        // it lost.
        if ctx.cancel.is_cancelled() {
            ctx.obs.gauge_add(Gauge::InflightJobs, -1);
            ctx.obs
                .span_end(entry.payload.ticket.span, || Some("cancelled".into()));
            let _ = results.send(JobMsg::Cancelled);
            continue;
        }
        let mut active = entry.payload;
        match active.run.step() {
            RunState::Running => {
                wheel.push(Scheduled {
                    deadline: active.run.next_deadline(),
                    seq: entry.seq,
                    payload: active,
                });
            }
            RunState::Finished(result) => {
                ctx.obs.gauge_add(Gauge::InflightJobs, -1);
                finish_test(active.ticket, Ok(result), ctx, events, results);
            }
        }
    }
}

/// Admits one packaged test: consults the cache (a hit resolves the job
/// without touching the wheel), emits `TestStarted`, resolves the shared
/// plan slot, and either parks the fresh [`TestRun`] on the wheel or — on
/// a planning failure — resolves the job immediately with the same
/// not-runnable outcome the blocking executors produce.
fn admit_test(
    mut job: PackagedJob,
    ctx: &JobCtx,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<TestJobOutcome>>,
    wheel: &mut BinaryHeap<Scheduled<ActiveTest>>,
    seq: &mut u64,
) {
    if ctx.cancel.is_cancelled() {
        let _ = results.send(JobMsg::Cancelled);
        return;
    }
    if ctx.try_cached_test(&job, events, results) {
        return;
    }
    // Predicted hit, actual miss, no device to run with (possible when the
    // store is shared with other processes): strand the job back to the
    // join, which can borrow the campaign's device factories.
    let Some(device) = job.take_device() else {
        let _ = results.send(JobMsg::Stranded(Strand::Test(Box::new(job))));
        return;
    };
    let plan = job.resolve_plan(&ctx.obs);
    let PackagedJob {
        job: slot,
        cell,
        test,
        suite,
        stand_name,
        name,
        ..
    } = job;
    emit(
        events,
        EngineEvent::TestStarted {
            cell,
            test,
            suite: suite.clone(),
            stand: stand_name.clone(),
            name: name.clone(),
        },
    );
    let span = ctx
        .obs
        .span_begin(SpanCat::Test, || format!("{suite}::{name}"));
    let ticket = TestTicket {
        slot,
        cell,
        test,
        suite,
        stand: stand_name,
        name,
        started: Instant::now(),
        span,
    };
    match plan {
        Ok(plan) => {
            let mut run = TestRun::new(plan, device, &ctx.exec);
            if let Some(probe) = &ctx.step_probe {
                run = run.with_probe(Arc::clone(probe));
            }
            ctx.obs.gauge_add(Gauge::InflightJobs, 1);
            wheel.push(Scheduled {
                deadline: run.next_deadline(),
                seq: *seq,
                payload: ActiveTest { ticket, run },
            });
            *seq += 1;
        }
        Err(reason) => finish_test(ticket, Err(reason), ctx, events, results),
    }
}

/// Completes one test job: feeds the cache (store + verify), emits
/// `TestFinished` (wall-clock measured from admission, so interleaved runs
/// overlap), trips `stop_on_first_fail`, and reports the outcome to the
/// collector.
fn finish_test(
    ticket: TestTicket,
    outcome: TestJobOutcome,
    ctx: &JobCtx,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<TestJobOutcome>>,
) {
    if let Some(runtime) = &ctx.cache {
        runtime.finish_test(ticket.cell, ticket.test, &outcome);
    }
    let (status, failed) = outcome_status(&outcome);
    let wall = ticket.started.elapsed();
    ctx.obs.inc(Counter::JobsExecuted);
    ctx.obs.inc(Counter::TestsExecuted);
    ctx.obs.test_timing(wall, outcome_sim_end(&outcome));
    ctx.obs.span_end(ticket.span, || Some(status.clone()));
    emit(
        events,
        EngineEvent::TestFinished {
            cell: ticket.cell,
            test: ticket.test,
            suite: ticket.suite,
            stand: ticket.stand,
            name: ticket.name,
            status,
            failed,
            duration: wall,
        },
    );
    if failed && ctx.stop {
        ctx.cancel.trip();
    }
    let _ = results.send(JobMsg::Done(ticket.slot, outcome));
}

/// Cell-granular async launch: whole suite×stand cells interleave on the
/// wheel, each advancing its current test one step at a time.
fn launch_async_cells<'a>(
    executor: &AsyncExecutor,
    campaign: &Campaign<'a, '_>,
) -> Result<CampaignHandle<'a>, CoreError> {
    let prepared = Prepared::new(campaign)?;
    let cells = prepared.package_cells(campaign.entries);
    let n_cells = cells.len();
    let ctx = JobCtx::new(campaign, &prepared);
    let (events_tx, events_rx) = mpsc::channel();
    let (results_tx, results_rx) = mpsc::channel();
    ctx.emit_cache_warnings(&events_tx);
    let parts = partition(cells, executor.shards.min(executor.concurrency));
    // Additive claim, mirroring `launch_async_tests` (see the comment
    // there).
    let claimed_workers = parts.len() as i64;
    ctx.obs.gauge_add(Gauge::Workers, claimed_workers);
    let limits = shard_limits(executor.concurrency, parts.len());
    for (part, limit) in parts.into_iter().zip(limits) {
        let ctx = ctx.clone();
        let events = events_tx.clone();
        let results = results_tx.clone();
        std::thread::spawn(move || {
            drive_cell_shard(part, limit, &ctx, &events, &results);
        });
    }
    drop(events_tx);
    drop(results_tx);

    let entries = campaign.entries;
    let run_token = ctx.cancel.run_token();
    Ok(CampaignHandle::new(
        EventStream::new(events_rx),
        run_token,
        Box::new(move || {
            let (mut slots, acknowledged, strands) = collect(results_rx, n_cells);
            ctx.obs.gauge_add(Gauge::Workers, -claimed_workers);
            rescue_cell_strands(strands, entries, &ctx, &mut slots);
            let outcome = fold_cell_slots(slots, acknowledged)?;
            check_verified(&ctx.cache)?;
            Ok(outcome)
        }),
    ))
}

/// Everything about one admitted cell except its current run: identity,
/// the queue of tests not yet started and the per-test outcomes finished
/// so far (what the cache records and the final fold consumes).
struct CellShell {
    slot: usize,
    suite: String,
    stand_name: String,
    stand: Arc<TestStand>,
    remaining: VecDeque<PackagedTest>,
    outcomes: Vec<TestJobOutcome>,
    /// The cell's trace span, closed at finish (or on abandonment, so
    /// span-open always equals span-close even under cancellation).
    span: SpanHandle,
}

/// One in-flight cell on the wheel: its shell plus the current test's run.
struct ActiveCell {
    shell: CellShell,
    run: TestRun<Arc<ExecutionPlan>, Device>,
}

/// The next scheduling state of a cell, at admission and after every
/// finished test: another run to park on the wheel, or the completed
/// shell (its `outcomes` determine the cell).
enum CellStep {
    Active(Box<ActiveCell>),
    Done(CellShell),
}

/// Starts the cell's next test — the single transition shared by
/// admission and the steady-state loop, preserving the blocking
/// executors' semantics: the first planning error ends the cell, a
/// drained queue completes it.
fn start_next_test(mut shell: CellShell, ctx: &JobCtx) -> CellStep {
    match shell.remaining.pop_front() {
        None => CellStep::Done(shell),
        Some(mut test) => match test.plan.resolve(&test.script, &shell.stand, &ctx.obs) {
            Err(reason) => {
                shell.outcomes.push(Err(reason));
                CellStep::Done(shell)
            }
            Ok(plan) => match test.take_device() {
                // Unreachable after `admit_cell`'s pre-check; degrade to a
                // planning failure ending the cell rather than panic.
                None => {
                    shell
                        .outcomes
                        .push(Err("internal: packaged test lost its device".into()));
                    CellStep::Done(shell)
                }
                Some(device) => {
                    let mut run = TestRun::new(plan, device, &ctx.exec);
                    if let Some(probe) = &ctx.step_probe {
                        run = run.with_probe(Arc::clone(probe));
                    }
                    CellStep::Active(Box::new(ActiveCell { run, shell }))
                }
            },
        },
    }
}

/// One shard's event loop at cell granularity.
fn drive_cell_shard(
    mut pending: VecDeque<PackagedCell>,
    limit: usize,
    ctx: &JobCtx,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<CampaignCell>>,
) {
    let mut wheel: BinaryHeap<Scheduled<Box<ActiveCell>>> = BinaryHeap::new();
    let mut seq = 0u64;
    ctx.obs.gauge_add(Gauge::QueueDepth, pending.len() as i64);
    loop {
        while wheel.len() < limit {
            let Some(cell) = pending.pop_front() else {
                break;
            };
            ctx.obs.gauge_add(Gauge::QueueDepth, -1);
            admit_cell(cell, ctx, events, results, &mut wheel, &mut seq);
        }
        let Some(entry) = wheel.pop() else {
            if pending.is_empty() {
                return;
            }
            continue;
        };
        // Step-granular cancellation, as on the test-granular loop: the
        // cell is abandoned mid-test; its finished tests are discarded
        // (the cell merges as cancelled, keeping parity with the pooled
        // executor's all-or-nothing cell outcomes).
        if ctx.cancel.is_cancelled() {
            ctx.obs.gauge_add(Gauge::InflightJobs, -1);
            ctx.obs
                .span_end(entry.payload.shell.span, || Some("cancelled".into()));
            let _ = results.send(JobMsg::Cancelled);
            continue;
        }
        let mut cell = entry.payload;
        match cell.run.step() {
            RunState::Running => {
                wheel.push(Scheduled {
                    deadline: cell.run.next_deadline(),
                    seq: entry.seq,
                    payload: cell,
                });
            }
            RunState::Finished(result) => {
                let mut shell = cell.shell;
                shell.outcomes.push(Ok(result));
                match start_next_test(shell, ctx) {
                    CellStep::Active(cell) => {
                        wheel.push(Scheduled {
                            deadline: cell.run.next_deadline(),
                            seq: entry.seq,
                            payload: cell,
                        });
                    }
                    CellStep::Done(shell) => {
                        ctx.obs.gauge_add(Gauge::InflightJobs, -1);
                        finish_cell(shell, ctx, events, results);
                    }
                }
            }
        }
    }
}

/// Admits one packaged cell: consults the cache (a hit resolves the whole
/// cell without touching the wheel), emits `JobStarted` and starts its
/// first test. A cell whose first test cannot be planned (or that has no
/// tests) resolves immediately, exactly like the blocking executors.
fn admit_cell(
    cell: PackagedCell,
    ctx: &JobCtx,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<CampaignCell>>,
    wheel: &mut BinaryHeap<Scheduled<Box<ActiveCell>>>,
    seq: &mut u64,
) {
    if ctx.cancel.is_cancelled() {
        let _ = results.send(JobMsg::Cancelled);
        return;
    }
    if ctx.try_cached_cell(&cell, events, results) {
        return;
    }
    // Predicted hit, actual miss: the cell was packaged without devices
    // (all-or-none per cell). Strand it back to the join before any
    // started event leaks out.
    if cell.tests.iter().any(|t| t.device.is_none()) {
        let _ = results.send(JobMsg::Stranded(Strand::Cell(Box::new(cell))));
        return;
    }
    let PackagedCell {
        cell: slot,
        suite,
        stand_name,
        stand,
        tests,
        ..
    } = cell;
    emit(
        events,
        EngineEvent::JobStarted {
            cell: slot,
            suite: suite.clone(),
            stand: stand_name.clone(),
        },
    );
    let span = ctx
        .obs
        .span_begin(SpanCat::Cell, || format!("{suite} on {stand_name}"));
    let shell = CellShell {
        slot,
        suite,
        stand_name,
        stand,
        remaining: tests.into(),
        outcomes: Vec::new(),
        span,
    };
    match start_next_test(shell, ctx) {
        CellStep::Active(cell) => {
            ctx.obs.gauge_add(Gauge::InflightJobs, 1);
            wheel.push(Scheduled {
                deadline: cell.run.next_deadline(),
                seq: *seq,
                payload: cell,
            });
            *seq += 1;
        }
        CellStep::Done(shell) => finish_cell(shell, ctx, events, results),
    }
}

/// Completes one cell: feeds the cache with the determined per-test
/// outcomes, folds them into the canonical cell outcome, emits
/// `JobFinished`, trips `stop_on_first_fail`, and reports — the same
/// event shape as the pooled executor.
fn finish_cell(
    shell: CellShell,
    ctx: &JobCtx,
    events: &Sender<EngineEvent>,
    results: &Sender<JobMsg<CampaignCell>>,
) {
    let CellShell {
        slot,
        suite,
        stand_name,
        outcomes,
        span,
        ..
    } = shell;
    if let Some(runtime) = &ctx.cache {
        runtime.finish_cell(slot, &suite, &stand_name, &outcomes);
    }
    ctx.obs.inc(Counter::JobsExecuted);
    ctx.obs.add(Counter::TestsExecuted, outcomes.len() as u64);
    let cell = fold_cell(suite, stand_name, outcomes);
    let failed = !cell.passed();
    ctx.obs.span_end(span, || Some(cell.status()));
    emit(
        events,
        EngineEvent::JobFinished {
            cell: slot,
            suite: cell.suite.clone(),
            stand: cell.stand.clone(),
            status: cell.status(),
            failed,
        },
    );
    if failed && ctx.stop {
        ctx.cancel.trip();
    }
    let _ = results.send(JobMsg::Done(slot, cell));
}
