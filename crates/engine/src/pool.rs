//! The persistent worker pool backing [`PooledExecutor`](crate::PooledExecutor).

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A boxed unit of work for the [`WorkerPool`].
pub(crate) type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// The lane queues: tasks grouped by lane id, drained round-robin. Only
/// non-empty lanes are kept, so the rotation scan is proportional to the
/// number of *active* lanes, not of lanes ever used.
#[derive(Default)]
struct LaneQueues {
    lanes: BTreeMap<u64, VecDeque<PoolTask>>,
    /// Round-robin cursor: the next steal serves the first non-empty lane
    /// with id `>= next`, wrapping to the smallest id.
    next: u64,
    closed: bool,
}

impl LaneQueues {
    /// Steals the next task in round-robin lane order.
    fn steal(&mut self) -> Option<PoolTask> {
        let lane = self
            .lanes
            .range(self.next..)
            .map(|(id, _)| *id)
            .next()
            .or_else(|| self.lanes.keys().next().copied())?;
        let queue = self.lanes.get_mut(&lane).expect("lane exists");
        let task = queue.pop_front().expect("lanes hold only non-empty queues");
        if queue.is_empty() {
            self.lanes.remove(&lane);
        }
        self.next = lane.wrapping_add(1);
        Some(task)
    }
}

struct Shared {
    queues: Mutex<LaneQueues>,
    available: Condvar,
}

/// A persistent worker pool: `workers` threads constructed once, parked on
/// a shared queue, reusable across successive campaigns (replay / watch
/// mode pays thread start-up exactly once). Threads exit when the pool is
/// dropped.
///
/// The queue is **fair across lanes**: every task belongs to a lane
/// (default `0`), and idle workers steal round-robin over the non-empty
/// lanes, oldest task first within a lane. A single lane therefore
/// behaves exactly like the historical FIFO queue, while campaigns
/// submitted to distinct lanes (see [`Campaign::lane`](crate::Campaign::lane))
/// interleave instead of queueing behind whichever tenant submitted
/// first — the property the `comptest serve` daemon relies on to
/// multiplex many concurrent campaigns onto one pool.
///
/// The pool executes `'static` tasks, so campaign state is packaged per
/// job (generated script, stand, freshly built device) rather than
/// borrowed — that is what lets the pool outlive any single campaign
/// launch without `unsafe`. A bare pool implements
/// [`CampaignExecutor`](crate::CampaignExecutor) directly and is the
/// backing of [`PooledExecutor`](crate::PooledExecutor).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (`0` is clamped to `1`).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: Mutex::new(LaneQueues::default()),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    // Hold the lock only while stealing, not while running.
                    let task = {
                        let mut queues = shared.queues.lock().expect("pool queue lock");
                        loop {
                            if let Some(task) = queues.steal() {
                                break task;
                            }
                            if queues.closed {
                                return; // pool dropped and queue drained
                            }
                            queues = shared.available.wait(queues).expect("pool queue lock");
                        }
                    };
                    // A panicking task must not kill the thread: the pool is
                    // persistent, and a dead worker would silently shrink
                    // every later campaign (a 1-worker pool would run none of
                    // its jobs at all). The panicked job's outcome is simply
                    // missing, which the join reports as `JobsLost`.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                })
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues one task on the default lane (`0`). Within a lane, tasks
    /// run in submission order (each idle worker steals the oldest queued
    /// task of the next lane in rotation).
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        self.submit_task(0, Box::new(task));
    }

    /// Enqueues one task on an explicit lane. Workers serve non-empty
    /// lanes round-robin, so tasks on lane `a` never starve tasks on lane
    /// `b`: a burst of campaigns submitted to distinct lanes makes
    /// progress on every one of them.
    pub fn submit_to_lane(&self, lane: u64, task: impl FnOnce() + Send + 'static) {
        self.submit_task(lane, Box::new(task));
    }

    pub(crate) fn submit_task(&self, lane: u64, task: PoolTask) {
        let mut queues = self.shared.queues.lock().expect("pool queue lock");
        assert!(!queues.closed, "pool queue open while pool is alive");
        queues.lanes.entry(lane).or_default().push_back(task);
        drop(queues);
        self.shared.available.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queue wakes every worker; they drain the remaining
        // tasks, then exit.
        self.shared.queues.lock().expect("pool queue lock").closed = true;
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
