//! The persistent worker pool backing [`PooledExecutor`](crate::PooledExecutor).

use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A boxed unit of work for the [`WorkerPool`].
pub(crate) type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool: `workers` threads constructed once, parked on
/// a shared queue, reusable across successive campaigns (replay / watch
/// mode pays thread start-up exactly once). Threads exit when the pool is
/// dropped.
///
/// The pool executes `'static` tasks, so campaign state is packaged per
/// job (generated script, stand, freshly built device) rather than
/// borrowed — that is what lets the pool outlive any single campaign
/// launch without `unsafe`. A bare pool implements
/// [`CampaignExecutor`](crate::CampaignExecutor) directly and is the
/// backing of [`PooledExecutor`](crate::PooledExecutor).
#[derive(Debug)]
pub struct WorkerPool {
    queue: Option<Sender<PoolTask>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (`0` is clamped to `1`).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<PoolTask>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the lock only while stealing, not while running.
                    let task = match rx.lock().expect("pool queue lock").recv() {
                        Ok(task) => task,
                        Err(_) => return, // pool dropped
                    };
                    // A panicking task must not kill the thread: the pool is
                    // persistent, and a dead worker would silently shrink
                    // every later campaign (a 1-worker pool would run none of
                    // its jobs at all). The panicked job's outcome is simply
                    // missing, which the join reports as `JobsLost`.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                })
            })
            .collect();
        Self {
            queue: Some(tx),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues one task. Tasks run in submission order (each idle worker
    /// steals the oldest queued task).
    pub(crate) fn submit(&self, task: PoolTask) {
        self.queue
            .as_ref()
            .expect("pool queue open while pool is alive")
            .send(task)
            .expect("pool workers alive while pool is alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queue wakes every worker with `Err(Disconnected)`.
        self.queue.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
