//! S9 — observability overhead: the same event-dense campaign with the
//! recorder off vs on.
//!
//! The observability layer's claim is "zero cost when disabled, cheap
//! when enabled": a disabled `Recorder` is a `None` behind every hook
//! (one branch), and an enabled one costs a relaxed atomic per counter
//! bump plus one mutex push per span. This bench drives the worst case
//! for that claim — a 10 000-test campaign of tiny 2-step tests at test
//! granularity, where per-test bookkeeping (spans, counters, histograms)
//! is large relative to the work — on the async executor (the target:
//! < 5 % overhead with recording on) and the serial executor (the
//! per-event floor, no thread effects).
//!
//! Methodology notes, learned the hard way:
//!
//! - Each obs_on iteration gets a **fresh recorder** (real usage: one
//!   recorder observes one campaign run). Reusing one recorder across
//!   iterations grows its span buffer without bound and benches buffer
//!   accumulation instead of recording cost.
//! - Criterion times obs_off and obs_on minutes apart, so slow machine
//!   drift (shared/virtualised hardware) lands entirely in one group and
//!   masquerades as overhead. The `paired` pass (run first, while the
//!   machine is coolest) interleaves on/off runs round-by-round,
//!   alternating order, and reports the median paired delta — the
//!   drift-robust overhead estimate to quote. Calibrate it against an
//!   off-vs-off run of the same design before trusting small effects:
//!   on shared hardware the noise floor can exceed the true cost.

use std::cell::Cell;
use std::hint::black_box;
use std::time::{Duration, Instant};

use comptest::core::campaign::CampaignEntry;
use comptest::prelude::*;
use comptest_bench::build_device;
use comptest_model::PinId;
use comptest_stand::ResourceId;
use comptest_workload::{gen_stand, gen_workbook_text, SplitMix64, StandShape, WorkbookShape};
use criterion::{BenchmarkId, Criterion};

const SIGNALS: usize = 4;
const TESTS: usize = 10_000;

/// The s7 fixture: one generated suite of `TESTS` tiny tests (2 steps
/// each), so scheduling and per-event bookkeeping dominate the profile.
fn event_dense_suite() -> TestSuite {
    let mut rng = SplitMix64::new(0xA51C);
    let text = gen_workbook_text(
        &mut rng,
        &WorkbookShape {
            signals: SIGNALS,
            tests: TESTS,
            steps: 2,
        },
    );
    let mut wb = Workbook::parse_str("obs.cts", &text).expect("generated workbook parses");
    wb.suite.name = "obs_dense".to_owned();
    wb.suite
}

fn variant_stand() -> TestStand {
    let mut rng = SplitMix64::new(7);
    let shape = StandShape {
        pins: SIGNALS,
        put_resources: SIGNALS,
        get_resources: 1,
        density: 1.0,
    };
    let dvm = ResourceId::new("Dvm0").expect("valid");
    gen_stand(&mut rng, &shape)
        .with_connection(
            PinId::new("XO1").expect("valid"),
            dvm.clone(),
            PinId::new("OUT_F").expect("valid"),
        )
        .with_connection(
            PinId::new("XO2").expect("valid"),
            dvm,
            PinId::new("OUT_R").expect("valid"),
        )
}

fn obs_overhead(c: &mut Criterion) {
    let stand = variant_stand();
    let stands = [&stand];
    let suite = event_dense_suite();
    let entries = vec![CampaignEntry {
        suite: &suite,
        device_factory: Box::new(|| build_device("interior_light", Default::default(), None)),
    }];

    let mut group = c.benchmark_group("s9/obs_overhead");
    group.sample_size(10);
    let executors: [(&str, Box<dyn CampaignExecutor>); 2] = [
        ("async_10k", Box::new(AsyncExecutor::new(TESTS))),
        ("serial", Box::new(SerialExecutor)),
    ];
    for (label, executor) in &executors {
        // Recorder off: the default. Every hook is one `None` branch. The
        // campaign value is reused across iterations, so plans and scripts
        // are warm after the first — exactly like the obs_on arm.
        let campaign_off = Campaign::new(&entries, &stands).granularity(Granularity::Test);
        assert_eq!(campaign_off.job_count(), TESTS);
        group.bench_with_input(BenchmarkId::new(*label, "obs_off"), &(), |b, ()| {
            b.iter(|| black_box(campaign_off.run(executor.as_ref()).unwrap()))
        });
        // Recorder on: a fresh recorder per iteration, swapped into the
        // same campaign value so plans and scripts stay warm. The last
        // iteration's recorder is kept for the counter assertions below.
        let campaign_on = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .recorder(Recorder::enabled());
        let slot = Cell::new(Some(campaign_on));
        let last_obs = Cell::new(None);
        group.bench_with_input(BenchmarkId::new(*label, "obs_on"), &(), |b, ()| {
            b.iter(|| {
                let obs = Recorder::enabled();
                let campaign = slot.take().expect("campaign in slot").recorder(obs.clone());
                let out = black_box(campaign.run(executor.as_ref()).unwrap());
                slot.set(Some(campaign));
                last_obs.set(Some(obs));
                out
            })
        });
        let metrics = last_obs
            .take()
            .expect("at least one obs_on iteration ran")
            .metrics()
            .expect("enabled recorder");
        assert_eq!(
            metrics.counter("jobs_executed"),
            TESTS as u64,
            "every run must execute the full matrix"
        );
        assert_eq!(
            metrics.counter("spans_opened"),
            metrics.counter("spans_closed")
        );
    }
    group.finish();
}

/// Drift-robust overhead estimate: `ROUNDS` interleaved (on, off) pairs
/// per executor, reporting per-arm medians and the median paired delta.
/// This is the number the < 5 % acceptance target is judged against.
fn paired_overhead() {
    let stand = variant_stand();
    let stands = [&stand];
    let suite = event_dense_suite();
    let entries = vec![CampaignEntry {
        suite: &suite,
        device_factory: Box::new(|| build_device("interior_light", Default::default(), None)),
    }];
    const ROUNDS: usize = 12;

    let executors: [(&str, Box<dyn CampaignExecutor>); 2] = [
        ("async_10k", Box::new(AsyncExecutor::new(TESTS))),
        ("serial", Box::new(SerialExecutor)),
    ];
    for (label, executor) in &executors {
        let off = Campaign::new(&entries, &stands).granularity(Granularity::Test);
        let mut on = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .recorder(Recorder::enabled());
        // Warm plans and scripts in both campaign values.
        off.run(executor.as_ref()).unwrap();
        on.run(executor.as_ref()).unwrap();

        let mut on_times = Vec::with_capacity(ROUNDS);
        let mut off_times = Vec::with_capacity(ROUNDS);
        let mut deltas = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            on = on.recorder(Recorder::enabled());
            let run_on = || {
                let t = Instant::now();
                black_box(on.run(executor.as_ref()).unwrap());
                t.elapsed()
            };
            let run_off = || {
                let t = Instant::now();
                black_box(off.run(executor.as_ref()).unwrap());
                t.elapsed()
            };
            // Alternate which arm goes first so monotone machine drift
            // (thermal / cgroup throttling) cancels out of the deltas.
            let (on_t, off_t) = if round % 2 == 0 {
                let on_t = run_on();
                (on_t, run_off())
            } else {
                let off_t = run_off();
                (run_on(), off_t)
            };
            on_times.push(on_t);
            off_times.push(off_t);
            deltas.push(on_t.as_secs_f64() - off_t.as_secs_f64());
        }
        let off_med = median_duration(&mut off_times);
        let on_med = median_duration(&mut on_times);
        let delta = median_f64(&mut deltas);
        println!(
            "s9/obs_overhead/{label}/paired   obs_off median {off_med:?}   \
             obs_on median {on_med:?}   paired delta {:+.1}ms ({:+.1}%)",
            delta * 1e3,
            delta / off_med.as_secs_f64() * 100.0
        );
    }
}

fn median_duration(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn median_f64(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    // The paired estimate goes first, while the machine is coolest — the
    // criterion groups below run long enough to throttle shared hardware.
    paired_overhead();
    let mut criterion = Criterion::default();
    obs_overhead(&mut criterion);
}
