//! E6/L1 — the XML listing: test-script serialisation and parsing
//! throughput as scripts grow, plus the paper fragment itself.

use std::hint::black_box;

use comptest::prelude::*;
use comptest_bench::load_suite;
use comptest_workload::{gen_script, ScriptShape, SplitMix64};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn paper_fragment(c: &mut Criterion) {
    let suite = load_suite("interior_light");
    let script = generate(&suite, "interior_illumination").unwrap();
    let xml = script.to_xml();

    c.bench_function("l1/write_t1_script", |b| {
        b.iter(|| black_box(&script).to_xml())
    });

    c.bench_function("l1/parse_t1_script", |b| {
        b.iter(|| TestScript::parse_xml(black_box(&xml)).unwrap())
    });
}

fn script_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("l1/size_scaling");
    for steps in [10usize, 100, 1000] {
        let mut rng = SplitMix64::new(21);
        let script = gen_script(
            &mut rng,
            &ScriptShape {
                signals: 16,
                steps,
                puts_per_step: 3,
                concurrency: 4,
            },
        );
        let xml = script.to_xml();
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("write", steps), &script, |b, s| {
            b.iter(|| black_box(s).to_xml())
        });
        group.bench_with_input(BenchmarkId::new("parse", steps), &xml, |b, xml| {
            b.iter(|| TestScript::parse_xml(black_box(xml)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, paper_fragment, script_size_scaling);
criterion_main!(benches);
