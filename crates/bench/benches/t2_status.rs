//! E2/T2 — the status definition table: status resolution against stand
//! environments, and the expression pre-compilation ablation (parse once vs
//! re-parse per evaluation).

use std::hint::black_box;

use comptest_bench::load_suite;
use comptest_model::{Env, Expr};
use criterion::{criterion_group, criterion_main, Criterion};

fn status_resolution(c: &mut Criterion) {
    let suite = load_suite("interior_light");
    let env = Env::with_ubatt(12.0);

    c.bench_function("t2/resolve_all_statuses", |b| {
        b.iter(|| {
            for def in suite.statuses.iter() {
                black_box(def.resolve(&env).unwrap());
            }
        })
    });

    c.bench_function("t2/lookup_by_name", |b| {
        b.iter(|| {
            black_box(suite.statuses.get_str("Ho")).unwrap();
            black_box(suite.statuses.get_str("closed")).unwrap();
        })
    });
}

fn expression_ablation(c: &mut Criterion) {
    let env = Env::with_ubatt(13.8);
    let source = "(1.1*ubatt)";

    // Pre-compiled: the interpreter's production path.
    let compiled = Expr::parse(source).unwrap();
    c.bench_function("t2/expr_precompiled_eval", |b| {
        b.iter(|| black_box(&compiled).eval(&env).unwrap())
    });

    // Re-parse per evaluation: the naive alternative DESIGN.md §7 rejects.
    c.bench_function("t2/expr_reparse_eval", |b| {
        b.iter(|| Expr::parse(black_box(source)).unwrap().eval(&env).unwrap())
    });

    let complex = Expr::parse("clamp(min(1.1*ubatt, 16), 0.7*ubatt, max(14, ubatt))").unwrap();
    c.bench_function("t2/expr_complex_eval", |b| {
        b.iter(|| black_box(&complex).eval(&env).unwrap())
    });
}

criterion_group!(benches, status_resolution, expression_ablation);
criterion_main!(benches);
