//! E7/§5 — "successfully applied to two ECUs": the full library campaign on
//! the supplier stand and the fault-injection coverage run.

use std::hint::black_box;

use comptest::core::faultcamp::run_fault_campaign;
use comptest::prelude::*;
use comptest_bench::{build_device, cfg_for, fault_set, load_stand, load_suite, ECUS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn suite_execution(c: &mut Criterion) {
    let stand = load_stand("stand_b.stand");
    let mut group = c.benchmark_group("s5/suite_on_stand_b");
    group.sample_size(20);
    for ecu in ECUS {
        let suite = load_suite(ecu);
        group.bench_with_input(BenchmarkId::from_parameter(ecu), &suite, |b, suite| {
            b.iter(|| {
                black_box(
                    run_suite(
                        suite,
                        &stand,
                        || build_device(ecu, cfg_for(&stand), None),
                        &ExecOptions::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn fault_campaign(c: &mut Criterion) {
    let stand = load_stand("stand_a.stand");
    let suite = load_suite("interior_light");
    let faults = fault_set("interior_light");
    let mut group = c.benchmark_group("s5/fault_campaign");
    group.sample_size(10);
    group.bench_function("interior_light_12_faults", |b| {
        b.iter(|| {
            black_box(
                run_fault_campaign(
                    &suite,
                    &stand,
                    |f| build_device("interior_light", cfg_for(&stand), f),
                    &faults,
                    &ExecOptions::default(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, suite_execution, fault_campaign);
criterion_main!(benches);
