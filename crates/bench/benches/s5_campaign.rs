//! E7/§5 — "successfully applied to two ECUs": the full library campaign on
//! the supplier stand and the fault-injection coverage run.

use std::hint::black_box;

use comptest::core::campaign::CampaignEntry;
use comptest::core::faultcamp::run_fault_campaign;
use comptest::prelude::*;
use comptest_bench::{build_device, cfg_for, fault_set, load_stand, load_suite, ECUS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn suite_execution(c: &mut Criterion) {
    let stand = load_stand("stand_b.stand");
    let mut group = c.benchmark_group("s5/suite_on_stand_b");
    group.sample_size(20);
    for ecu in ECUS {
        let suite = load_suite(ecu);
        group.bench_with_input(BenchmarkId::from_parameter(ecu), &suite, |b, suite| {
            b.iter(|| {
                black_box(
                    run_suite(
                        suite,
                        &stand,
                        || build_device(ecu, cfg_for(&stand), None),
                        &ExecOptions::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn fault_campaign(c: &mut Criterion) {
    let stand = load_stand("stand_a.stand");
    let suite = load_suite("interior_light");
    let faults = fault_set("interior_light");
    let mut group = c.benchmark_group("s5/fault_campaign");
    group.sample_size(10);
    group.bench_function("interior_light_12_faults", |b| {
        b.iter(|| {
            black_box(
                run_fault_campaign(
                    &suite,
                    &stand,
                    |f| build_device("interior_light", cfg_for(&stand), f),
                    &faults,
                    &ExecOptions::default(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

/// The full 5-ECU × 2-stand matrix through the `Campaign` builder on a
/// pooled executor, sharded over 1/2/4/8 workers. The serial (1-worker)
/// row is the baseline; the others demonstrate the wall-clock speedup of
/// independent campaign cells. The executor is constructed inside the
/// timed closure, matching the per-call thread start-up the PR-1 engine
/// paid (the s6 `pool_reuse` bench isolates that cost).
///
/// Cells run under continuous sampling (DESIGN.md §7's monitoring mode,
/// ~100× the samples of end-of-step checking) — the soak regime where a
/// campaign actually hurts and sharding pays. End-of-step cells finish in
/// ~100 µs each, which a thread pool cannot amortise.
///
/// Note: speedup only shows on multi-core hosts (the two interior-light
/// cells dominate the critical path at ~6.5 ms each and overlap from two
/// workers up); on a single-core container every worker count degenerates
/// to the serial time plus scheduling overhead.
fn parallel_campaign(c: &mut Criterion) {
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_a, &stand_b];
    let suites: Vec<TestSuite> = ECUS.iter().map(|e| load_suite(e)).collect();
    let entries: Vec<CampaignEntry> = suites
        .iter()
        .zip(ECUS)
        .map(|(suite, ecu)| CampaignEntry {
            suite,
            device_factory: Box::new(move || build_device(ecu, Default::default(), None)),
        })
        .collect();
    let soak = ExecOptions {
        sample: SampleMode::Continuous {
            interval: comptest_model::SimTime::from_millis(20),
        },
        ..ExecOptions::default()
    };

    let campaign = Campaign::new(&entries, &stands).exec_options(soak);
    let mut group = c.benchmark_group("s5/parallel_campaign");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| black_box(campaign.run(&PooledExecutor::new(workers)).unwrap()))
            },
        );
    }
    group.finish();
}

/// A skewed matrix — one large workbook (the interior-light suite with its
/// tests replicated 8×) plus the four small ECU suites — on 4 workers at
/// both scheduling granularities.
///
/// This is the shape where per-test sharding is the only way to win:
/// cell-granular scheduling pins the whole large suite to one worker, so
/// wall-clock is bounded by that single cell no matter how many workers
/// exist; test-granular jobs spread the large suite's tests over the pool.
/// (As with `parallel_campaign`, the gap only shows on multi-core hosts.)
fn skewed_granularity(c: &mut Criterion) {
    let stand = load_stand("stand_b.stand");
    let stands = [&stand];

    let mut large = load_suite("interior_light");
    let base = large.tests.clone();
    for rep in 1..8 {
        for test in &base {
            let mut test = test.clone();
            test.name = format!("{}_{rep}", test.name);
            large.tests.push(test);
        }
    }
    let mut suites = vec![large];
    suites.extend(
        ["wiper", "power_window", "central_lock", "flasher"]
            .iter()
            .map(|e| load_suite(e)),
    );
    let entries: Vec<CampaignEntry> = suites
        .iter()
        .map(|suite| {
            let ecu: &'static str = ECUS
                .iter()
                .find(|e| suite.name.starts_with(*e))
                .expect("suite name matches a bundled ECU");
            CampaignEntry {
                suite,
                device_factory: Box::new(move || build_device(ecu, Default::default(), None)),
            }
        })
        .collect();
    let soak = ExecOptions {
        sample: SampleMode::Continuous {
            interval: comptest_model::SimTime::from_millis(20),
        },
        ..ExecOptions::default()
    };

    let mut group = c.benchmark_group("s5/skewed_granularity");
    group.sample_size(10);
    for granularity in [Granularity::Cell, Granularity::Test] {
        let campaign = Campaign::new(&entries, &stands)
            .exec_options(soak)
            .granularity(granularity);
        group.bench_with_input(
            BenchmarkId::from_parameter(granularity),
            &granularity,
            |b, _| b.iter(|| black_box(campaign.run(&PooledExecutor::new(4)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    suite_execution,
    fault_campaign,
    parallel_campaign,
    skewed_granularity
);
criterion_main!(benches);
