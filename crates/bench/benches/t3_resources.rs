//! E3/T3 — the resource table: stand description parsing and capability
//! queries, the per-method "is there an appropriate resource" primitive.

use std::hint::black_box;

use comptest::prelude::*;
use comptest_bench::load_stand;
use comptest_model::MethodName;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn stand_parsing(c: &mut Criterion) {
    for file in ["stand_a.stand", "stand_b.stand", "stand_minimal.stand"] {
        let text = std::fs::read_to_string(comptest::asset(file)).unwrap();
        c.bench_with_input(
            BenchmarkId::new("t3/parse_stand", file),
            &text,
            |b, text| b.iter(|| TestStand::parse_str(file, black_box(text)).unwrap()),
        );
    }
}

fn capability_queries(c: &mut Criterion) {
    let stand = load_stand("stand_b.stand");
    let put_r = MethodName::new("put_r").unwrap();
    let get_u = MethodName::new("get_u").unwrap();

    c.bench_function("t3/resources_supporting", |b| {
        b.iter(|| {
            black_box(stand.resources_supporting(&put_r));
            black_box(stand.resources_supporting(&get_u));
        })
    });

    c.bench_function("t3/matrix_queries", |b| {
        let pin = comptest_model::PinId::new("DS_FL").unwrap();
        b.iter(|| black_box(stand.matrix().resources_for_pin(&pin)))
    });
}

criterion_group!(benches, stand_parsing, capability_queries);
criterion_main!(benches);
