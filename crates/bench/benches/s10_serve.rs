//! S10 — `comptest serve` under multi-tenant load: N wire clients × M
//! campaigns each, submission-to-verdict latency, warm vs cold cache.
//!
//! The service's claim is that residency pays: suites parse once, the
//! worker pool and cache are shared, and a campaign's cost approaches
//! pure execution (cold) or pure cache replay (warm) plus a thin wire
//! tax. This bench is a load generator against a real daemon on a
//! loopback socket — real TCP, real newline-delimited JSON frames, real
//! event streaming — measuring what a tenant actually experiences: the
//! wall-clock from writing the `submit` frame to receiving the terminal
//! `result` frame.
//!
//! Three passes over the same N×M load, one shared server per pass:
//!
//! * `cache_off`  — every cell executes, no cache consulted;
//! * `cache_cold` — caching on, store born empty (executes + fills);
//! * `cache_warm` — caching on, store pre-filled by the cold pass —
//!   every cell is a hit, so the p50 collapses to replay + wire cost.
//!
//! Reported per pass: p50 / p90 / p99 and max submission-to-verdict
//! latency across all campaigns, plus aggregate throughput. The warm
//! pass must beat the cold pass at the median — that delta is the
//! resident cache's whole value proposition.
//!
//! Methodology notes:
//!
//! - Every campaign is submitted with `watch`, so the measured latency
//!   includes streaming every engine event back over the socket — the
//!   realistic worst case, not a fetch-poll lower bound.
//! - Clients are OS threads with one persistent connection each,
//!   submitting their campaigns back-to-back: the daemon sees N
//!   concurrent tenants continuously, M deep.
//! - `max_active` ≥ N keeps admission out of the measurement; what is
//!   measured is the shared pool + cache + protocol, not queueing
//!   policy (s6 benches scheduling).

use std::time::{Duration, Instant};

use comptest::prelude::Granularity;
use comptest::server::{CampaignSpec, Client, ServeConfig, Server};

/// Wire clients hammering the daemon concurrently.
const CLIENTS: usize = 8;
/// Campaigns each client submits back-to-back.
const PER_CLIENT: usize = 4;
/// Shared pool width (the daemon's, not the clients').
const WORKERS: usize = 4;

struct PassReport {
    label: &'static str,
    latencies: Vec<Duration>,
    wall: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl PassReport {
    fn print(&mut self) {
        self.latencies.sort_unstable();
        let total = self.latencies.len();
        println!(
            "s10/serve/{}/{CLIENTS}x{PER_CLIENT}   p50 {:?}   p90 {:?}   p99 {:?}   max {:?}   \
             {total} campaigns in {:?} ({:.1}/s)",
            self.label,
            percentile(&self.latencies, 0.50),
            percentile(&self.latencies, 0.90),
            percentile(&self.latencies, 0.99),
            self.latencies.last().copied().unwrap_or_default(),
            self.wall,
            total as f64 / self.wall.as_secs_f64(),
        );
    }

    fn p50(&mut self) -> Duration {
        self.latencies.sort_unstable();
        percentile(&self.latencies, 0.50)
    }
}

/// Writes a distinct stand set for every campaign in the load: clones
/// of the bundled `stand_a.stand` whose stand names are unique both
/// within a campaign (the engine rejects duplicates) and across
/// campaigns (so the content-addressed cache cannot hit across
/// submissions within the cold pass — cold means every cell executes).
/// The warm pass replays the exact same 32 specs and hits on all of
/// them. Returns `CLIENTS × PER_CLIENT` stand-path sets.
fn cloned_stand_sets(dir: &std::path::Path, per_campaign: usize) -> Vec<Vec<String>> {
    let template =
        std::fs::read_to_string(comptest::asset("stand_a.stand")).expect("bundled stand");
    (0..CLIENTS * PER_CLIENT)
        .map(|campaign| {
            (0..per_campaign)
                .map(|i| {
                    let path = dir.join(format!("bench-{campaign:02}-{i:02}.stand"));
                    let body = template
                        .replace("name = HIL-A", &format!("name = HIL-{campaign:02}-{i:02}"));
                    std::fs::write(&path, body).expect("clone stand");
                    path.display().to_string()
                })
                .collect()
        })
        .collect()
}

/// One load-generation pass: boots a fresh daemon over `cache_dir`,
/// runs the full N×M burst through real sockets, drains, and returns
/// every campaign's submission-to-verdict latency.
fn run_pass(
    label: &'static str,
    stand_sets: &[Vec<String>],
    cache_dir: Option<std::path::PathBuf>,
) -> PassReport {
    let mut cfg = ServeConfig::new(comptest::assets_dir());
    cfg.workers = WORKERS;
    cfg.max_active = CLIENTS;
    cfg.cache_dir = cache_dir;
    let server = Server::new(cfg).expect("server builds");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("local addr");
    let daemon = server.clone();
    let daemon_thread = std::thread::spawn(move || daemon.run(listener).expect("serve loop"));

    let use_cache = label != "cache_off";

    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let mine: Vec<Vec<String>> = stand_sets[c * PER_CLIENT..(c + 1) * PER_CLIENT].to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(PER_CLIENT);
                for stands in mine {
                    let spec = CampaignSpec {
                        stands,
                        granularity: Granularity::Cell,
                        cache: use_cache,
                        ..CampaignSpec::default()
                    };
                    let t = Instant::now();
                    let (_, verdict) = client
                        .submit_and_watch(&spec, |_| {})
                        .expect("served campaign");
                    latencies.push(t.elapsed());
                    assert_eq!(verdict.state, "done");
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(CLIENTS * PER_CLIENT);
    for client in clients {
        latencies.extend(client.join().expect("client thread"));
    }
    let wall = started.elapsed();

    server.begin_shutdown();
    daemon_thread.join().expect("daemon thread");
    PassReport {
        label,
        latencies,
        wall,
    }
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("comptest-s10-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let cache_dir = scratch.join("cache");
    let stand_sets = cloned_stand_sets(&scratch, 8);

    let mut off = run_pass("cache_off", &stand_sets, None);
    // The cold pass fills `cache_dir`; the warm pass replays out of it.
    let mut cold = run_pass("cache_cold", &stand_sets, Some(cache_dir.clone()));
    let mut warm = run_pass("cache_warm", &stand_sets, Some(cache_dir));

    off.print();
    cold.print();
    warm.print();
    let (cold_p50, warm_p50) = (cold.p50(), warm.p50());
    println!(
        "s10/serve/warm_vs_cold   p50 {:?} -> {:?}   speedup {:.2}x",
        cold_p50,
        warm_p50,
        cold_p50.as_secs_f64() / warm_p50.as_secs_f64().max(1e-9),
    );
    assert!(
        warm_p50 <= cold_p50,
        "a warm shared cache must not be slower than cold execution \
         (cold p50 {cold_p50:?}, warm p50 {warm_p50:?})"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}
