//! S11 — footprint-keyed invalidation: re-test only what a change touches.
//!
//! The scenario the footprint cache exists for: a 10 000-test regression
//! campaign over a composite vehicle model (ten ECU blocks behind one
//! device, one 1 000-test suite per block), where an engineer edits **one**
//! block's fault set and re-runs warm.
//!
//! * Under `--cache-key full` the whole device configuration is part of
//!   every cell's key, so the single edit invalidates all ten cells and
//!   the warm re-run re-executes everything — cold time for a one-line
//!   change.
//! * Under `--cache-key footprint` each cell's key covers only the slices
//!   of the device its plans touch, so exactly the edited block's cell
//!   re-executes and the other nine stay hits.
//!
//! This bench is an *assertion*, not just a timing: the invalidated-cell
//! count is checked against the planner's own prediction (the set of cells
//! whose [`FootprintKey`] moved), the warm results are checked
//! byte-identical to a cold run of the edited campaign, and the
//! footprint-keyed re-run must be ≥ 5× faster than the full-keyed one.
//! Medians land in `BENCH_s11.json` at the workspace root.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use comptest::core::campaign::CampaignEntry;
use comptest::core::hash::FootprintKey;
use comptest::dut::ElectricalConfig;
use comptest::engine::{CacheKeying, DirCache};
use comptest::prelude::*;
use comptest_bench::summary::{time_median, BenchSummary};
use comptest_model::SimTime;
use comptest_workload::{
    block_device, block_stand, gen_workbook_text_prefixed, BlockSpec, SplitMix64, WorkbookShape,
};
use criterion::{criterion_group, criterion_main, Criterion};

/// Ten blocks × one 1 000-test suite each = the 10k-test campaign.
const BLOCKS: usize = 10;
const TESTS_PER_BLOCK: usize = 1_000;
/// Input signals per block (the suites' stimulus width).
const SIGNALS: usize = 2;
/// The block whose fault set the "engineer" edits.
const EDITED: usize = 3;
/// Internal device activity: each 2-step test simulates 0.2 s, so one
/// execution advances the model through ~2 000 events — execution
/// dominates, records stay check-sized (the s8 asymmetry).
const TICK: SimTime = SimTime::from_micros(100);
/// Timed iterations per arm (median taken).
const ITERS: usize = 3;

/// Pin-binding port names must be `'static`; ten literals beat leaking.
const OUT_PORTS: [&str; BLOCKS] = [
    "e0_out", "e1_out", "e2_out", "e3_out", "e4_out", "e5_out", "e6_out", "e7_out", "e8_out",
    "e9_out",
];

const SHAPE: WorkbookShape = WorkbookShape {
    signals: SIGNALS,
    tests: TESTS_PER_BLOCK,
    steps: 2,
};

/// The composite device's blocks; `edited` flips one block's fault set to
/// its post-edit revision.
fn specs(edited: Option<usize>) -> Vec<BlockSpec> {
    (0..BLOCKS)
        .map(|k| BlockSpec {
            prefix: format!("e{k}_"),
            out_port: OUT_PORTS[k],
            config: if edited == Some(k) {
                "fault_set=rev2".to_owned()
            } else {
                "fault_set=rev1".to_owned()
            },
        })
        .collect()
}

/// One generated suite per block, disjoint pin sets.
fn block_suites() -> Vec<TestSuite> {
    (0..BLOCKS)
        .map(|k| {
            let mut rng = SplitMix64::new(0x511 + k as u64);
            let text = gen_workbook_text_prefixed(&mut rng, &SHAPE, &format!("e{k}_"));
            Workbook::parse_str(&format!("e{k}.cts"), &text)
                .expect("generated workbook parses")
                .suite
        })
        .collect()
}

/// Campaign entries sharing ONE composite device per build — every suite
/// sees the whole vehicle, footprints tell the cells apart.
fn vehicle_entries(suites: &[TestSuite], edited: Option<usize>) -> Vec<CampaignEntry<'_>> {
    suites
        .iter()
        .map(|suite| {
            let specs = specs(edited);
            CampaignEntry {
                suite,
                device_factory: Box::new(move || {
                    block_device(&specs, ElectricalConfig::default(), Some(TICK))
                }),
            }
        })
        .collect()
}

/// Clones a pristine cache directory so each timed warm run starts from
/// the same pre-edit store (a warm run re-stores what it re-executes).
fn restore_cache(pristine: &Path, work: &Path) {
    let _ = std::fs::remove_dir_all(work);
    std::fs::create_dir_all(work).expect("cache dir");
    for entry in std::fs::read_dir(pristine).expect("pristine cache") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), work.join(entry.file_name())).expect("copy record");
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("comptest-s11-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn invalidate(_c: &mut Criterion) {
    let prefixes: Vec<String> = (0..BLOCKS).map(|k| format!("e{k}_")).collect();
    let prefix_refs: Vec<&str> = prefixes.iter().map(String::as_str).collect();
    let stand = block_stand(&prefix_refs, SIGNALS);
    let stands = [&stand];
    let suites = block_suites();
    let base = vehicle_entries(&suites, None);
    let edited = vehicle_entries(&suites, Some(EDITED));
    let mut summary = BenchSummary::new("s11", BLOCKS * TESTS_PER_BLOCK);

    // The planner's prediction: which cells' footprint keys does the edit
    // move? Exactly the edited block's — asserted now, and asserted again
    // below against the engine's own invalidation counter.
    let opts = ExecOptions::default();
    let moved: Vec<usize> = (0..BLOCKS)
        .filter(|&k| {
            FootprintKey::for_cell(&base[k], &stand, &opts, "")
                != FootprintKey::for_cell(&edited[k], &stand, &opts, "")
        })
        .collect();
    assert_eq!(moved, vec![EDITED], "only the edited block's key may move");
    let predicted = moved.len();

    // Ground truth for the post-edit campaign: a cold, cache-less run.
    let reference = Campaign::new(&edited, &stands)
        .granularity(Granularity::Test)
        .run(&SerialExecutor)
        .expect("cold run");
    summary.record(
        "cold_edited",
        time_median(1, || {
            black_box(
                Campaign::new(&edited, &stands)
                    .granularity(Granularity::Test)
                    .run(&SerialExecutor)
                    .unwrap(),
            )
        }),
    );

    for keying in [CacheKeying::Full, CacheKeying::Footprint] {
        // Populate the pre-edit store once, cold.
        let pristine = scratch(&format!("{keying}-pristine"));
        let _ = Campaign::new(&base, &stands)
            .granularity(Granularity::Test)
            .cache_keying(keying)
            .cache(Arc::new(DirCache::open(&pristine).expect("cache dir")))
            .run(&SerialExecutor)
            .expect("populate run");

        // One instrumented warm run of the edited campaign: byte-identity
        // plus the invalidation accounting.
        let work = scratch(&format!("{keying}-work"));
        restore_cache(&pristine, &work);
        let obs = Recorder::enabled();
        let warm = Campaign::new(&edited, &stands)
            .granularity(Granularity::Test)
            .cache_keying(keying)
            .cache(Arc::new(DirCache::open(&work).expect("cache dir")))
            .recorder(obs.clone())
            .run(&SerialExecutor)
            .expect("warm run");
        assert_eq!(warm, reference, "{keying}: warm re-run must match cold");
        let metrics = obs.metrics().unwrap();
        let (expect_invalidated, expect_cached) = match keying {
            // The edit is invisible to no cell under full keying: the
            // whole-device hash moved, everything re-executes.
            CacheKeying::Full => (BLOCKS, 0),
            CacheKeying::Footprint => (predicted, (BLOCKS - predicted) * TESTS_PER_BLOCK),
        };
        assert_eq!(
            metrics.counter("cells_invalidated"),
            expect_invalidated as u64,
            "{keying}: engine invalidation must match the planner's prediction"
        );
        assert_eq!(
            metrics.counter("jobs_cached"),
            expect_cached as u64,
            "{keying}: untouched blocks must stay hits"
        );

        // Timed: restore the pre-edit store, re-run the edited campaign.
        let campaign = Campaign::new(&edited, &stands)
            .granularity(Granularity::Test)
            .cache_keying(keying)
            .cache(Arc::new(DirCache::open(&work).expect("cache dir")));
        summary.record(
            &format!("warm_{keying}"),
            time_median(ITERS, || {
                restore_cache(&pristine, &work);
                black_box(campaign.run(&SerialExecutor).unwrap())
            }),
        );
        summary.note(
            &format!("cells_invalidated_{keying}"),
            expect_invalidated as f64,
        );
        let _ = std::fs::remove_dir_all(&pristine);
        let _ = std::fs::remove_dir_all(&work);
    }

    let full = summary.median_ms("warm_full").expect("full arm recorded");
    let footprint = summary
        .median_ms("warm_footprint")
        .expect("footprint arm recorded");
    let speedup = full / footprint;
    summary.note("footprint_speedup", speedup);
    summary.note("predicted_invalidated", predicted as f64);
    let path = summary.write_at_workspace_root().expect("summary written");
    println!(
        "s11 summary → {} (footprint warm {speedup:.1}× faster than full warm)",
        path.display()
    );
    assert!(
        speedup >= 5.0,
        "footprint-keyed warm re-run must be ≥ 5× faster than full-keyed \
         (full {full:.1} ms vs footprint {footprint:.1} ms)"
    );
}

criterion_group!(benches, invalidate);
criterion_main!(benches);
