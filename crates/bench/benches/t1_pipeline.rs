//! E1/T1 — the test definition sheet: full front-end pipeline cost for the
//! paper's 10-step interior-illumination test (parse workbook → validate →
//! generate script → plan on stand A), plus scaling over synthetic
//! workbooks.

use std::hint::black_box;

use comptest::prelude::*;
use comptest_bench::{load_stand, load_suite};
use comptest_workload::{gen_workbook_text, SplitMix64, WorkbookShape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn paper_pipeline(c: &mut Criterion) {
    let text = std::fs::read_to_string(comptest::asset("interior_light.cts")).unwrap();
    let stand = load_stand("stand_a.stand");

    c.bench_function("t1/parse_workbook", |b| {
        b.iter(|| Workbook::parse_str("interior_light.cts", black_box(&text)).unwrap())
    });

    let suite = load_suite("interior_light");
    c.bench_function("t1/validate", |b| {
        let registry = MethodRegistry::builtin();
        b.iter(|| black_box(&suite).validate(&registry))
    });

    c.bench_function("t1/generate_script", |b| {
        b.iter(|| generate(black_box(&suite), "interior_illumination").unwrap())
    });

    let script = generate(&suite, "interior_illumination").unwrap();
    c.bench_function("t1/plan_on_stand_a", |b| {
        b.iter(|| plan(black_box(&script), &stand).unwrap())
    });

    c.bench_function("t1/full_pipeline", |b| {
        b.iter(|| {
            let wb = Workbook::parse_str("interior_light.cts", &text).unwrap();
            let script = generate(&wb.suite, "interior_illumination").unwrap();
            plan(&script, &stand).unwrap()
        })
    });
}

fn workbook_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1/workbook_scaling");
    for steps in [10usize, 50, 200] {
        let mut rng = SplitMix64::new(42);
        let text = gen_workbook_text(
            &mut rng,
            &WorkbookShape {
                signals: 8,
                tests: 4,
                steps,
            },
        );
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(steps), &text, |b, text| {
            b.iter(|| Workbook::parse_str("gen.cts", black_box(text)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, paper_pipeline, workbook_scaling);
criterion_main!(benches);
