//! E4/T4 — the connection matrix: resource-allocation scaling over pins ×
//! resources × matrix density, plus the reroute-vs-greedy ablation.

use std::hint::black_box;

use comptest_model::MethodRegistry;
use comptest_stand::{plan_with, AllocOptions};
use comptest_workload::{gen_script, gen_stand, ScriptShape, SplitMix64, StandShape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn allocation_scaling(c: &mut Criterion) {
    let registry = MethodRegistry::builtin();
    let mut group = c.benchmark_group("t4/alloc_scaling");
    for (pins, resources) in [(8usize, 2usize), (32, 8), (128, 16), (256, 32)] {
        let mut rng = SplitMix64::new(7);
        let stand = gen_stand(
            &mut rng,
            &StandShape {
                pins,
                put_resources: resources,
                get_resources: 2,
                density: 0.4,
            },
        );
        let script = gen_script(
            &mut rng,
            &ScriptShape {
                signals: pins,
                steps: 100,
                puts_per_step: 3,
                concurrency: resources,
            },
        );
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{pins}p_{resources}r")),
            &(stand, script),
            |b, (stand, script)| {
                b.iter(|| black_box(plan_with(script, stand, AllocOptions::default(), &registry)))
            },
        );
    }
    group.finish();
}

fn reroute_ablation(c: &mut Criterion) {
    let registry = MethodRegistry::builtin();
    let mut rng = SplitMix64::new(11);
    let stand = gen_stand(
        &mut rng,
        &StandShape {
            pins: 64,
            put_resources: 8,
            get_resources: 2,
            density: 0.3,
        },
    );
    let script = gen_script(
        &mut rng,
        &ScriptShape {
            signals: 64,
            steps: 200,
            puts_per_step: 3,
            concurrency: 8,
        },
    );
    let mut group = c.benchmark_group("t4/reroute_ablation");
    group.bench_function("reroute", |b| {
        b.iter(|| {
            black_box(plan_with(
                &script,
                &stand,
                AllocOptions { reroute: true },
                &registry,
            ))
        })
    });
    group.bench_function("greedy", |b| {
        b.iter(|| {
            black_box(plan_with(
                &script,
                &stand,
                AllocOptions { reroute: false },
                &registry,
            ))
        })
    });
    group.finish();
}

fn density_sweep(c: &mut Criterion) {
    let registry = MethodRegistry::builtin();
    let mut group = c.benchmark_group("t4/density_sweep");
    for density in [0.2f64, 0.5, 1.0] {
        let mut rng = SplitMix64::new(13);
        let stand = gen_stand(
            &mut rng,
            &StandShape {
                pins: 64,
                put_resources: 8,
                get_resources: 2,
                density,
            },
        );
        let script = gen_script(
            &mut rng,
            &ScriptShape {
                signals: 64,
                steps: 100,
                puts_per_step: 2,
                concurrency: 8,
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{density}")),
            &(stand, script),
            |b, (stand, script)| {
                b.iter(|| black_box(plan_with(script, stand, AllocOptions::default(), &registry)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, allocation_scaling, reroute_ablation, density_sweep);
criterion_main!(benches);
