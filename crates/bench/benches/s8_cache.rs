//! S8 — content-addressed campaign cache: cold vs warm regression runs.
//!
//! The caching claim: a regression campaign whose suites, stands and DUT
//! configs are unchanged should not pay for re-execution — the
//! content-addressed cache turns every cell into a key lookup plus a
//! record clone. The sweep measures one suite of 1 000 / 10 000 tests on
//! one stand, against a DUT whose simulation is *event-dense* (an
//! internal 20 µs activity tick — ~10 000 device events per test — the
//! regime of real ECU scenarios where most of a cold run is spent
//! advancing the device model; sim-time is free, device events are not)
//! so execution genuinely dominates a cold run while the cached record
//! stays check-sized:
//!
//! * `cold` — no cache: the full execute-everything baseline;
//! * `warm_memory` — every job served from a pre-populated in-process
//!   [`MemoryCache`] (key hashing + record clone + merge);
//! * `warm_dir_bin` — every job served from a pre-populated on-disk
//!   [`DirCache`] in its default binary record format (one read plus one
//!   borrowing decode per cell);
//! * `warm_dir_json` — the same on-disk cache writing the JSON fallback
//!   format (adds one text parse per cell — the cost the binary format
//!   exists to remove);
//! * `verify` — `cache_verify` audit mode: executes everything *and*
//!   compares against the cache (the paper-style spot check; expected to
//!   cost about one cold run).
//!
//! The acceptance bar from the roadmap: a warm 10k-test campaign at least
//! 5× faster than cold. Each warm bench asserts byte-identity to the cold
//! result once before timing, so the speedup is never bought with a
//! wrong answer.

use std::hint::black_box;
use std::sync::Arc;

use comptest::core::campaign::CampaignEntry;
use comptest::dut::{Behavior, Device, PinBinding, PortValue};
use comptest::engine::{DirCache, MemoryCache, RecordFormat};
use comptest::prelude::*;
use comptest_bench::summary::time_median;
use comptest_model::{PinId, SimTime};
use comptest_stand::ResourceId;
use comptest_workload::{gen_stand, gen_workbook_text, SplitMix64, StandShape, WorkbookShape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SIGNALS: usize = 4;
/// Internal DUT activity period: each generated test simulates 0.2 s, so
/// one execution advances the device through ~10 000 events.
const TICK: SimTime = SimTime::from_micros(20);

/// A DUT model with dense internal activity: it schedules an event every
/// [`TICK`] of simulated time (a control loop iterating, CAN traffic,
/// PWM bookkeeping — whatever makes real models expensive to advance).
/// Outputs stay constant, so the *result* of a test is small while its
/// *execution* is not — exactly the asymmetry a campaign cache exploits.
#[derive(Debug)]
struct BusyBehavior {
    next: SimTime,
}

impl Behavior for BusyBehavior {
    fn name(&self) -> &str {
        "busy"
    }
    fn inputs(&self) -> &[&'static str] {
        &["in"]
    }
    fn outputs(&self) -> &[&'static str] {
        &["out"]
    }
    fn reset(&mut self, now: SimTime) {
        self.next = now.saturating_add(TICK);
    }
    fn set_input(&mut self, _port: &str, _value: PortValue, _now: SimTime) {}
    fn advance(&mut self, now: SimTime) {
        while self.next <= now {
            self.next = self.next.saturating_add(TICK);
        }
    }
    fn next_event(&self) -> Option<SimTime> {
        Some(self.next)
    }
    fn output(&self, _port: &str) -> PortValue {
        PortValue::Bool(false)
    }
}

/// A device around [`BusyBehavior`], wired for the generated workbooks:
/// the `OUT_F`/`OUT_R` pair carries the checked output (constantly dark),
/// the stimulated input pins need no binding.
fn busy_device() -> Device {
    Device::builder(Box::new(BusyBehavior { next: TICK }))
        .pin("OUT_F", PinBinding::Output { port: "out" })
        .pin("OUT_R", PinBinding::Return)
        .build()
}

/// One generated suite with `tests` 2-step tests.
fn suite_with_tests(tests: usize) -> TestSuite {
    let mut rng = SplitMix64::new(0xCAC4E);
    let text = gen_workbook_text(
        &mut rng,
        &WorkbookShape {
            signals: SIGNALS,
            tests,
            steps: 2,
        },
    );
    let mut wb = Workbook::parse_str("cache.cts", &text).expect("generated workbook parses");
    wb.suite.name = format!("cache_{tests}");
    wb.suite
}

/// A stand serving the generated workbooks (the s6/s7 wiring).
fn variant_stand() -> TestStand {
    let mut rng = SplitMix64::new(7);
    let shape = StandShape {
        pins: SIGNALS,
        put_resources: SIGNALS,
        get_resources: 1,
        density: 1.0,
    };
    let dvm = ResourceId::new("Dvm0").expect("valid");
    gen_stand(&mut rng, &shape)
        .with_connection(
            PinId::new("XO1").expect("valid"),
            dvm.clone(),
            PinId::new("OUT_F").expect("valid"),
        )
        .with_connection(
            PinId::new("XO2").expect("valid"),
            dvm,
            PinId::new("OUT_R").expect("valid"),
        )
}

fn cold_vs_warm(c: &mut Criterion) {
    let stand = variant_stand();
    let stands = [&stand];

    let mut group = c.benchmark_group("s8/cache");
    group.sample_size(10);
    for n_tests in [1_000usize, 10_000] {
        let suite = suite_with_tests(n_tests);
        let entries = vec![CampaignEntry {
            suite: &suite,
            device_factory: Box::new(busy_device),
        }];

        // Cold baseline: no cache, test granularity (one job per test).
        let cold = Campaign::new(&entries, &stands).granularity(Granularity::Test);
        let reference = cold.run(&SerialExecutor).expect("cold run");
        group.bench_with_input(BenchmarkId::new("cold", n_tests), &n_tests, |b, _| {
            b.iter(|| black_box(cold.run(&SerialExecutor).unwrap()))
        });

        // Warm in-process cache: populate once, then every run is hits.
        let memory = Arc::new(MemoryCache::new());
        let warm_memory = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .cache(memory);
        assert_eq!(warm_memory.run(&SerialExecutor).unwrap(), reference);
        group.bench_with_input(
            BenchmarkId::new("warm_memory", n_tests),
            &n_tests,
            |b, _| b.iter(|| black_box(warm_memory.run(&SerialExecutor).unwrap())),
        );

        // Warm on-disk cache, one arm per record format: binary (default
        // write format) and the JSON fallback, each in its own store.
        let mut dirs = Vec::new();
        for (arm, format) in [
            ("warm_dir_bin", RecordFormat::Binary),
            ("warm_dir_json", RecordFormat::Json),
        ] {
            let dir = std::env::temp_dir().join(format!(
                "comptest-s8-{}-{n_tests}-{arm}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let cache = DirCache::open(&dir)
                .expect("bench cache dir")
                .with_format(format);
            let warm_dir = Campaign::new(&entries, &stands)
                .granularity(Granularity::Test)
                .cache(Arc::new(cache));
            assert_eq!(warm_dir.run(&SerialExecutor).unwrap(), reference);
            group.bench_with_input(BenchmarkId::new(arm, n_tests), &n_tests, |b, _| {
                b.iter(|| black_box(warm_dir.run(&SerialExecutor).unwrap()))
            });
            dirs.push(dir);
        }

        // Audit mode: execute everything and compare against the cache.
        let verify = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .cache(Arc::new(MemoryCache::new()))
            .cache_verify(true);
        assert_eq!(verify.run(&SerialExecutor).unwrap(), reference);
        group.bench_with_input(BenchmarkId::new("verify", n_tests), &n_tests, |b, _| {
            b.iter(|| black_box(verify.run(&SerialExecutor).unwrap()))
        });
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    group.finish();
}

/// Measures every arm once more with plain `Instant` medians and writes
/// the machine-readable summary `BENCH_s8.json` at the workspace root —
/// criterion's console output is for humans, this file is for CI diffs.
fn emit_summary(_c: &mut Criterion) {
    const N_TESTS: usize = 10_000;
    const ITERS: usize = 3;
    let stand = variant_stand();
    let stands = [&stand];
    let suite = suite_with_tests(N_TESTS);
    let entries = vec![CampaignEntry {
        suite: &suite,
        device_factory: Box::new(busy_device),
    }];
    let mut summary = comptest_bench::summary::BenchSummary::new("s8", N_TESTS);

    let cold = Campaign::new(&entries, &stands).granularity(Granularity::Test);
    let reference = cold.run(&SerialExecutor).expect("cold run");
    summary.record(
        "cold",
        time_median(ITERS, || black_box(cold.run(&SerialExecutor).unwrap())),
    );

    let warm_memory = Campaign::new(&entries, &stands)
        .granularity(Granularity::Test)
        .cache(Arc::new(MemoryCache::new()));
    assert_eq!(warm_memory.run(&SerialExecutor).unwrap(), reference);
    summary.record(
        "warm_memory",
        time_median(ITERS, || {
            black_box(warm_memory.run(&SerialExecutor).unwrap())
        }),
    );

    for (arm, format) in [
        ("warm_dir_bin", RecordFormat::Binary),
        ("warm_dir_json", RecordFormat::Json),
    ] {
        let dir =
            std::env::temp_dir().join(format!("comptest-s8-sum-{arm}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DirCache::open(&dir)
            .expect("bench cache dir")
            .with_format(format);
        let warm_dir = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .cache(Arc::new(cache));
        assert_eq!(warm_dir.run(&SerialExecutor).unwrap(), reference);
        summary.record(
            arm,
            time_median(ITERS, || black_box(warm_dir.run(&SerialExecutor).unwrap())),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    let verify = Campaign::new(&entries, &stands)
        .granularity(Granularity::Test)
        .cache(Arc::new(MemoryCache::new()))
        .cache_verify(true);
    assert_eq!(verify.run(&SerialExecutor).unwrap(), reference);
    summary.record(
        "verify",
        time_median(ITERS, || black_box(verify.run(&SerialExecutor).unwrap())),
    );

    let speedup = summary.median_ms("cold").unwrap() / summary.median_ms("warm_dir_bin").unwrap();
    summary.note("warm_dir_bin_speedup", speedup);
    let path = summary.write_at_workspace_root().expect("summary written");
    println!(
        "s8 summary → {} (warm_dir_bin {speedup:.1}× faster)",
        path.display()
    );
}

criterion_group!(benches, cold_vs_warm, emit_summary);
criterion_main!(benches);
