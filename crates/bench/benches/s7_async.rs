//! S7 — async event-loop executor: in-flight-run scaling.
//!
//! The async executor's claim is that concurrency is bounded by memory,
//! not by threads: one shard thread admits up to the concurrency limit of
//! resumable `TestRun`s *before stepping any of them* (the admission loop
//! fills the sim-time wheel first), so at the 1 000- and 10 000-job points
//! below a **single OS thread genuinely holds ≥ 1 000 test runs open at
//! once** — a configuration the thread-per-run pooled executor cannot
//! express at all. The sweep measures what that interleaving costs
//! (wheel churn: one heap pop + push per executed step) against the
//! 4-worker pooled executor draining the same matrix, at 100 / 1 000 /
//! 10 000 in-flight runs.

use std::hint::black_box;

use comptest::core::campaign::CampaignEntry;
use comptest::prelude::*;
use comptest_bench::build_device;
use comptest_model::PinId;
use comptest_stand::ResourceId;
use comptest_workload::{gen_stand, gen_workbook_text, SplitMix64, StandShape, WorkbookShape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SIGNALS: usize = 4;

/// One generated suite with `tests` tiny tests (2 steps each): per-run
/// work is small, so scheduling — admission, wheel churn, merge —
/// dominates.
fn suite_with_tests(tests: usize) -> TestSuite {
    let mut rng = SplitMix64::new(0xA51C);
    let text = gen_workbook_text(
        &mut rng,
        &WorkbookShape {
            signals: SIGNALS,
            tests,
            steps: 2,
        },
    );
    let mut wb = Workbook::parse_str("inflight.cts", &text).expect("generated workbook parses");
    wb.suite.name = format!("inflight_{tests}");
    wb.suite
}

/// A stand serving the generated workbooks: full-density crosspoints for
/// the input pins plus a DVM route to the output pin pair (the s6
/// fixture's wiring).
fn variant_stand() -> TestStand {
    let mut rng = SplitMix64::new(7);
    let shape = StandShape {
        pins: SIGNALS,
        put_resources: SIGNALS,
        get_resources: 1,
        density: 1.0,
    };
    let dvm = ResourceId::new("Dvm0").expect("valid");
    gen_stand(&mut rng, &shape)
        .with_connection(
            PinId::new("XO1").expect("valid"),
            dvm.clone(),
            PinId::new("OUT_F").expect("valid"),
        )
        .with_connection(
            PinId::new("XO2").expect("valid"),
            dvm,
            PinId::new("OUT_R").expect("valid"),
        )
}

fn inflight_scaling(c: &mut Criterion) {
    let stand = variant_stand();
    let stands = [&stand];

    let mut group = c.benchmark_group("s7/inflight_scaling");
    group.sample_size(10);
    for n_runs in [100usize, 1_000, 10_000] {
        let suite = suite_with_tests(n_runs);
        let entries = vec![CampaignEntry {
            suite: &suite,
            device_factory: Box::new(|| build_device("interior_light", Default::default(), None)),
        }];
        let campaign = Campaign::new(&entries, &stands).granularity(Granularity::Test);
        assert_eq!(campaign.job_count(), n_runs);

        // All n jobs in flight simultaneously on ONE event-loop thread.
        let async_one_thread = AsyncExecutor::new(n_runs);
        group.bench_with_input(
            BenchmarkId::new("async_1thread", n_runs),
            &n_runs,
            |b, _| b.iter(|| black_box(campaign.run(&async_one_thread).unwrap())),
        );
        // The same budget sharded over 4 event-loop threads.
        let async_sharded = AsyncExecutor::new(n_runs).sharded(4);
        group.bench_with_input(
            BenchmarkId::new("async_4shards", n_runs),
            &n_runs,
            |b, _| b.iter(|| black_box(campaign.run(&async_sharded).unwrap())),
        );
        // Thread-per-job-at-a-time baseline: 4 pooled workers.
        let pooled = PooledExecutor::new(4);
        group.bench_with_input(BenchmarkId::new("pooled_4", n_runs), &n_runs, |b, _| {
            b.iter(|| black_box(campaign.run(&pooled).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, inflight_scaling);
criterion_main!(benches);
