//! E5/F1 — the test circuit figure: executing the paper's test on the
//! simulated circuit (stand A wiring, interior-light ECU), including the
//! 309-simulated-second run, plus the end-of-step vs continuous sampling
//! ablation.

use std::hint::black_box;

use comptest::prelude::*;
use comptest_bench::{build_device, cfg_for, load_stand, load_suite};
use comptest_core::execute;
use comptest_model::SimTime;
use criterion::{criterion_group, criterion_main, Criterion};

fn paper_execution(c: &mut Criterion) {
    let suite = load_suite("interior_light");
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let script = generate(&suite, "interior_illumination").unwrap();
    let plan_a = plan(&script, &stand_a).unwrap();
    let plan_b = plan(&script, &stand_b).unwrap();

    c.bench_function("f1/execute_t1_stand_a", |b| {
        b.iter(|| {
            let mut dut = build_device("interior_light", cfg_for(&stand_a), None);
            black_box(execute(&plan_a, &mut dut, &ExecOptions::default()))
        })
    });

    c.bench_function("f1/execute_t1_stand_b", |b| {
        b.iter(|| {
            let mut dut = build_device("interior_light", cfg_for(&stand_b), None);
            black_box(execute(&plan_b, &mut dut, &ExecOptions::default()))
        })
    });
}

fn sampling_ablation(c: &mut Criterion) {
    let suite = load_suite("interior_light");
    let stand = load_stand("stand_a.stand");
    let script = generate(&suite, "interior_illumination").unwrap();
    let the_plan = plan(&script, &stand).unwrap();

    let mut group = c.benchmark_group("f1/sampling");
    group.sample_size(20);
    group.bench_function("end_of_step", |b| {
        b.iter(|| {
            let mut dut = build_device("interior_light", cfg_for(&stand), None);
            black_box(execute(&the_plan, &mut dut, &ExecOptions::default()))
        })
    });
    group.bench_function("continuous_1s", |b| {
        b.iter(|| {
            let mut dut = build_device("interior_light", cfg_for(&stand), None);
            black_box(execute(
                &the_plan,
                &mut dut,
                &ExecOptions {
                    sample: SampleMode::Continuous {
                        interval: SimTime::from_secs(1),
                    },
                    ..ExecOptions::default()
                },
            ))
        })
    });
    group.finish();
}

fn event_driven_scaling(c: &mut Criterion) {
    // Simulated time is (nearly) free: a 309 s test and a 30 900 s variant
    // should cost within small factors of each other.
    let suite = load_suite("interior_light");
    let stand = load_stand("stand_a.stand");
    let mut long_suite = suite.clone();
    for t in &mut long_suite.tests {
        if t.name == "interior_illumination" {
            // Scale the two long steps ×100 — checks then probe a DUT whose
            // timer expired long ago, which stays a FAIL-free pass only for
            // step 7, so drop the checks and keep only the stimulus load.
            t.steps[7].dt = SimTime::from_secs(28_000);
            t.steps[7].assignments.clear();
            t.steps[8].dt = SimTime::from_secs(2_500);
        }
    }
    let script_short = generate(&suite, "interior_illumination").unwrap();
    let script_long = generate(&long_suite, "interior_illumination").unwrap();
    let plan_short = plan(&script_short, &stand).unwrap();
    let plan_long = plan(&script_long, &stand).unwrap();

    let mut group = c.benchmark_group("f1/simulated_seconds");
    group.bench_function("309s", |b| {
        b.iter(|| {
            let mut dut = build_device("interior_light", cfg_for(&stand), None);
            black_box(execute(&plan_short, &mut dut, &ExecOptions::default()))
        })
    });
    group.bench_function("30900s", |b| {
        b.iter(|| {
            let mut dut = build_device("interior_light", cfg_for(&stand), None);
            black_box(execute(&plan_long, &mut dut, &ExecOptions::default()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    paper_execution,
    sampling_ablation,
    event_driven_scaling
);
criterion_main!(benches);
