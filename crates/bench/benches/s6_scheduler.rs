//! S6 — scheduler stress: cell-count scaling on synthetic ECU variants.
//!
//! The `s5/parallel_campaign` bench only shows speedup on multi-core
//! hosts; on the single-core CI container every worker count degenerates
//! to serial time plus scheduling overhead. This sweep measures exactly
//! that overhead: many *tiny* generated workbooks (ECU variants from
//! `comptest-workload`, deterministic seeds) against one synthetic stand,
//! so per-cell work is small and the scheduler — job planning, queue
//! stealing, event-free merge — dominates. Doubling the variant count
//! should roughly double wall-clock at every granularity; a superlinear
//! curve is a scheduler regression, visible even on one core.

use std::hint::black_box;

use comptest::core::campaign::CampaignEntry;
use comptest::prelude::*;
use comptest_bench::build_device;
use comptest_model::PinId;
use comptest_stand::ResourceId;
use comptest_workload::{gen_stand, gen_workbook_text, SplitMix64, StandShape, WorkbookShape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A variant workbook is intentionally tiny: the cell's execution cost is
/// negligible next to the cost of scheduling it.
const SHAPE: WorkbookShape = WorkbookShape {
    signals: 4,
    tests: 2,
    steps: 5,
};

/// Generates `n` distinct ECU-variant suites (one seed each).
fn variant_suites(n: usize) -> Vec<TestSuite> {
    (0..n)
        .map(|seed| {
            let mut rng = SplitMix64::new(0xECu64 + seed as u64);
            let text = gen_workbook_text(&mut rng, &SHAPE);
            let mut wb = Workbook::parse_str(&format!("variant_{seed}.cts"), &text)
                .expect("generated workbook parses");
            wb.suite.name = format!("variant_{seed}");
            wb.suite
        })
        .collect()
}

/// A stand serving the generated workbooks: full-density crosspoints for
/// the input pins plus a DVM route to the output pin pair.
fn variant_stand() -> TestStand {
    let mut rng = SplitMix64::new(7);
    let shape = StandShape {
        pins: SHAPE.signals,
        put_resources: SHAPE.signals,
        get_resources: 1,
        density: 1.0,
    };
    let dvm = ResourceId::new("Dvm0").expect("valid");
    gen_stand(&mut rng, &shape)
        .with_connection(
            PinId::new("XO1").expect("valid"),
            dvm.clone(),
            PinId::new("OUT_F").expect("valid"),
        )
        .with_connection(
            PinId::new("XO2").expect("valid"),
            dvm,
            PinId::new("OUT_R").expect("valid"),
        )
}

fn cell_count_scaling(c: &mut Criterion) {
    let stand = variant_stand();
    let stands = [&stand];

    let mut group = c.benchmark_group("s6/cell_count_scaling");
    group.sample_size(10);
    for n_variants in [8usize, 32, 128] {
        let suites = variant_suites(n_variants);
        let entries: Vec<CampaignEntry> = suites
            .iter()
            .map(|suite| CampaignEntry {
                suite,
                device_factory: Box::new(|| {
                    build_device("interior_light", Default::default(), None)
                }),
            })
            .collect();
        for granularity in [Granularity::Cell, Granularity::Test] {
            let campaign = Campaign::new(&entries, &stands).granularity(granularity);
            group.bench_with_input(
                BenchmarkId::new(granularity.to_string(), n_variants),
                &granularity,
                |b, _| b.iter(|| black_box(campaign.run(&PooledExecutor::new(4)).unwrap())),
            );
        }
    }
    group.finish();
}

/// Pool construction amortisation: the same 32-variant campaign run on a
/// per-call executor vs a persistent executor reused across iterations —
/// the watch-mode / replay scenario the persistent pool behind
/// [`PooledExecutor`] exists for.
fn pool_reuse(c: &mut Criterion) {
    let stand = variant_stand();
    let stands = [&stand];
    let suites = variant_suites(32);
    let entries: Vec<CampaignEntry> = suites
        .iter()
        .map(|suite| CampaignEntry {
            suite,
            device_factory: Box::new(|| build_device("interior_light", Default::default(), None)),
        })
        .collect();
    let campaign = Campaign::new(&entries, &stands).granularity(Granularity::Test);

    let mut group = c.benchmark_group("s6/pool_reuse");
    group.sample_size(10);
    group.bench_function("fresh_pool_per_campaign", |b| {
        b.iter(|| black_box(campaign.run(&PooledExecutor::new(4)).unwrap()))
    });
    group.bench_function("persistent_pool", |b| {
        let executor = PooledExecutor::new(4);
        b.iter(|| black_box(campaign.run(&executor).unwrap()))
    });
    group.finish();
}

/// Linearity check: the *per-cell* cost at 16× scale must stay within a
/// tolerance band of the small-campaign cost. A scheduler whose planning
/// or merge step went quadratic blows far past the band (16× at O(n²));
/// the band is wide because shared CI hosts are noisy, not because the
/// property is soft.
fn linearity(_c: &mut Criterion) {
    const SMALL: usize = 8;
    const LARGE: usize = 128;
    let stand = variant_stand();
    let stands = [&stand];
    let per_cell = |n: usize| {
        let suites = variant_suites(n);
        let entries: Vec<CampaignEntry> = suites
            .iter()
            .map(|suite| CampaignEntry {
                suite,
                device_factory: Box::new(|| {
                    build_device("interior_light", Default::default(), None)
                }),
            })
            .collect();
        let campaign = Campaign::new(&entries, &stands).granularity(Granularity::Test);
        let executor = PooledExecutor::new(4);
        let median =
            comptest_bench::summary::time_median(5, || black_box(campaign.run(&executor).unwrap()));
        median.as_secs_f64() / n as f64
    };
    let small = per_cell(SMALL);
    let large = per_cell(LARGE);
    let ratio = large / small;
    println!(
        "s6 linearity: per-cell {:.1}µs @{SMALL} vs {:.1}µs @{LARGE} (ratio {ratio:.2})",
        small * 1e6,
        large * 1e6
    );
    assert!(
        (0.2..5.0).contains(&ratio),
        "per-cell cost must scale linearly: {ratio:.2}× outside the 0.2–5.0 band \
         ({small:.6}s @{SMALL} cells vs {large:.6}s @{LARGE} cells)"
    );
}

criterion_group!(benches, cell_count_scaling, pool_reuse, linearity);
criterion_main!(benches);
