//! `repro` — regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run -p comptest-bench --bin repro -- all
//! cargo run -p comptest-bench --bin repro -- t1   # one experiment
//! ```
//!
//! Experiments (DESIGN.md §4): `t1` test sheet, `t2` status table,
//! `t3` resource table, `t4` connection matrix / allocation, `f1` test
//! circuit execution trace, `l1` XML listing, `s5` campaign + portability +
//! fault coverage.

use comptest::core::campaign::CampaignEntry;
use comptest::core::coverage::RequirementCoverage;
use comptest::core::faultcamp::run_fault_campaign;
use comptest::core::portability::check_portability;
use comptest::core::TraceEvent;
use comptest::prelude::*;
use comptest::report::{step_table, suite_text, TextTable};
use comptest_bench::{build_device, cfg_for, fault_set, load_stand, load_suite, ECUS};
use comptest_model::Env;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let run = |name: &str| which == "all" || which == name;

    if run("t1") {
        exp_t1();
    }
    if run("t2") {
        exp_t2();
    }
    if run("t3") {
        exp_t3();
    }
    if run("t4") {
        exp_t4();
    }
    if run("f1") {
        exp_f1();
    }
    if run("l1") {
        exp_l1();
    }
    if run("s5") {
        exp_s5();
    }
    if !["all", "t1", "t2", "t3", "t4", "f1", "l1", "s5"].contains(&which) {
        eprintln!("unknown experiment {which:?}; use t1|t2|t3|t4|f1|l1|s5|all");
        std::process::exit(2);
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// E1/T1: the paper's test definition sheet, executed.
fn exp_t1() {
    banner("E1 / T1 — test definition sheet (interior illumination, 10 steps)");
    let suite = load_suite("interior_light");
    let stand = load_stand("stand_a.stand");
    let mut dut = build_device("interior_light", cfg_for(&stand), None);
    let result = run_test(
        &suite,
        "interior_illumination",
        &stand,
        &mut dut,
        &ExecOptions::default(),
    )
    .expect("plans on stand A");
    println!("{}", step_table(&result));
    println!(
        "paper: all steps behave as specified | measured: {} ({} checks)",
        result.verdict(),
        result.check_count()
    );
}

/// E2/T2: the status table resolved against several supply voltages.
fn exp_t2() {
    banner("E2 / T2 — status definition table resolved per stand voltage");
    let suite = load_suite("interior_light");
    let mut table = TextTable::new(vec![
        "status",
        "method",
        "attr",
        "ubatt=10.8",
        "ubatt=12",
        "ubatt=14.4",
    ]);
    for def in suite.statuses.iter() {
        let mut cells = vec![
            def.name.to_string(),
            def.method.to_string(),
            def.attribut.clone(),
        ];
        for u in [10.8, 12.0, 14.4] {
            let resolved = def.resolve(&Env::with_ubatt(u)).unwrap();
            cells.push(resolved.bound.to_string());
        }
        table.row(cells);
    }
    println!("{table}");
    println!("paper: limits scale with UBATT | measured: table above");
}

/// E3/T3: the resource table as parsed.
fn exp_t3() {
    banner("E3 / T3 — resource tables of the bundled stands");
    for file in ["stand_a.stand", "stand_b.stand", "stand_minimal.stand"] {
        let stand = load_stand(file);
        print!("{stand}");
    }
    println!("paper: Ress1 DVM ±60 V, decades 1 MΩ / 200 kΩ | measured: HIL-A above");
}

/// E4/T4: the connection matrix and per-step allocations.
fn exp_t4() {
    banner("E4 / T4 — connection matrix and per-step resource allocation");
    let stand = load_stand("stand_a.stand");
    println!("{}", stand.matrix());

    let suite = load_suite("interior_light");
    let script = generate(&suite, "interior_illumination").unwrap();
    let plan = plan(&script, &stand).unwrap();

    let mut table = TextTable::new(vec!["step", "signal", "action", "resource", "value"]);
    for action in &plan.init {
        push_action_row(&mut table, "init", action);
    }
    for step in &plan.steps {
        for action in &step.actions {
            push_action_row(&mut table, &step.nr.to_string(), action);
        }
    }
    println!("{table}");
    println!("paper: interpreter searches an appropriate, connectable resource");
    println!("measured: every statement above resolved (Park = pin left open)");

    // Scaling sweep (indicative wall-clock; criterion benches in
    // benches/t4_allocation.rs give the statistically solid numbers).
    use comptest_workload::{gen_script, gen_stand, ScriptShape, SplitMix64, StandShape};
    println!("\nallocation scaling (100 steps, reroute on):");
    let mut sweep = TextTable::new(vec!["pins", "resources", "crosspoints", "plan time"]);
    for (pins, resources) in [(8usize, 2usize), (32, 8), (128, 16), (256, 32)] {
        let mut rng = SplitMix64::new(7);
        let stand = gen_stand(
            &mut rng,
            &StandShape {
                pins,
                put_resources: resources,
                get_resources: 2,
                density: 0.4,
            },
        );
        let script = gen_script(
            &mut rng,
            &ScriptShape {
                signals: pins,
                steps: 100,
                puts_per_step: 3,
                concurrency: resources,
            },
        );
        // Warm once, then time a few repetitions.
        let _ = comptest::stand::plan(&script, &stand);
        let reps = 20;
        let start = std::time::Instant::now();
        for _ in 0..reps {
            let _ = comptest::stand::plan(&script, &stand);
        }
        let per_plan = start.elapsed() / reps;
        sweep.row(vec![
            pins.to_string(),
            resources.to_string(),
            stand.matrix().len().to_string(),
            format!("{per_plan:?}"),
        ]);
    }
    println!("{sweep}");
}

fn push_action_row(table: &mut TextTable, step: &str, action: &comptest::stand::Action) {
    match action {
        comptest::stand::Action::Apply {
            signal,
            resource,
            method,
            value,
            ..
        } => {
            table.row(vec![
                step.to_owned(),
                signal.to_string(),
                method.to_string(),
                resource.to_string(),
                value.to_string(),
            ]);
        }
        comptest::stand::Action::Check(check) => {
            table.row(vec![
                step.to_owned(),
                check.signal.to_string(),
                check.method.to_string(),
                check.resource.to_string(),
                check.bound.to_string(),
            ]);
        }
    }
}

/// E5/F1: the simulated test circuit's electrical trace.
fn exp_f1() {
    banner("E5 / F1 — test circuit execution trace (stand A wiring)");
    let suite = load_suite("interior_light");
    let stand = load_stand("stand_a.stand");
    let mut dut = build_device("interior_light", cfg_for(&stand), None);
    let result = run_test(
        &suite,
        "interior_illumination",
        &stand,
        &mut dut,
        &ExecOptions::default(),
    )
    .unwrap();
    let mut shown = 0;
    for event in &result.trace {
        println!("{event}");
        shown += 1;
        if shown > 40 {
            let remaining = result.trace.len() - shown;
            println!("… {remaining} further events");
            break;
        }
    }
    let measures = result
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Measured { .. }))
        .count();
    println!(
        "paper: DVM via Sw1.1/Sw1.2, decades via Mx columns | measured: {measures} measurements, verdict {}",
        result.verdict()
    );
}

/// E6/L1: the generated XML listing, byte-compared to the paper's fragment.
fn exp_l1() {
    banner("E6 / L1 — generated XML test script");
    let suite = load_suite("interior_light");
    let script = generate(&suite, "interior_illumination").unwrap();
    let xml = script.to_xml();
    let paper_fragment = r#"<get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)"/>"#;
    let reproduced = xml.contains(paper_fragment);
    for line in xml.lines().take(24) {
        println!("{line}");
    }
    println!("…");
    println!("paper fragment  : {paper_fragment}");
    println!(
        "measured        : {}",
        if reproduced {
            "byte-identical statement present"
        } else {
            "MISSING"
        }
    );
    let back = TestScript::parse_xml(&xml).unwrap();
    println!(
        "roundtrip       : {}",
        if back == script {
            "parse(write(script)) == script"
        } else {
            "BROKEN"
        }
    );
}

/// E7/§5: campaign, portability and fault coverage.
fn exp_s5() {
    banner("E7 / §5 — ECU campaign across stands");
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let suites: Vec<TestSuite> = ECUS.iter().map(|e| load_suite(e)).collect();

    let entries: Vec<CampaignEntry> = suites
        .iter()
        .zip(ECUS)
        .map(|(suite, ecu)| CampaignEntry {
            suite,
            device_factory: Box::new(move || {
                build_device(ecu, comptest::dut::ElectricalConfig::default(), None)
            }),
        })
        .collect();
    let stands = [&stand_a, &stand_b];
    let campaign = Campaign::new(&entries, &stands)
        .run(&SerialExecutor)
        .expect("valid suites");
    println!("{campaign}");

    banner("E7 — portability matrix (3 stands)");
    let mini = load_stand("stand_minimal.stand");
    for suite in &suites {
        let report = check_portability(suite, &[&stand_a, &stand_b, &mini]).unwrap();
        let ok = report.rows.iter().filter(|r| r.ok).count();
        println!(
            "{:<16} {:>2}/{} (test,stand) pairs runnable",
            suite.name,
            ok,
            report.rows.len()
        );
    }

    banner("E7 — fault-injection coverage per ECU (stand B)");
    let mut table = TextTable::new(vec!["ecu", "faults", "detected", "coverage", "escapes"]);
    for ecu in ECUS {
        let suite = load_suite(ecu);
        let stand = if ecu == "interior_light" {
            &stand_a
        } else {
            &stand_b
        };
        let faults = fault_set(ecu);
        let result = run_fault_campaign(
            &suite,
            stand,
            |f| build_device(ecu, cfg_for(stand), f),
            &faults,
            &ExecOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{ecu}: {e}"));
        let detected = result.runs.iter().filter(|r| r.detected).count();
        let escapes: Vec<String> = result.escapes().iter().map(|r| r.fault.clone()).collect();
        table.row(vec![
            ecu.to_owned(),
            result.runs.len().to_string(),
            detected.to_string(),
            format!("{:.0}%", result.coverage() * 100.0),
            if escapes.is_empty() {
                "-".into()
            } else {
                escapes.join(", ")
            },
        ]);
    }
    println!("{table}");

    banner("E7 — requirement coverage (stand B)");
    for ecu in ECUS {
        let suite = load_suite(ecu);
        let stand = load_stand("stand_b.stand");
        let results = run_suite(
            &suite,
            &stand,
            || build_device(ecu, cfg_for(&stand), None),
            &ExecOptions::default(),
        )
        .unwrap();
        let cov = RequirementCoverage::from_suite(&suite).with_results(&results);
        println!(
            "{:<16} {:>2} requirements, {:>2} verified",
            ecu,
            cov.requirement_count(),
            cov.verified().len()
        );
        print!("{}", suite_text(&results));
    }
    println!("paper: 'successfully applied to two ECUs of the next S-class'");
    println!("measured: 4 ECU suites pass on the supplier stand; see tables above");
}
