//! Shared fixtures for the benchmarks and the `repro` harness.
//!
//! Every experiment of DESIGN.md §4 loads its inputs through this crate so
//! the criterion benches and the table-printing harness measure exactly the
//! same artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use comptest::dut::ecus::{central_lock, flasher, interior_light, power_window, wiper};
use comptest::dut::{Behavior, Device, ElectricalConfig, FaultKind, FaultyBehavior, PortValue};
use comptest::prelude::*;
use comptest_model::SimTime;

/// The bundled ECU names (suite files `assets/<name>.cts`).
pub const ECUS: [&str; 5] = comptest::dut::ecus::NAMES;

/// Loads a bundled workbook's suite by ECU name.
///
/// # Panics
///
/// Panics when the asset is missing or malformed — fixtures are part of the
/// repository.
pub fn load_suite(ecu: &str) -> TestSuite {
    Workbook::load(comptest::asset(&format!("{ecu}.cts")))
        .unwrap_or_else(|e| panic!("asset workbook {ecu}: {e}"))
        .suite
}

/// Loads a bundled stand by file name (`stand_a.stand`, …).
///
/// # Panics
///
/// Panics when the asset is missing or malformed.
pub fn load_stand(file: &str) -> TestStand {
    TestStand::load(comptest::asset(file)).unwrap_or_else(|e| panic!("asset stand {file}: {e}"))
}

/// The electrical configuration matching a stand's supply rail.
pub fn cfg_for(stand: &TestStand) -> ElectricalConfig {
    let mut cfg = ElectricalConfig::default();
    if let Some(u) = stand.env().get("ubatt") {
        cfg.ubatt = u;
    }
    cfg
}

/// Builds an ECU device, optionally with one injected fault.
///
/// # Panics
///
/// Panics for unknown ECU names.
pub fn build_device(ecu: &str, cfg: ElectricalConfig, fault: Option<&FaultKind>) -> Device {
    let behavior: Box<dyn Behavior + Send> = match ecu {
        "interior_light" => Box::new(interior_light::InteriorLight::new()),
        "wiper" => Box::new(wiper::Wiper::new()),
        "power_window" => Box::new(power_window::PowerWindow::new()),
        "central_lock" => Box::new(central_lock::CentralLock::new()),
        "flasher" => Box::new(flasher::Flasher::new()),
        other => panic!("unknown ecu {other}"),
    };
    let behavior: Box<dyn Behavior + Send> = match fault {
        Some(f) if !f.is_device_level() => Box::new(FaultyBehavior::new(behavior, vec![f.clone()])),
        _ => behavior,
    };
    let mut device = match ecu {
        "interior_light" => interior_light::device_with(cfg, behavior),
        "wiper" => wiper::device_with(cfg, behavior),
        "power_window" => power_window::device_with(cfg, behavior),
        "central_lock" => central_lock::device_with(cfg, behavior),
        "flasher" => flasher::device_with(cfg, behavior),
        other => panic!("unknown ecu {other}"),
    };
    if let Some(f) = fault {
        if f.is_device_level() {
            assert!(f.apply_to_device(&mut device));
        }
    }
    device
}

/// The standard fault set per ECU used by experiment E7 (and the
/// `fault_coverage` example for the interior light).
pub fn fault_set(ecu: &str) -> Vec<FaultKind> {
    match ecu {
        "interior_light" => vec![
            FaultKind::StuckOutput {
                port: "lamp",
                value: PortValue::Bool(true),
            },
            FaultKind::StuckOutput {
                port: "lamp",
                value: PortValue::Bool(false),
            },
            FaultKind::InvertedOutput { port: "lamp" },
            FaultKind::IgnoredInput { port: "door_fl" },
            FaultKind::IgnoredInput { port: "door_fr" },
            FaultKind::IgnoredInput { port: "night" },
            FaultKind::TimerScale { factor: 1.5 },
            FaultKind::TimerScale { factor: 0.5 },
            FaultKind::OutputDelay {
                port: "lamp",
                delay: SimTime::from_secs(1),
            },
            FaultKind::ThresholdShift { delta: 0.35 },
            FaultKind::DropCanFrame {
                frame: interior_light::NIGHT_FRAME,
            },
            FaultKind::DropCanFrame {
                frame: interior_light::IGN_FRAME,
            },
        ],
        "wiper" => vec![
            FaultKind::StuckOutput {
                port: "motor",
                value: PortValue::Bool(true),
            },
            FaultKind::StuckOutput {
                port: "motor",
                value: PortValue::Bool(false),
            },
            FaultKind::InvertedOutput { port: "motor" },
            FaultKind::InvertedOutput { port: "fast" },
            FaultKind::IgnoredInput { port: "stalk" },
            FaultKind::IgnoredInput { port: "wash" },
            FaultKind::TimerScale { factor: 3.0 },
            FaultKind::OutputDelay {
                port: "motor",
                delay: SimTime::from_secs(2),
            },
            FaultKind::DropCanFrame {
                frame: wiper::STALK_FRAME,
            },
        ],
        "power_window" => vec![
            FaultKind::StuckOutput {
                port: "motor_up",
                value: PortValue::Bool(false),
            },
            FaultKind::StuckOutput {
                port: "motor_down",
                value: PortValue::Bool(true),
            },
            FaultKind::InvertedOutput { port: "motor_down" },
            FaultKind::IgnoredInput { port: "pinch" },
            FaultKind::IgnoredInput { port: "btn_up" },
            FaultKind::IgnoredInput { port: "btn_down" },
            FaultKind::TimerScale { factor: 2.0 },
        ],
        "central_lock" => vec![
            FaultKind::StuckOutput {
                port: "actuator",
                value: PortValue::Bool(true),
            },
            FaultKind::StuckOutput {
                port: "actuator",
                value: PortValue::Bool(false),
            },
            FaultKind::InvertedOutput { port: "actuator" },
            FaultKind::IgnoredInput { port: "crash" },
            FaultKind::IgnoredInput { port: "lock_cmd" },
            FaultKind::IgnoredInput { port: "unlock_cmd" },
            FaultKind::TimerScale { factor: 0.25 },
            FaultKind::DropCanFrame {
                frame: central_lock::CMD_FRAME,
            },
        ],
        "flasher" => vec![
            FaultKind::StuckOutput {
                port: "lamp_l",
                value: PortValue::Bool(true),
            },
            FaultKind::StuckOutput {
                port: "lamp_l",
                value: PortValue::Bool(false),
            },
            FaultKind::InvertedOutput { port: "lamp_l" },
            FaultKind::IgnoredInput { port: "stalk" },
            FaultKind::IgnoredInput { port: "outage" },
            FaultKind::TimerScale { factor: 2.0 },
            FaultKind::TimerScale { factor: 0.5 },
            FaultKind::DropCanFrame {
                frame: flasher::STALK_FRAME,
            },
        ],
        other => panic!("unknown ecu {other}"),
    }
}

pub mod summary {
    //! Machine-readable bench summaries.
    //!
    //! Criterion's console output is for humans; CI and the repro harness
    //! want one flat file per experiment they can diff without scraping.
    //! The `s8_cache` and `s11_invalidate` benches measure their arms with
    //! [`time_median`] and write `BENCH_<name>.json` at the workspace root
    //! (the workspace carries no JSON dependency, so the writer is
    //! hand-rolled — flat objects of numbers only).

    use std::fmt::Write as _;
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    /// Runs `f` `iters` times and returns the median wall-clock duration.
    ///
    /// # Panics
    ///
    /// Panics when `iters` is zero.
    pub fn time_median<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
        assert!(iters > 0, "time_median needs at least one iteration");
        let mut samples: Vec<Duration> = (0..iters)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort();
        samples[samples.len() / 2]
    }

    /// Per-arm medians (plus free-form numeric notes) for one bench.
    #[derive(Debug, Clone)]
    pub struct BenchSummary {
        bench: String,
        tests: usize,
        arms: Vec<(String, Duration)>,
        notes: Vec<(String, f64)>,
    }

    impl BenchSummary {
        /// Starts a summary for bench `bench` over `tests` tests.
        pub fn new(bench: &str, tests: usize) -> Self {
            Self {
                bench: bench.to_owned(),
                tests,
                arms: Vec::new(),
                notes: Vec::new(),
            }
        }

        /// Records one arm's median.
        pub fn record(&mut self, arm: &str, median: Duration) {
            self.arms.push((arm.to_owned(), median));
        }

        /// Records a free-form numeric fact (cell counts, speedups, …).
        pub fn note(&mut self, key: &str, value: f64) {
            self.notes.push((key.to_owned(), value));
        }

        /// A recorded arm's median in milliseconds.
        pub fn median_ms(&self, arm: &str) -> Option<f64> {
            self.arms
                .iter()
                .find(|(a, _)| a == arm)
                .map(|(_, d)| d.as_secs_f64() * 1e3)
        }

        /// The flat JSON object:
        /// `{"bench":"s8","tests":10000,"medians_ms":{…},"notes":{…}}`.
        pub fn to_json(&self) -> String {
            let mut out = format!(
                "{{\"bench\":\"{}\",\"tests\":{},\"medians_ms\":{{",
                self.bench, self.tests
            );
            for (i, (arm, median)) in self.arms.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let ms = median.as_secs_f64() * 1e3;
                let _ = write!(out, "{sep}\"{arm}\":{ms:.3}");
            }
            out.push_str("},\"notes\":{");
            for (i, (key, value)) in self.notes.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}\"{key}\":{value}");
            }
            out.push_str("}}\n");
            out
        }

        /// Writes `BENCH_<bench>.json` at the workspace root and returns
        /// the path.
        ///
        /// # Errors
        ///
        /// Propagates the filesystem error when the root is not writable.
        pub fn write_at_workspace_root(&self) -> std::io::Result<PathBuf> {
            let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
            let path = root.join(format!("BENCH_{}.json", self.bench));
            std::fs::write(&path, self.to_json())?;
            Ok(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_json_is_flat_and_stable() {
        use std::time::Duration;
        let mut s = summary::BenchSummary::new("s8", 10_000);
        s.record("cold", Duration::from_millis(1500));
        s.record("warm_memory", Duration::from_micros(250));
        s.note("speedup", 6.0);
        assert_eq!(
            s.to_json(),
            "{\"bench\":\"s8\",\"tests\":10000,\"medians_ms\":{\"cold\":1500.000,\
             \"warm_memory\":0.250},\"notes\":{\"speedup\":6}}\n"
        );
        assert_eq!(s.median_ms("cold"), Some(1500.0));
        assert_eq!(s.median_ms("absent"), None);
    }

    #[test]
    fn time_median_measures_something() {
        use std::time::Duration;
        let d = summary::time_median(3, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn fixtures_load() {
        for ecu in ECUS {
            let suite = load_suite(ecu);
            assert!(!suite.tests.is_empty());
            assert!(!fault_set(ecu).is_empty());
            let stand = load_stand("stand_b.stand");
            let device = build_device(ecu, cfg_for(&stand), None);
            assert_eq!(device.behavior_name(), ecu);
        }
    }

    #[test]
    fn faulty_fixture_devices_build() {
        let stand = load_stand("stand_a.stand");
        for fault in fault_set("interior_light") {
            let d = build_device("interior_light", cfg_for(&stand), Some(&fault));
            // Behaviour-level faults rename the behaviour; device-level keep it.
            if fault.is_device_level() {
                assert_eq!(d.behavior_name(), "interior_light");
            } else {
                assert!(d.behavior_name().starts_with("interior_light!"));
            }
        }
    }
}
