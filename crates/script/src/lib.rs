//! Portable XML test scripts.
//!
//! The paper's pivotal artifact is an XML file "that can be interpreted by
//! any test stand".  Its core content is a sequence of signal statements,
//! each wrapping a method statement:
//!
//! ```xml
//! <signal name="int_ill">
//!   <get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)"/>
//! </signal>
//! ```
//!
//! This crate provides:
//!
//! * [`xml`] — a small, dependency-free XML element tree with writer and
//!   parser (exactly the subset scripts need);
//! * [`TestScript`] — the script model: header, embedded signal table, init
//!   statements, and timed steps;
//! * [`generate`] — code generation from a
//!   [`TestSuite`](comptest_model::TestSuite) (the paper's "tool … for
//!   automatic generation of code");
//! * round-tripping: [`TestScript::to_xml`] / [`TestScript::parse_xml`].
//!
//! # Example
//!
//! ```
//! use comptest_sheets::Workbook;
//! use comptest_script::generate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wb = Workbook::parse_str("mini.cts", "\
//! [signals]
//! name, kind, direction
//! LAMP, pin:LAMP_F/LAMP_R, output
//!
//! [status]
//! status, method, attribut, var, nom, min, max
//! Lit, get_u, u, UBATT, 1, 0.7, 1.1
//!
//! [test smoke]
//! step, dt, LAMP
//! 0, 0.5, Lit
//! ")?;
//! let script = generate(&wb.suite, "smoke")?;
//! let xml = script.to_xml();
//! assert!(xml.contains("u_max=\"(1.1*ubatt)\""));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod lint;
pub mod model;
pub mod xml;

pub use codegen::{generate, generate_all, CodegenError};
pub use lint::{lint, lint_with, required_variables, LintFinding, LintLevel};
pub use model::{AttrValue, ParseScriptError, ScriptStep, Statement, TestScript};
