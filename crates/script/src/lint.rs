//! Linting test scripts before they enter the shared knowledge base.
//!
//! A script that *plans* cleanly can still be a poor test: steps that check
//! nothing, stimulated signals whose effect is never observed, settle times
//! longer than the step. These are review findings, not errors — the
//! paper's exchange workflow (OEM ↔ supplier) is exactly where such review
//! happens, so the toolchain automates it.

use std::collections::BTreeSet;
use std::fmt;

use comptest_model::{MethodDirection, MethodRegistry, SignalName, SimTime};

use crate::model::{AttrValue, TestScript};

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    /// Stylistic or informational.
    Note,
    /// Likely a mistake; the script still runs.
    Warning,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Severity.
    pub level: LintLevel,
    /// Machine-readable rule id (`no-checks`, `unobserved-stimulus`, …).
    pub rule: &'static str,
    /// Step number (`None` = script-wide).
    pub step: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = match self.level {
            LintLevel::Note => "note",
            LintLevel::Warning => "warning",
        };
        match self.step {
            Some(nr) => write!(f, "{level}[{}] step {nr}: {}", self.rule, self.message),
            None => write!(f, "{level}[{}]: {}", self.rule, self.message),
        }
    }
}

/// Lints a script with the built-in method registry.
///
/// # Example
///
/// ```
/// use comptest_script::{lint, TestScript};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A script that stimulates but never checks anything.
/// let script = TestScript::parse_xml(r#"
/// <testscript name="t" suite="s" version="1">
///   <signals><signal name="d1" kind="pin:D1" direction="input"/></signals>
///   <step nr="0" dt="0.5">
///     <signal name="d1"><put_r r="0"/></signal>
///   </step>
/// </testscript>"#)?;
/// let findings = lint(&script);
/// assert!(findings.iter().any(|f| f.rule == "no-checks"));
/// # Ok(())
/// # }
/// ```
pub fn lint(script: &TestScript) -> Vec<LintFinding> {
    lint_with(script, &MethodRegistry::builtin())
}

/// Lints a script.
///
/// Rules:
/// * `no-checks` — the script contains no `get_*` statement at all (it can
///   never fail, so it tests nothing);
/// * `unobserved-stimulus` — a signal is stimulated but no output is ever
///   checked afterwards in the whole script;
/// * `unused-signal` — an embedded signal definition is never referenced;
/// * `undefined-signal` — a statement references a signal the script does
///   not embed (the stand will reject it; flagged early here);
/// * `settle-exceeds-step` — a statement's settle time is longer than its
///   step, so the value never counts as applied within the step;
/// * `empty-step` — a step without any statement (pure wait is legitimate,
///   hence only a note);
/// * `unknown-method` — a statement's method is not in the registry.
pub fn lint_with(script: &TestScript, registry: &MethodRegistry) -> Vec<LintFinding> {
    let mut findings = Vec::new();

    let mut any_check = false;
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    let mut last_check_step: Option<usize> = None;
    let mut stimulated: Vec<(usize, u32, SignalName)> = Vec::new();

    for stmt in &script.init {
        referenced.insert(stmt.signal.key());
        if script.signal(&stmt.signal).is_none() {
            findings.push(LintFinding {
                level: LintLevel::Warning,
                rule: "undefined-signal",
                step: None,
                message: format!("init references undeclared signal {}", stmt.signal),
            });
        }
    }

    for (idx, step) in script.steps.iter().enumerate() {
        if step.statements.is_empty() {
            findings.push(LintFinding {
                level: LintLevel::Note,
                rule: "empty-step",
                step: Some(step.nr),
                message: format!("step only waits for {}", step.dt),
            });
        }
        for stmt in &step.statements {
            referenced.insert(stmt.signal.key());
            if script.signal(&stmt.signal).is_none() {
                findings.push(LintFinding {
                    level: LintLevel::Warning,
                    rule: "undefined-signal",
                    step: Some(step.nr),
                    message: format!("references undeclared signal {}", stmt.signal),
                });
            }
            let Some(spec) = registry.get(&stmt.method) else {
                findings.push(LintFinding {
                    level: LintLevel::Warning,
                    rule: "unknown-method",
                    step: Some(step.nr),
                    message: format!("method {} is not registered", stmt.method),
                });
                continue;
            };
            match spec.direction {
                MethodDirection::Get => {
                    any_check = true;
                    last_check_step = Some(idx);
                }
                MethodDirection::Put => {
                    stimulated.push((idx, step.nr, stmt.signal.clone()));
                }
            }
            if let Some(AttrValue::Expr(e)) = stmt.attr("settle") {
                if let Ok(settle) = e.eval(&comptest_model::Env::new()) {
                    if SimTime::from_secs_f64(settle) > step.dt {
                        findings.push(LintFinding {
                            level: LintLevel::Warning,
                            rule: "settle-exceeds-step",
                            step: Some(step.nr),
                            message: format!(
                                "settle {settle}s is longer than the step ({})",
                                step.dt
                            ),
                        });
                    }
                }
            }
        }
    }

    if !any_check && !script.steps.is_empty() {
        findings.push(LintFinding {
            level: LintLevel::Warning,
            rule: "no-checks",
            step: None,
            message: "the script never measures anything; it cannot fail".into(),
        });
    }

    // Stimuli after the final check can never influence a verdict.
    if let Some(last) = last_check_step {
        let mut flagged: BTreeSet<String> = BTreeSet::new();
        for (idx, nr, signal) in &stimulated {
            if *idx > last && flagged.insert(signal.key()) {
                findings.push(LintFinding {
                    level: LintLevel::Note,
                    rule: "unobserved-stimulus",
                    step: Some(*nr),
                    message: format!(
                        "stimulus on {signal} comes after the last check; nothing observes it"
                    ),
                });
            }
        }
    }

    for def in &script.signals {
        if !referenced.contains(&def.name.key()) {
            findings.push(LintFinding {
                level: LintLevel::Note,
                rule: "unused-signal",
                step: None,
                message: format!("embedded signal {} is never referenced", def.name),
            });
        }
    }

    findings
}

/// The environment variables a stand must provide to run this script
/// (union of all expression attribute variables, lowercased and sorted).
pub fn required_variables(script: &TestScript) -> Vec<String> {
    let mut vars = BTreeSet::new();
    let statements = script
        .init
        .iter()
        .chain(script.steps.iter().flat_map(|s| s.statements.iter()));
    for stmt in statements {
        for (_, value) in &stmt.attrs {
            if let AttrValue::Expr(e) = value {
                for v in e.variables() {
                    vars.insert(v);
                }
            }
        }
    }
    vars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ScriptStep, Statement};
    use comptest_model::{MethodName, SignalDef, SignalDirection, SignalKind};

    fn sig(s: &str) -> SignalName {
        SignalName::new(s).unwrap()
    }

    fn met(s: &str) -> MethodName {
        MethodName::new(s).unwrap()
    }

    fn base_script() -> TestScript {
        TestScript {
            name: "lint_me".into(),
            suite: "s".into(),
            signals: vec![
                SignalDef::new(
                    sig("in1"),
                    SignalKind::parse("pin:IN1").unwrap(),
                    SignalDirection::Input,
                ),
                SignalDef::new(
                    sig("out1"),
                    SignalKind::parse("pin:OUT1").unwrap(),
                    SignalDirection::Output,
                ),
            ],
            init: vec![],
            steps: vec![ScriptStep {
                nr: 0,
                dt: SimTime::from_millis(500),
                statements: vec![
                    Statement::new(sig("in1"), met("put_r"))
                        .with_attr("r", AttrValue::parse("0").unwrap()),
                    Statement::new(sig("out1"), met("get_u"))
                        .with_attr("u_max", AttrValue::parse("(1.1*ubatt)").unwrap())
                        .with_attr("u_min", AttrValue::parse("(0.7*ubatt)").unwrap()),
                ],
            }],
        }
    }

    #[test]
    fn clean_script_has_no_findings() {
        let findings = lint(&base_script());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn flags_scripts_without_checks() {
        let mut s = base_script();
        s.steps[0].statements.retain(|st| st.method == "put_r");
        let findings = lint(&s);
        assert!(findings.iter().any(|f| f.rule == "no-checks"));
        // The unchecked stimulus is implied by no-checks; no double report.
        assert!(findings.iter().all(|f| f.rule != "unobserved-stimulus"));
    }

    #[test]
    fn flags_unobserved_trailing_stimulus() {
        let mut s = base_script();
        s.steps.push(ScriptStep {
            nr: 1,
            dt: SimTime::from_millis(500),
            statements: vec![Statement::new(sig("in1"), met("put_r"))
                .with_attr("r", AttrValue::parse("INF").unwrap())],
        });
        let findings = lint(&s);
        let hit = findings
            .iter()
            .find(|f| f.rule == "unobserved-stimulus")
            .unwrap();
        assert_eq!(hit.step, Some(1));
        assert_eq!(hit.level, LintLevel::Note);
    }

    #[test]
    fn flags_unused_and_undefined_signals() {
        let mut s = base_script();
        s.signals.push(SignalDef::new(
            sig("ghost_def"),
            SignalKind::parse("pin:G").unwrap(),
            SignalDirection::Input,
        ));
        s.steps[0].statements.push(
            Statement::new(sig("undeclared"), met("put_r"))
                .with_attr("r", AttrValue::parse("1").unwrap()),
        );
        let findings = lint(&s);
        assert!(findings.iter().any(|f| f.rule == "unused-signal"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "undefined-signal" && f.level == LintLevel::Warning));
    }

    #[test]
    fn flags_settle_longer_than_step() {
        let mut s = base_script();
        s.steps[0].statements[0] = Statement::new(sig("in1"), met("put_r"))
            .with_attr("r", AttrValue::parse("0").unwrap())
            .with_attr("settle", AttrValue::parse("2").unwrap());
        let findings = lint(&s);
        assert!(findings.iter().any(|f| f.rule == "settle-exceeds-step"));
    }

    #[test]
    fn flags_empty_steps_and_unknown_methods() {
        let mut s = base_script();
        s.steps.insert(
            0,
            ScriptStep {
                nr: 99,
                dt: SimTime::from_secs(5),
                statements: vec![],
            },
        );
        s.steps[1]
            .statements
            .push(Statement::new(sig("in1"), met("put_quantum")));
        let findings = lint(&s);
        assert!(findings
            .iter()
            .any(|f| f.rule == "empty-step" && f.step == Some(99)));
        assert!(findings.iter().any(|f| f.rule == "unknown-method"));
    }

    #[test]
    fn required_variables_are_collected() {
        let s = base_script();
        assert_eq!(required_variables(&s), vec!["ubatt".to_string()]);
        let mut s = s;
        s.steps[0].statements[1] = Statement::new(sig("out1"), met("get_u"))
            .with_attr("u_max", AttrValue::parse("(temp+vref)").unwrap());
        assert_eq!(
            required_variables(&s),
            vec!["temp".to_string(), "vref".into()]
        );
    }

    #[test]
    fn finding_display() {
        let f = LintFinding {
            level: LintLevel::Warning,
            rule: "no-checks",
            step: None,
            message: "boom".into(),
        };
        assert_eq!(f.to_string(), "warning[no-checks]: boom");
        let f = LintFinding {
            level: LintLevel::Note,
            rule: "empty-step",
            step: Some(3),
            message: "waits".into(),
        };
        assert!(f.to_string().contains("step 3"));
    }
}
