//! The test-script model and its XML (de)serialisation.

use std::error::Error;
use std::fmt;

use comptest_model::value::number_to_string;
use comptest_model::{
    BitPattern, Expr, MethodName, SignalDef, SignalDirection, SignalKind, SignalName, SimTime,
};

use crate::xml::{parse, write_document, Element, XmlError};

/// A method-statement attribute value: an expression (numbers, `INF`,
/// `(1.1*ubatt)`) or a bit pattern (`0001B`).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Arithmetic expression evaluated by the test stand.
    Expr(Expr),
    /// Exact bit pattern.
    Bits(BitPattern),
}

impl AttrValue {
    /// Parses an attribute string: bit pattern first, then expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParseScriptError`] when neither form applies.
    pub fn parse(s: &str) -> Result<AttrValue, ParseScriptError> {
        if let Ok(b) = BitPattern::parse(s) {
            return Ok(AttrValue::Bits(b));
        }
        Expr::parse(s)
            .map(AttrValue::Expr)
            .map_err(|e| ParseScriptError::new(format!("bad attribute value {s:?}: {e}")))
    }

    /// The expression, if this is [`AttrValue::Expr`].
    pub fn as_expr(&self) -> Option<&Expr> {
        match self {
            AttrValue::Expr(e) => Some(e),
            AttrValue::Bits(_) => None,
        }
    }

    /// The bit pattern, if this is [`AttrValue::Bits`].
    pub fn as_bits(&self) -> Option<BitPattern> {
        match self {
            AttrValue::Bits(b) => Some(*b),
            AttrValue::Expr(_) => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Expr(e) => e.fmt(f),
            AttrValue::Bits(b) => b.fmt(f),
        }
    }
}

/// One signal statement: a method applied to a named signal.
///
/// Serialises to the paper's shape:
/// `<signal name="int_ill"><get_u u_max="…" u_min="…"/></signal>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The target signal.
    pub signal: SignalName,
    /// The method to execute.
    pub method: MethodName,
    /// Method attributes in serialisation order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl Statement {
    /// Creates a statement without attributes.
    pub fn new(signal: SignalName, method: MethodName) -> Statement {
        Statement {
            signal,
            method,
            attrs: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, name: impl Into<String>, value: AttrValue) -> Statement {
        self.attrs.push((name.into(), value));
        self
    }

    /// Looks an attribute up by name.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attrs
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
    }

    /// Converts to the `<signal>` XML element.
    pub fn to_element(&self) -> Element {
        let mut method = Element::new(self.method.key());
        for (k, v) in &self.attrs {
            method.set_attr(k.clone(), v.to_string());
        }
        Element::new("signal")
            .with_attr("name", self.signal.key())
            .with_child(method)
    }

    /// Parses a `<signal>` element.
    ///
    /// # Errors
    ///
    /// Returns [`ParseScriptError`] if the element is missing its `name`
    /// attribute or does not contain exactly one method child.
    pub fn from_element(e: &Element) -> Result<Statement, ParseScriptError> {
        let name = e
            .attr("name")
            .ok_or_else(|| ParseScriptError::new("<signal> is missing the name attribute"))?;
        let signal = SignalName::new(name).map_err(|err| ParseScriptError::new(err.to_string()))?;
        let methods: Vec<&Element> = e.elements().collect();
        if methods.len() != 1 {
            return Err(ParseScriptError::new(format!(
                "<signal name=\"{name}\"> must contain exactly one method element, found {}",
                methods.len()
            )));
        }
        let m = methods[0];
        let method =
            MethodName::new(&m.name).map_err(|err| ParseScriptError::new(err.to_string()))?;
        let mut stmt = Statement::new(signal, method);
        for (k, v) in &m.attrs {
            stmt.attrs.push((k.clone(), AttrValue::parse(v)?));
        }
        Ok(stmt)
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_element().to_string().trim_end())
    }
}

/// One timed step of a script.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptStep {
    /// Step number.
    pub nr: u32,
    /// Step duration.
    pub dt: SimTime,
    /// Statements, puts and gets mixed in sheet column order.
    pub statements: Vec<Statement>,
}

/// A complete, self-contained test script.
///
/// Besides the steps the script embeds the signal table (name → pins / CAN
/// mapping) so that a test stand needs nothing but this file plus its own
/// resource description.
#[derive(Debug, Clone, PartialEq)]
pub struct TestScript {
    /// Test case name.
    pub name: String,
    /// Originating suite name.
    pub suite: String,
    /// Embedded signal table.
    pub signals: Vec<SignalDef>,
    /// Statements applied before step 0 (initial statuses).
    pub init: Vec<Statement>,
    /// The timed steps.
    pub steps: Vec<ScriptStep>,
}

impl TestScript {
    /// Format version written into generated scripts.
    pub const VERSION: &'static str = "1";

    /// Serialises to an XML document string.
    pub fn to_xml(&self) -> String {
        write_document(&self.to_element())
    }

    /// Converts to the root `<testscript>` element.
    pub fn to_element(&self) -> Element {
        let mut root = Element::new("testscript")
            .with_attr("name", self.name.clone())
            .with_attr("suite", self.suite.clone())
            .with_attr("version", Self::VERSION);

        let mut signals = Element::new("signals");
        for def in &self.signals {
            let mut e = Element::new("signal")
                .with_attr("name", def.name.key())
                .with_attr("kind", def.kind.to_string())
                .with_attr("direction", def.direction.to_string());
            if let Some(init) = &def.init {
                e.set_attr("init", init.to_string());
            }
            if !def.description.is_empty() {
                e.set_attr("description", def.description.clone());
            }
            signals.children.push(crate::xml::Node::Element(e));
        }
        root.children.push(crate::xml::Node::Element(signals));

        if !self.init.is_empty() {
            let mut init = Element::new("init");
            for stmt in &self.init {
                init.children
                    .push(crate::xml::Node::Element(stmt.to_element()));
            }
            root.children.push(crate::xml::Node::Element(init));
        }

        for step in &self.steps {
            let mut e = Element::new("step")
                .with_attr("nr", step.nr.to_string())
                .with_attr("dt", number_to_string(step.dt.as_secs_f64()));
            for stmt in &step.statements {
                e.children
                    .push(crate::xml::Node::Element(stmt.to_element()));
            }
            root.children.push(crate::xml::Node::Element(e));
        }
        root
    }

    /// Parses a script from XML text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseScriptError`] on XML syntax errors or schema
    /// violations (wrong root, missing attributes, bad values).
    pub fn parse_xml(text: &str) -> Result<TestScript, ParseScriptError> {
        let root = parse(text)?;
        Self::from_element(&root)
    }

    /// Converts from a parsed `<testscript>` element.
    ///
    /// # Errors
    ///
    /// See [`TestScript::parse_xml`].
    pub fn from_element(root: &Element) -> Result<TestScript, ParseScriptError> {
        if root.name != "testscript" {
            return Err(ParseScriptError::new(format!(
                "expected <testscript> root, found <{}>",
                root.name
            )));
        }
        let name = root
            .attr("name")
            .ok_or_else(|| ParseScriptError::new("<testscript> is missing name"))?
            .to_owned();
        let suite = root.attr("suite").unwrap_or("").to_owned();

        let mut signals = Vec::new();
        if let Some(sig_section) = root.first("signals") {
            for e in sig_section.elements_named("signal") {
                let sig_name = e
                    .attr("name")
                    .ok_or_else(|| ParseScriptError::new("<signal> without name in <signals>"))?;
                let kind = e.attr("kind").ok_or_else(|| {
                    ParseScriptError::new(format!("signal {sig_name}: missing kind"))
                })?;
                let direction = e.attr("direction").ok_or_else(|| {
                    ParseScriptError::new(format!("signal {sig_name}: missing direction"))
                })?;
                let mut def = SignalDef::new(
                    SignalName::new(sig_name).map_err(|e| ParseScriptError::new(e.to_string()))?,
                    SignalKind::parse(kind).map_err(|e| ParseScriptError::new(e.to_string()))?,
                    SignalDirection::parse(direction)
                        .map_err(|e| ParseScriptError::new(e.to_string()))?,
                );
                if let Some(init) = e.attr("init") {
                    let status = comptest_model::StatusName::new(init)
                        .map_err(|e| ParseScriptError::new(e.to_string()))?;
                    def = def.with_init(status);
                }
                if let Some(d) = e.attr("description") {
                    def = def.with_description(d);
                }
                signals.push(def);
            }
        }

        let mut init = Vec::new();
        if let Some(init_section) = root.first("init") {
            for e in init_section.elements_named("signal") {
                init.push(Statement::from_element(e)?);
            }
        }

        let mut steps = Vec::new();
        for e in root.elements_named("step") {
            let nr: u32 = e
                .attr("nr")
                .ok_or_else(|| ParseScriptError::new("<step> is missing nr"))?
                .parse()
                .map_err(|_| ParseScriptError::new("bad <step> nr"))?;
            let dt = e
                .attr("dt")
                .ok_or_else(|| ParseScriptError::new(format!("step {nr}: missing dt")))?;
            let dt = SimTime::parse_secs(dt)
                .map_err(|err| ParseScriptError::new(format!("step {nr}: {err}")))?;
            let mut statements = Vec::new();
            for s in e.elements_named("signal") {
                statements.push(Statement::from_element(s)?);
            }
            steps.push(ScriptStep { nr, dt, statements });
        }

        Ok(TestScript {
            name,
            suite,
            signals,
            init,
            steps,
        })
    }

    /// Total scripted duration.
    pub fn duration(&self) -> SimTime {
        self.steps
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc.saturating_add(s.dt))
    }

    /// The embedded definition of a signal, if present.
    pub fn signal(&self, name: &SignalName) -> Option<&SignalDef> {
        self.signals.iter().find(|s| &s.name == name)
    }
}

/// Error parsing a [`TestScript`] or [`AttrValue`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseScriptError {
    message: String,
}

impl ParseScriptError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid test script: {}", self.message)
    }
}

impl Error for ParseScriptError {}

impl From<XmlError> for ParseScriptError {
    fn from(e: XmlError) -> Self {
        ParseScriptError::new(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(s: &str) -> SignalName {
        SignalName::new(s).unwrap()
    }

    fn met(s: &str) -> MethodName {
        MethodName::new(s).unwrap()
    }

    fn sample_script() -> TestScript {
        TestScript {
            name: "interior_illumination".into(),
            suite: "interior_light".into(),
            signals: vec![
                SignalDef::new(
                    sig("ds_fl"),
                    SignalKind::parse("pin:DS_FL").unwrap(),
                    SignalDirection::Input,
                ),
                SignalDef::new(
                    sig("int_ill"),
                    SignalKind::parse("pin:INT_ILL_F/INT_ILL_R").unwrap(),
                    SignalDirection::Output,
                )
                .with_description("interior illumination"),
            ],
            init: vec![Statement::new(sig("ds_fl"), met("put_r"))
                .with_attr("r", AttrValue::parse("INF").unwrap())],
            steps: vec![ScriptStep {
                nr: 0,
                dt: SimTime::from_millis(500),
                statements: vec![
                    Statement::new(sig("ds_fl"), met("put_r"))
                        .with_attr("r", AttrValue::parse("0").unwrap()),
                    Statement::new(sig("int_ill"), met("get_u"))
                        .with_attr("u_max", AttrValue::parse("(1.1*ubatt)").unwrap())
                        .with_attr("u_min", AttrValue::parse("(0.7*ubatt)").unwrap()),
                ],
            }],
        }
    }

    #[test]
    fn serialises_paper_statement() {
        let xml = sample_script().to_xml();
        assert!(
            xml.contains("<signal name=\"int_ill\">"),
            "signal statement missing:\n{xml}"
        );
        assert!(xml.contains("<get_u u_max=\"(1.1*ubatt)\" u_min=\"(0.7*ubatt)\"/>"));
        assert!(xml.starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn xml_roundtrip() {
        let script = sample_script();
        let xml = script.to_xml();
        let back = TestScript::parse_xml(&xml).unwrap();
        assert_eq!(back, script);
    }

    #[test]
    fn attr_value_dispatch() {
        assert_eq!(
            AttrValue::parse("0001B")
                .unwrap()
                .as_bits()
                .unwrap()
                .to_string(),
            "0001B"
        );
        assert!(AttrValue::parse("(1.1*ubatt)").unwrap().as_expr().is_some());
        assert!(AttrValue::parse("?!").is_err());
    }

    #[test]
    fn statement_accessors() {
        let s = Statement::new(sig("x"), met("get_u"))
            .with_attr("u_max", AttrValue::parse("1").unwrap());
        assert!(s.attr("U_MAX").is_some(), "attr lookup is case-insensitive");
        assert!(s.attr("u_min").is_none());
        assert!(s.to_string().starts_with("<signal name=\"x\">"));
    }

    #[test]
    fn schema_errors() {
        assert!(TestScript::parse_xml("<nope/>").is_err());
        assert!(
            TestScript::parse_xml("<testscript/>").is_err(),
            "missing name"
        );
        let bad_step = r#"<testscript name="t"><step dt="1"/></testscript>"#;
        assert!(TestScript::parse_xml(bad_step).is_err(), "missing nr");
        let bad_dt = r#"<testscript name="t"><step nr="0" dt="fast"/></testscript>"#;
        assert!(TestScript::parse_xml(bad_dt).is_err());
        let two_methods = r#"<testscript name="t"><step nr="0" dt="1"><signal name="a"><put_r r="1"/><put_u u="1"/></signal></step></testscript>"#;
        assert!(TestScript::parse_xml(two_methods).is_err());
    }

    #[test]
    fn duration_and_lookup() {
        let script = sample_script();
        assert_eq!(script.duration(), SimTime::from_millis(500));
        assert!(script.signal(&sig("INT_ILL")).is_some());
        assert!(script.signal(&sig("ghost")).is_none());
    }

    #[test]
    fn dt_formats_cleanly() {
        let mut script = sample_script();
        script.steps[0].dt = SimTime::from_secs(280);
        assert!(script.to_xml().contains("dt=\"280\""));
        script.steps[0].dt = SimTime::from_millis(500);
        assert!(script.to_xml().contains("dt=\"0.5\""));
    }
}
