//! Code generation: test suite → portable XML test script.
//!
//! This is the paper's "tool … for automatic generation of code, that can be
//! interpreted by any test stand".  Each status assignment becomes a signal
//! statement; the status table's scaled bounds become expression attributes
//! such as `u_max="(1.1*ubatt)"` that the stand evaluates against its own
//! environment.

use std::error::Error;
use std::fmt;

use comptest_model::{
    AttrKind, Expr, MethodDirection, MethodRegistry, SignalDef, StatusDef, StatusName, TestCase,
    TestSuite, ValidationIssue,
};

use crate::model::{AttrValue, ScriptStep, Statement, TestScript};

/// Generates the script for one named test of a suite, using the built-in
/// method registry.
///
/// # Errors
///
/// Returns [`CodegenError`] if the suite fails validation or the test does
/// not exist.
pub fn generate(suite: &TestSuite, test_name: &str) -> Result<TestScript, CodegenError> {
    generate_with(suite, test_name, &MethodRegistry::builtin())
}

/// Generates scripts for every test of the suite.
///
/// The suite is validated **once**, not once per test — `generate_all` on
/// a 10 000-test suite is linear, not quadratic. (Campaign launches
/// generate every script of every entry up front as their codegen
/// precheck, so this is launch-path cost.)
///
/// # Errors
///
/// See [`generate`].
pub fn generate_all(suite: &TestSuite) -> Result<Vec<TestScript>, CodegenError> {
    let registry = MethodRegistry::builtin();
    let issues = suite.validate(&registry);
    if !issues.is_empty() {
        return Err(CodegenError::Invalid { issues });
    }
    suite
        .tests
        .iter()
        .map(|t| generate_validated(suite, t, &registry))
        .collect()
}

/// Generates the script for one test with a custom method registry.
///
/// # Errors
///
/// Returns [`CodegenError::Invalid`] when the suite has validation issues,
/// or [`CodegenError::UnknownTest`] for a missing test name.
pub fn generate_with(
    suite: &TestSuite,
    test_name: &str,
    registry: &MethodRegistry,
) -> Result<TestScript, CodegenError> {
    let issues = suite.validate(registry);
    if !issues.is_empty() {
        return Err(CodegenError::Invalid { issues });
    }
    let test = suite
        .test(test_name)
        .ok_or_else(|| CodegenError::UnknownTest {
            name: test_name.to_owned(),
            suite: suite.name.clone(),
        })?;
    generate_validated(suite, test, registry)
}

/// Generates one test's script assuming the suite already validated
/// against `registry` — the shared body of [`generate_with`] (which
/// validates per call) and [`generate_all`] (which validates once).
fn generate_validated(
    suite: &TestSuite,
    test: &TestCase,
    registry: &MethodRegistry,
) -> Result<TestScript, CodegenError> {
    let mut init = Vec::new();
    for sig in &suite.signals {
        if let Some(status_name) = &sig.init {
            let def = lookup_status(suite, status_name)?;
            init.push(statement(sig, def, registry));
        }
    }

    let mut steps = Vec::new();
    for step in &test.steps {
        let mut statements = Vec::new();
        for a in &step.assignments {
            let sig = suite.signal(&a.signal).expect("validated: signal exists");
            let def = lookup_status(suite, &a.status)?;
            statements.push(statement(sig, def, registry));
        }
        steps.push(ScriptStep {
            nr: step.nr,
            dt: step.dt,
            statements,
        });
    }

    Ok(TestScript {
        name: test.name.clone(),
        suite: suite.name.clone(),
        signals: signals_used(suite, test),
        init,
        steps,
    })
}

/// Only signals the test (or the init block) actually touches are embedded.
fn signals_used(suite: &TestSuite, test: &TestCase) -> Vec<SignalDef> {
    let used = test.signals_used();
    suite
        .signals
        .iter()
        .filter(|s| s.init.is_some() || used.contains(&s.name))
        .cloned()
        .collect()
}

fn lookup_status<'a>(
    suite: &'a TestSuite,
    name: &StatusName,
) -> Result<&'a StatusDef, CodegenError> {
    suite
        .statuses
        .get(name)
        .ok_or_else(|| CodegenError::UnknownStatus {
            status: name.clone(),
        })
}

/// Builds the signal statement for one status assignment.
fn statement(sig: &SignalDef, def: &StatusDef, registry: &MethodRegistry) -> Statement {
    let spec = registry.get(&def.method).expect("validated: method exists");
    let mut stmt = Statement::new(sig.name.clone(), def.method.clone());
    match spec.attr_kind {
        AttrKind::Bits => {
            let bits = def.bits.expect("validated: bits status has a pattern");
            stmt = stmt.with_attr(spec.attribut.clone(), AttrValue::Bits(bits));
        }
        AttrKind::Numeric(_) => match spec.direction {
            MethodDirection::Get => {
                // Paper order: max first, then min.
                let max = def.max_expr().unwrap_or(Expr::num(f64::INFINITY));
                let min = def.min_expr().unwrap_or(Expr::num(f64::NEG_INFINITY));
                stmt = stmt
                    .with_attr(format!("{}_max", spec.attribut), AttrValue::Expr(max))
                    .with_attr(format!("{}_min", spec.attribut), AttrValue::Expr(min));
            }
            MethodDirection::Put => {
                let nom = def.nom_expr().expect("validated: put has a nominal");
                stmt = stmt.with_attr(spec.attribut.clone(), AttrValue::Expr(nom));
                if let Some(min) = def.min_expr() {
                    stmt = stmt.with_attr(format!("{}_min", spec.attribut), AttrValue::Expr(min));
                }
                if let Some(max) = def.max_expr() {
                    stmt = stmt.with_attr(format!("{}_max", spec.attribut), AttrValue::Expr(max));
                }
            }
        },
    }
    if let Some(d1) = def.d1 {
        stmt = stmt.with_attr("settle", AttrValue::Expr(Expr::num(d1)));
    }
    if let Some(d2) = def.d2 {
        stmt = stmt.with_attr("window", AttrValue::Expr(Expr::num(d2)));
    }
    stmt
}

/// Error generating a [`TestScript`].
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// The suite failed [`TestSuite::validate`].
    Invalid {
        /// All validation issues found.
        issues: Vec<ValidationIssue>,
    },
    /// The requested test does not exist in the suite.
    UnknownTest {
        /// The missing test's name.
        name: String,
        /// The suite that was searched.
        suite: String,
    },
    /// A status referenced during generation is undefined (unreachable when
    /// validation passes; kept for defence in depth).
    UnknownStatus {
        /// The missing status.
        status: StatusName,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Invalid { issues } => {
                writeln!(f, "suite failed validation with {} issue(s):", issues.len())?;
                for issue in issues {
                    writeln!(f, "  - {issue}")?;
                }
                Ok(())
            }
            CodegenError::UnknownTest { name, suite } => {
                write!(f, "no test named {name:?} in suite {suite:?}")
            }
            CodegenError::UnknownStatus { status } => {
                write!(f, "undefined status {status}")
            }
        }
    }
}

impl Error for CodegenError {}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_model::{BitPattern, SignalDirection, SignalKind, SignalName, SimTime, TestStep};

    fn sig(s: &str) -> SignalName {
        SignalName::new(s).unwrap()
    }

    fn st(s: &str) -> StatusName {
        StatusName::new(s).unwrap()
    }

    fn m(s: &str) -> comptest_model::MethodName {
        comptest_model::MethodName::new(s).unwrap()
    }

    /// A miniature paper suite: door switch in, lamp out, CAN night bit.
    fn suite() -> TestSuite {
        let mut suite = TestSuite::new("interior_light");
        suite.signals.push(
            SignalDef::new(
                sig("DS_FL"),
                SignalKind::parse("pin:DS_FL").unwrap(),
                SignalDirection::Input,
            )
            .with_init(st("Closed")),
        );
        suite.signals.push(SignalDef::new(
            sig("NIGHT"),
            SignalKind::parse("can:0x2A0:0:1").unwrap(),
            SignalDirection::Input,
        ));
        suite.signals.push(SignalDef::new(
            sig("INT_ILL"),
            SignalKind::parse("pin:INT_ILL_F/INT_ILL_R").unwrap(),
            SignalDirection::Output,
        ));
        suite.statuses.insert(
            StatusDef::numeric(st("Open"), m("put_r"), "r", 0.0, 0.0, 2.0).with_settle(0.01),
        );
        suite.statuses.insert(StatusDef {
            nom: Some(f64::INFINITY),
            min: Some(5000.0),
            max: Some(f64::INFINITY),
            ..StatusDef::numeric(st("Closed"), m("put_r"), "r", 0.0, 0.0, 0.0)
        });
        suite.statuses.insert(StatusDef::bits(
            st("1"),
            m("put_can"),
            "data",
            BitPattern::parse("1B").unwrap(),
        ));
        suite
            .statuses
            .insert(StatusDef::numeric(st("Ho"), m("get_u"), "u", 1.0, 0.7, 1.1).with_var("UBATT"));
        let mut tc = TestCase::new("night_light");
        tc.steps.push(
            TestStep::new(0, SimTime::from_millis(500))
                .assign(sig("DS_FL"), st("Open"))
                .assign(sig("NIGHT"), st("1"))
                .assign(sig("INT_ILL"), st("Ho")),
        );
        suite.tests.push(tc);
        suite
    }

    #[test]
    fn generates_paper_shaped_xml() {
        let script = generate(&suite(), "night_light").unwrap();
        let xml = script.to_xml();
        assert!(xml.contains("<get_u u_max=\"(1.1*ubatt)\" u_min=\"(0.7*ubatt)\"/>"));
        assert!(xml.contains("<put_can data=\"1B\"/>"));
        assert!(xml.contains("put_r r=\"0\" r_min=\"0\" r_max=\"2\" settle=\"0.01\""));
        // Init from the signal sheet's `Closed` column.
        assert!(xml.contains("<init>"));
        assert!(xml.contains("r=\"INF\""));
    }

    #[test]
    fn generated_script_roundtrips() {
        let script = generate(&suite(), "night_light").unwrap();
        let back = TestScript::parse_xml(&script.to_xml()).unwrap();
        assert_eq!(back, script);
    }

    #[test]
    fn embeds_only_used_signals() {
        let mut s = suite();
        s.signals.push(SignalDef::new(
            sig("UNUSED"),
            SignalKind::parse("pin:UNUSED").unwrap(),
            SignalDirection::Input,
        ));
        let script = generate(&s, "night_light").unwrap();
        assert!(script.signal(&sig("UNUSED")).is_none());
        assert!(script.signal(&sig("DS_FL")).is_some());
    }

    #[test]
    fn unknown_test_is_reported() {
        let err = generate(&suite(), "nope").unwrap_err();
        assert!(matches!(err, CodegenError::UnknownTest { .. }));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn invalid_suite_is_rejected() {
        let mut s = suite();
        s.tests[0]
            .steps
            .push(TestStep::new(1, SimTime::from_millis(500)).assign(sig("GHOST"), st("Open")));
        let err = generate(&s, "night_light").unwrap_err();
        match err {
            CodegenError::Invalid { issues } => assert_eq!(issues.len(), 1),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn generate_all_covers_every_test() {
        let mut s = suite();
        let mut tc = TestCase::new("second");
        tc.steps
            .push(TestStep::new(0, SimTime::from_secs(1)).assign(sig("DS_FL"), st("Closed")));
        s.tests.push(tc);
        let scripts = generate_all(&s).unwrap();
        assert_eq!(scripts.len(), 2);
        assert_eq!(scripts[1].name, "second");
    }
}
