//! A minimal, self-contained XML engine.
//!
//! Test scripts need only a small XML subset: elements, attributes, text,
//! comments and the XML declaration.  Implementing it here keeps the
//! toolchain dependency-free and the scripts auditable (test stands in the
//! paper's setting are safety-relevant lab equipment).
//!
//! Unsupported on purpose: DOCTYPE, CDATA, processing instructions other
//! than the declaration, namespaces-as-semantics (colons are allowed in
//! names but uninterpreted).

mod parser;
mod tree;
mod writer;

pub use parser::{parse, XmlError};
pub use tree::{Element, Node};
pub use writer::{escape_attr, escape_text, write_document};
