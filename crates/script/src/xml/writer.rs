//! Serialisation of element trees with stable formatting.

use super::tree::{Element, Node};

/// Escapes character data for text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes character data for a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Writes a full document: XML declaration plus the pretty-printed root.
pub fn write_document(root: &Element) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_element(root, 0, &mut out);
    out
}

/// Writes an element without a declaration (used by `Display`).
pub(super) fn write_fragment(root: &Element) -> String {
    let mut out = String::new();
    write_element(root, 0, &mut out);
    out
}

fn write_element(e: &Element, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Elements with only text children are written inline.
    let only_text = e.children.iter().all(|n| matches!(n, Node::Text(_)));
    if only_text {
        out.push('>');
        for n in &e.children {
            if let Node::Text(t) = n {
                out.push_str(&escape_text(t));
            }
        }
        out.push_str("</");
        out.push_str(&e.name);
        out.push_str(">\n");
        return;
    }
    out.push_str(">\n");
    for n in &e.children {
        match n {
            Node::Element(child) => write_element(child, indent + 1, out),
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    for _ in 0..=indent {
                        out.push_str("  ");
                    }
                    out.push_str(&escape_text(t));
                    out.push('\n');
                }
            }
        }
    }
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push_str(">\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_statement_shape() {
        let e = Element::new("signal")
            .with_attr("name", "int_ill")
            .with_child(
                Element::new("get_u")
                    .with_attr("u_max", "(1.1*ubatt)")
                    .with_attr("u_min", "(0.7*ubatt)"),
            );
        let xml = write_fragment(&e);
        assert_eq!(
            xml,
            "<signal name=\"int_ill\">\n  <get_u u_max=\"(1.1*ubatt)\" u_min=\"(0.7*ubatt)\"/>\n</signal>\n"
        );
    }

    #[test]
    fn document_has_declaration() {
        let doc = write_document(&Element::new("testscript"));
        assert!(doc.starts_with("<?xml version=\"1.0\""));
        assert!(doc.ends_with("<testscript/>\n"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_attr("say \"hi\""), "say &quot;hi&quot;");
        assert_eq!(escape_attr("line\nbreak\ttab"), "line&#10;break&#9;tab");
    }

    #[test]
    fn inline_text_elements() {
        let e = Element::new("remark").with_text("doors are open");
        assert_eq!(write_fragment(&e), "<remark>doors are open</remark>\n");
    }

    #[test]
    fn mixed_content_is_indented() {
        let e = Element::new("a")
            .with_text("t1")
            .with_child(Element::new("b"))
            .with_text("  ");
        let xml = write_fragment(&e);
        assert_eq!(xml, "<a>\n  t1\n  <b/>\n</a>\n");
    }
}
