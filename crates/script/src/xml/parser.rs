//! A recursive-descent parser for the supported XML subset.

use std::error::Error;
use std::fmt;

use super::tree::{Element, Node};

/// An XML syntax error with line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xml error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for XmlError {}

/// Parses a document (or fragment) into its root element.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed input, mismatched tags, DOCTYPE/CDATA
/// (unsupported), duplicate attributes, or trailing content after the root.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser {
        chars: input.chars().collect(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err("trailing content after the root element"));
    }
    Ok(root)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars()
            .enumerate()
            .all(|(i, c)| self.peek_at(i) == Some(c))
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.chars().count();
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        let mut line = 1;
        let mut col = 1;
        for &c in self.chars.iter().take(self.pos) {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        XmlError {
            line,
            col,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments and the XML declaration.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                while !self.at_end() && !self.eat("?>") {
                    self.pos += 1;
                }
            } else if self.starts_with("<!--") {
                self.pos += 4;
                let mut closed = false;
                while !self.at_end() {
                    if self.eat("-->") {
                        closed = true;
                        break;
                    }
                    self.pos += 1;
                }
                if !closed {
                    return Err(self.err("unterminated comment"));
                }
            } else if self.starts_with("<!") {
                return Err(self.err("DOCTYPE/CDATA are not supported in test scripts"));
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {
                out.push(c);
                self.pos += 1;
            }
            _ => return Err(self.err("expected a name")),
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | ':' | '-' | '.') {
                out.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn element(&mut self) -> Result<Element, XmlError> {
        if self.bump() != Some('<') {
            return Err(self.err("expected `<`"));
        }
        let name = self.name()?;
        let mut element = Element::new(name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some('/') => {
                    self.pos += 1;
                    if self.bump() != Some('>') {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    return Ok(element);
                }
                Some('>') => {
                    self.pos += 1;
                    break;
                }
                Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {
                    let attr_name = self.name()?;
                    self.skip_ws();
                    if self.bump() != Some('=') {
                        return Err(self.err(format!("expected `=` after attribute {attr_name}")));
                    }
                    self.skip_ws();
                    let quote = match self.bump() {
                        Some(q @ ('"' | '\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    let mut raw = String::new();
                    loop {
                        match self.bump() {
                            Some(c) if c == quote => break,
                            Some('<') => return Err(self.err("`<` in attribute value")),
                            Some(c) => raw.push(c),
                            None => return Err(self.err("unterminated attribute value")),
                        }
                    }
                    let value = decode_entities(&raw).map_err(|m| self.err(m))?;
                    if element.attr(&attr_name).is_some() {
                        return Err(self.err(format!("duplicate attribute {attr_name}")));
                    }
                    element.attrs.push((attr_name, value));
                }
                _ => return Err(self.err("malformed start tag")),
            }
        }

        // Content until the matching end tag.
        let mut text = String::new();
        loop {
            if self.starts_with("</") {
                flush_text(&mut text, &mut element).map_err(|m| self.err(m))?;
                self.pos += 2;
                let end_name = self.name()?;
                if end_name != element.name {
                    return Err(self.err(format!(
                        "mismatched end tag </{end_name}> (expected </{}>)",
                        element.name
                    )));
                }
                self.skip_ws();
                if self.bump() != Some('>') {
                    return Err(self.err("expected `>` in end tag"));
                }
                return Ok(element);
            } else if self.starts_with("<!--") {
                flush_text(&mut text, &mut element).map_err(|m| self.err(m))?;
                self.pos += 4;
                let mut closed = false;
                while !self.at_end() {
                    if self.eat("-->") {
                        closed = true;
                        break;
                    }
                    self.pos += 1;
                }
                if !closed {
                    return Err(self.err("unterminated comment"));
                }
            } else if self.starts_with("<!") || self.starts_with("<?") {
                return Err(self.err("unsupported markup inside element"));
            } else if self.peek() == Some('<') {
                flush_text(&mut text, &mut element).map_err(|m| self.err(m))?;
                let child = self.element()?;
                element.children.push(Node::Element(child));
            } else if self.at_end() {
                return Err(self.err(format!("unexpected end of input inside <{}>", element.name)));
            } else {
                text.push(self.bump().expect("peeked"));
            }
        }
    }
}

fn flush_text(text: &mut String, element: &mut Element) -> Result<(), String> {
    if !text.trim().is_empty() {
        let decoded = decode_entities(text)?;
        element.children.push(Node::Text(decoded));
    }
    text.clear();
    Ok(())
}

fn decode_entities(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let mut entity = String::new();
        loop {
            match chars.next() {
                Some(';') => break,
                Some(c) if entity.len() < 10 => entity.push(c),
                _ => return Err(format!("malformed entity &{entity}")),
            }
        }
        match entity.as_str() {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = if let Some(hex) = entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse().ok()
                } else {
                    None
                };
                match code.and_then(char::from_u32) {
                    Some(c) => out.push(c),
                    None => return Err(format!("unknown entity &{entity};")),
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::writer::write_document;
    use super::*;

    #[test]
    fn parses_paper_fragment() {
        let xml = r#"<signal name="int_ill">
       <get_u   u_max="(1.1*ubatt)" u_min="(0.7*ubatt)" />
 </signal>"#;
        let e = parse(xml).unwrap();
        assert_eq!(e.name, "signal");
        assert_eq!(e.attr("name"), Some("int_ill"));
        let get_u = e.first("get_u").unwrap();
        assert_eq!(get_u.attr("u_max"), Some("(1.1*ubatt)"));
        assert_eq!(get_u.attr("u_min"), Some("(0.7*ubatt)"));
    }

    #[test]
    fn declaration_and_comments_are_skipped() {
        let xml = "<?xml version=\"1.0\"?>\n<!-- header -->\n<a><!-- inside --><b/></a>\n<!-- trailer -->";
        let e = parse(xml).unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.elements().count(), 1);
    }

    #[test]
    fn entities_roundtrip() {
        let e = parse(r#"<a t="a&amp;b&lt;c&quot;d&#10;e">x &gt; y &#x41;</a>"#).unwrap();
        assert_eq!(e.attr("t"), Some("a&b<c\"d\ne"));
        assert_eq!(e.text(), "x > y A");
    }

    #[test]
    fn errors_with_positions() {
        let err = parse("<a>\n  <b>\n</a>").unwrap_err();
        assert_eq!(err.line, 3, "{err}");
        assert!(err.message.contains("mismatched"));

        for bad in [
            "<a",
            "<a b=c/>",
            "<a b=\"1\" b=\"2\"/>",
            "<a>&bogus;</a>",
            "<!DOCTYPE html><a/>",
            "<a/><b/>",
            "< a/>",
            "<a>text",
            "",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn single_quoted_attributes() {
        let e = parse("<a x='1' y=\"2\"/>").unwrap();
        assert_eq!(e.attr("x"), Some("1"));
        assert_eq!(e.attr("y"), Some("2"));
    }

    #[test]
    fn writer_parser_roundtrip() {
        let original = Element::new("testscript")
            .with_attr("name", "t1 & co")
            .with_child(
                Element::new("step")
                    .with_attr("nr", "0")
                    .with_attr("dt", "0.5")
                    .with_child(
                        Element::new("signal")
                            .with_attr("name", "int_ill")
                            .with_child(
                                Element::new("get_u")
                                    .with_attr("u_max", "(1.1*ubatt)")
                                    .with_attr("u_min", "(0.7*ubatt)"),
                            ),
                    ),
            )
            .with_child(Element::new("remark").with_text("doors \"open\" & <shut>"));
        let doc = write_document(&original);
        let reparsed = parse(&doc).unwrap();
        assert_eq!(reparsed, original);
    }
}
