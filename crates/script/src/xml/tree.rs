//! The XML element tree.

use std::fmt;

/// A node in an XML document: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (entity-decoded).
    Text(String),
}

/// An XML element: name, ordered attributes, ordered children.
///
/// Attribute order is preserved so generated scripts are byte-stable (the
/// paper's listing writes `u_max` before `u_min`; we reproduce that).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Children in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style). Replaces an existing attribute of
    /// the same name.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.set_attr(name, value);
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: Element) -> Element {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Element {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Sets an attribute, replacing any previous value; returns the old one.
    pub fn set_attr(
        &mut self,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Option<String> {
        let name = name.into();
        let value = value.into();
        for (k, v) in &mut self.attrs {
            if *k == name {
                return Some(std::mem::replace(v, value));
            }
        }
        self.attrs.push((name, value));
        None
    }

    /// Looks up an attribute value.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Iterates over child elements (skipping text).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Child elements with a given name.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// The first child element with a given name.
    pub fn first(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Concatenated text content of direct text children, trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_owned()
    }
}

impl fmt::Display for Element {
    /// Renders as a document fragment (no XML declaration).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&super::writer::write_fragment(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_access() {
        let e = Element::new("signal")
            .with_attr("name", "int_ill")
            .with_child(
                Element::new("get_u")
                    .with_attr("u_max", "(1.1*ubatt)")
                    .with_attr("u_min", "(0.7*ubatt)"),
            );
        assert_eq!(e.attr("name"), Some("int_ill"));
        assert_eq!(e.attr("missing"), None);
        let get_u = e.first("get_u").unwrap();
        assert_eq!(get_u.attr("u_max"), Some("(1.1*ubatt)"));
        assert_eq!(e.elements().count(), 1);
        assert_eq!(e.elements_named("get_u").count(), 1);
        assert_eq!(e.elements_named("put_r").count(), 0);
    }

    #[test]
    fn set_attr_replaces_in_place() {
        let mut e = Element::new("x").with_attr("a", "1").with_attr("b", "2");
        assert_eq!(e.set_attr("a", "3"), Some("1".to_owned()));
        // Order unchanged.
        assert_eq!(e.attrs[0], ("a".to_owned(), "3".to_owned()));
        assert_eq!(e.set_attr("c", "4"), None);
        assert_eq!(e.attrs.len(), 3);
    }

    #[test]
    fn text_content() {
        let e = Element::new("remark")
            .with_text("day: ")
            .with_child(Element::new("b"))
            .with_text("no interior ");
        assert_eq!(e.text(), "day: no interior");
    }
}
