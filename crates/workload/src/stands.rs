//! Synthetic test-stand generation for allocation-scaling benches.

use comptest_model::{Env, MethodName, PinId, Unit};
use comptest_stand::{Capability, Resource, ResourceId, TestStand};

use crate::rng::SplitMix64;

/// Parameters for [`gen_stand`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StandShape {
    /// Number of DUT pins (`P0`, `P1`, …).
    pub pins: usize,
    /// Number of `put_r` resources (`Dec0`, …), each 0..1 MΩ.
    pub put_resources: usize,
    /// Number of `get_u` resources (`Dvm0`, …), each −60..60 V.
    pub get_resources: usize,
    /// Probability that a given (resource, pin) crosspoint exists.
    pub density: f64,
}

impl Default for StandShape {
    fn default() -> Self {
        Self {
            pins: 16,
            put_resources: 4,
            get_resources: 2,
            density: 0.5,
        }
    }
}

/// The pin name used by generated stands and scripts.
pub fn pin_name(i: usize) -> String {
    format!("P{i}")
}

/// Generates a stand. Every pin is guaranteed at least one crosspoint to a
/// put resource and one to a get resource (plus random extras per
/// `density`), so workloads are never trivially infeasible.
pub fn gen_stand(rng: &mut SplitMix64, shape: &StandShape) -> TestStand {
    let mut stand = TestStand::new(
        format!("synth-{}p-{}r", shape.pins, shape.put_resources),
        Env::with_ubatt(12.0),
    );
    let put_r = MethodName::new("put_r").expect("valid");
    let get_u = MethodName::new("get_u").expect("valid");

    let mut put_ids = Vec::new();
    for i in 0..shape.put_resources {
        let id = ResourceId::new(format!("Dec{i}")).expect("valid");
        put_ids.push(id.clone());
        stand = stand.with_resource(Resource::new(id).with_capability(Capability::new(
            put_r.clone(),
            "r",
            0.0,
            1e6,
            Unit::Ohm,
        )));
    }
    let mut get_ids = Vec::new();
    for i in 0..shape.get_resources {
        let id = ResourceId::new(format!("Dvm{i}")).expect("valid");
        get_ids.push(id.clone());
        stand = stand.with_resource(Resource::new(id).with_capability(Capability::new(
            get_u.clone(),
            "u",
            -60.0,
            60.0,
            Unit::Volt,
        )));
    }

    let mut point = 0usize;
    for p in 0..shape.pins {
        let pin = PinId::new(pin_name(p)).expect("valid");
        // One forced crosspoint per resource class guarantees coverage.
        let forced_put = (!put_ids.is_empty()).then(|| rng.index(put_ids.len()));
        let forced_get = (!get_ids.is_empty()).then(|| rng.index(get_ids.len()));
        for (ids, forced) in [(&put_ids, forced_put), (&get_ids, forced_get)] {
            for (i, id) in ids.iter().enumerate() {
                if Some(i) == forced || rng.chance(shape.density) {
                    let pt = PinId::new(format!("X{point}")).expect("valid");
                    point += 1;
                    stand = stand.with_connection(pt, id.clone(), pin.clone());
                }
            }
        }
    }
    stand
}

/// Builds the stand for the multi-block workload of
/// [`gen_workbook_text_prefixed`](crate::suites::gen_workbook_text_prefixed)
/// and [`block_device`](crate::dut::block_device): per block prefix, each
/// input pin `{prefix}P{i}` gets its own decade resistor
/// (`{prefix}Dec{i}`, 0..1 MΩ) and the output pair
/// `{prefix}OUT_F`/`{prefix}OUT_R` its own DVM (`{prefix}Dvm`, ±60 V).
/// Resources and crosspoints are disjoint per block, so a block's cells
/// plan through — and footprint-key on — only that block's slice of the
/// stand.
pub fn block_stand(prefixes: &[&str], signals: usize) -> TestStand {
    // The name is deliberately independent of the block/pin counts: the
    // resolved plans embed the stand name, so keeping it fixed lets
    // footprint tests grow or shrink the stand and observe that only the
    // *resource* changes move (or hold) a cell's key.
    let mut stand = TestStand::new("blocks", Env::with_ubatt(12.0));
    let put_r = MethodName::new("put_r").expect("valid");
    let get_u = MethodName::new("get_u").expect("valid");
    let mut point = 0usize;
    let crosspoint = |n: &mut usize| {
        let pt = PinId::new(format!("X{n}")).expect("valid");
        *n += 1;
        pt
    };
    for prefix in prefixes {
        for i in 0..signals {
            let dec = ResourceId::new(format!("{prefix}Dec{i}")).expect("valid");
            stand = stand
                .with_resource(Resource::new(dec.clone()).with_capability(Capability::new(
                    put_r.clone(),
                    "r",
                    0.0,
                    1e6,
                    Unit::Ohm,
                )))
                .with_connection(
                    crosspoint(&mut point),
                    dec,
                    PinId::new(format!("{prefix}P{i}")).expect("valid"),
                );
        }
        let dvm = ResourceId::new(format!("{prefix}Dvm")).expect("valid");
        stand = stand
            .with_resource(Resource::new(dvm.clone()).with_capability(Capability::new(
                get_u.clone(),
                "u",
                -60.0,
                60.0,
                Unit::Volt,
            )))
            .with_connection(
                crosspoint(&mut point),
                dvm.clone(),
                PinId::new(format!("{prefix}OUT_F")).expect("valid"),
            )
            .with_connection(
                crosspoint(&mut point),
                dvm,
                PinId::new(format!("{prefix}OUT_R")).expect("valid"),
            );
    }
    stand
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_stand_routes_each_block_disjointly() {
        let stand = block_stand(&["e0_", "e1_"], 3);
        // 2 blocks × (3 decades + 1 DVM).
        assert_eq!(stand.resources().len(), 8);
        for prefix in ["e0_", "e1_"] {
            for i in 0..3 {
                let pin = PinId::new(format!("{prefix}P{i}")).unwrap();
                let resources = stand.matrix().resources_for_pin(&pin);
                assert_eq!(resources.len(), 1, "one dedicated decade per pin");
            }
        }
    }

    #[test]
    fn generated_stand_has_guaranteed_coverage() {
        let mut rng = SplitMix64::new(1);
        let shape = StandShape {
            pins: 12,
            put_resources: 3,
            get_resources: 2,
            density: 0.0, // only the forced crosspoints
        };
        let stand = gen_stand(&mut rng, &shape);
        assert_eq!(stand.resources().len(), 5);
        for p in 0..shape.pins {
            let pin = PinId::new(pin_name(p)).unwrap();
            let resources = stand.matrix().resources_for_pin(&pin);
            assert!(
                resources.len() >= 2,
                "pin {pin} must reach a decade and a DVM, got {resources:?}"
            );
        }
    }

    #[test]
    fn density_adds_crosspoints() {
        let mut rng = SplitMix64::new(2);
        let sparse = gen_stand(
            &mut rng,
            &StandShape {
                density: 0.0,
                ..Default::default()
            },
        );
        let mut rng = SplitMix64::new(2);
        let dense = gen_stand(
            &mut rng,
            &StandShape {
                density: 1.0,
                ..Default::default()
            },
        );
        assert!(dense.matrix().len() > sparse.matrix().len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_stand(&mut SplitMix64::new(3), &StandShape::default());
        let b = gen_stand(&mut SplitMix64::new(3), &StandShape::default());
        assert_eq!(a.matrix().len(), b.matrix().len());
        assert_eq!(a.name(), b.name());
    }
}
