//! Deterministic synthetic workloads for benches and stress tests.
//!
//! The paper has no quantitative tables, so the reproduction characterises
//! the algorithms with scaling sweeps; these generators produce the inputs.
//! Everything is seeded ([`SplitMix64`]) — identical seeds give identical
//! workloads on every platform, keeping bench runs comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dut;
pub mod rng;
pub mod stands;
pub mod suites;

pub use dut::{block_device, BlockEcu, BlockSpec};
pub use rng::SplitMix64;
pub use stands::{block_stand, gen_stand, StandShape};
pub use suites::{
    gen_script, gen_workbook_text, gen_workbook_text_prefixed, ScriptShape, WorkbookShape,
};
