//! A small deterministic PRNG (SplitMix64).
//!
//! Not cryptographic; chosen for reproducible cross-platform workload
//! generation without external dependencies.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`0` for `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift range reduction; bias is irrelevant for workloads.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `usize` index in `0..len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A uniform float in `0.0..1.0`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform float in `lo..hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// A bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value for seed 0 from the SplitMix64 definition.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.range_f64(5.0, 6.0);
            assert!((5.0..6.0).contains(&g));
            assert!(r.index(3) < 3);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(99);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
