//! A synthetic composite DUT: many independent ECU "blocks" behind one
//! device, with per-block [`port_slice`](comptest_dut::Behavior::port_slice)
//! implementations.
//!
//! This is the workload the footprint-keyed cache is built for: a vehicle
//! model aggregating every ECU into one simulated device, where each
//! suite's tests exercise exactly one block. Under *full* keying the whole
//! device configuration is part of every cell's key, so editing one
//! block's config (a fault set, a firmware revision) invalidates every
//! cell; under *footprint* keying only the cells whose plans touch the
//! edited block's ports re-execute.
//!
//! Blocks are deliberately inert (outputs constantly low, an optional
//! internal activity tick to make execution expensive): the interesting
//! part is their *configuration identity*, not their dynamics.

use comptest_dut::{Behavior, Device, ElectricalConfig, PinBinding, PortValue};
use comptest_model::SimTime;

/// One independent block of a [`BlockEcu`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSpec {
    /// Name prefix for the block's pins: the device binds
    /// `{prefix}OUT_F` / `{prefix}OUT_R` (matching the workbooks of
    /// [`gen_workbook_text_prefixed`](crate::suites::gen_workbook_text_prefixed)
    /// and the stand of [`block_stand`](crate::stands::block_stand)).
    pub prefix: String,
    /// The block's behaviour output port. Pin bindings require `'static`
    /// port names — leak each name **once** per program (not per device
    /// build) and reuse the spec across builds.
    pub out_port: &'static str,
    /// The block's behavioural configuration (fault set, firmware
    /// revision, calibration, …). Rendered into the block's
    /// `port_slice`, so editing it moves exactly the footprint keys of
    /// the cells that touch this block.
    pub config: String,
}

/// A composite behaviour made of independent [`BlockSpec`] blocks.
///
/// Every output reads constantly low (generated workbooks check `Dark`),
/// and an optional activity tick schedules dense internal events so that
/// cold execution dominates a campaign run — the asymmetry a cache
/// exploits. `port_slice` maps each block's output port to that block's
/// `prefix` + `config` only, so the footprint-keyed cache can tell
/// which cells an edit actually touches.
#[derive(Debug)]
pub struct BlockEcu {
    blocks: Vec<BlockSpec>,
    outputs: Vec<&'static str>,
    /// Internal activity period; `None` = no internal events.
    tick: Option<SimTime>,
    next: Option<SimTime>,
}

impl BlockEcu {
    /// Builds the composite behaviour. `tick` schedules an internal event
    /// every period (pass `None` for an event-free model).
    pub fn new(blocks: Vec<BlockSpec>, tick: Option<SimTime>) -> Self {
        let outputs = blocks.iter().map(|b| b.out_port).collect();
        Self {
            blocks,
            outputs,
            tick,
            next: tick,
        }
    }
}

impl Behavior for BlockEcu {
    fn name(&self) -> &str {
        "vehicle"
    }

    fn inputs(&self) -> &[&'static str] {
        &[]
    }

    fn outputs(&self) -> &[&'static str] {
        &self.outputs
    }

    fn reset(&mut self, now: SimTime) {
        self.next = self.tick.map(|t| now.saturating_add(t));
    }

    fn set_input(&mut self, _port: &str, _value: PortValue, _now: SimTime) {}

    fn advance(&mut self, now: SimTime) {
        if let (Some(tick), Some(next)) = (self.tick, &mut self.next) {
            while *next <= now {
                *next = next.saturating_add(tick);
            }
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        self.next
    }

    fn output(&self, _port: &str) -> PortValue {
        PortValue::Bool(false)
    }

    fn port_slice(&self, port: &str) -> Option<String> {
        self.blocks
            .iter()
            .find(|b| b.out_port == port)
            .map(|b| format!("{}={}", b.prefix, b.config))
    }
}

/// Builds the composite device for `blocks`: per block, the pins
/// `{prefix}OUT_F` (output) and `{prefix}OUT_R` (return) are bound; input
/// pins carry stand-side stimulus only and need no binding.
pub fn block_device(blocks: &[BlockSpec], cfg: ElectricalConfig, tick: Option<SimTime>) -> Device {
    let mut builder = Device::builder(Box::new(BlockEcu::new(blocks.to_vec(), tick))).config(cfg);
    for block in blocks {
        builder = builder
            .pin(
                &format!("{}OUT_F", block.prefix),
                PinBinding::Output {
                    port: block.out_port,
                },
            )
            .pin(&format!("{}OUT_R", block.prefix), PinBinding::Return);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(configs: [&str; 2]) -> Vec<BlockSpec> {
        vec![
            BlockSpec {
                prefix: "e0_".into(),
                out_port: "e0_out",
                config: configs[0].into(),
            },
            BlockSpec {
                prefix: "e1_".into(),
                out_port: "e1_out",
                config: configs[1].into(),
            },
        ]
    }

    #[test]
    fn port_slices_cover_exactly_their_block() {
        let device = block_device(&specs(["a", "b"]), ElectricalConfig::default(), None);
        assert_eq!(device.port_slice("e0_out").unwrap(), "e0_=a");
        assert_eq!(device.port_slice("e1_out").unwrap(), "e1_=b");
        assert_eq!(device.port_slice("nonexistent"), None);

        // Editing block 1 leaves block 0's slice untouched — the property
        // footprint keying hinges on.
        let edited = block_device(&specs(["a", "b2"]), ElectricalConfig::default(), None);
        assert_eq!(device.port_slice("e0_out"), edited.port_slice("e0_out"));
        assert_ne!(device.port_slice("e1_out"), edited.port_slice("e1_out"));
    }

    #[test]
    fn activity_tick_schedules_events() {
        let tick = SimTime::from_micros(50);
        let mut ecu = BlockEcu::new(specs(["a", "b"]), Some(tick));
        ecu.reset(SimTime::ZERO);
        let first = ecu.next_event().expect("tick scheduled");
        assert_eq!(first, tick);
        ecu.advance(first);
        assert!(ecu.next_event().unwrap() > first);

        let mut quiet = BlockEcu::new(specs(["a", "b"]), None);
        quiet.reset(SimTime::ZERO);
        assert_eq!(quiet.next_event(), None);
    }
}
