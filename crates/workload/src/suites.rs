//! Synthetic scripts and workbooks.

use comptest_model::{SignalDef, SignalDirection, SignalKind, SignalName, SimTime};
use comptest_script::{AttrValue, ScriptStep, Statement, TestScript};

use crate::rng::SplitMix64;
use crate::stands::pin_name;

/// Parameters for [`gen_script`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptShape {
    /// Number of input signals (bound to pins `P0`, `P1`, …).
    pub signals: usize,
    /// Number of steps.
    pub steps: usize,
    /// Stimulus statements per step.
    pub puts_per_step: usize,
    /// Maximum number of signals stimulated at the same time — keep at or
    /// below the stand's put-resource count for feasible workloads.
    pub concurrency: usize,
}

impl Default for ScriptShape {
    fn default() -> Self {
        Self {
            signals: 16,
            steps: 50,
            puts_per_step: 2,
            concurrency: 4,
        }
    }
}

/// The signal name bound to generated pin `i`.
pub fn signal_name(i: usize) -> SignalName {
    SignalName::new(format!("s{i}")).expect("valid")
}

/// Generates a `put_r`-heavy script against the pins of
/// [`gen_stand`](crate::stands::gen_stand).
///
/// Stimuli persist across steps, so the generator tracks an *active set* of
/// at most `concurrency` signals holding finite resistances.  Each step
/// retires a signal now and then (an explicit open-circuit statement that
/// the allocator serves with its Park pseudo-resource), admits a fresh one,
/// and reassigns `puts_per_step` values within the set — the persist /
/// release / reroute access pattern the incremental allocator is built for.
/// With `concurrency ≤` the stand's put-resource count and a dense matrix,
/// the workload is always feasible.
pub fn gen_script(rng: &mut SplitMix64, shape: &ScriptShape) -> TestScript {
    let signals: Vec<SignalDef> = (0..shape.signals)
        .map(|i| {
            SignalDef::new(
                signal_name(i),
                SignalKind::Pin {
                    pins: vec![comptest_model::PinId::new(pin_name(i)).expect("valid")],
                },
                SignalDirection::Input,
            )
        })
        .collect();

    let put_r = comptest_model::MethodName::new("put_r").expect("valid");
    let finite_put = |rng: &mut SplitMix64, idx: usize| {
        let nominal = rng.range_f64(0.0, 1e5);
        let lo = (nominal * 0.9).max(0.0);
        let hi = nominal * 1.1 + 1.0;
        Statement::new(signal_name(idx), put_r.clone())
            .with_attr("r", AttrValue::Expr(comptest_model::Expr::num(nominal)))
            .with_attr("r_min", AttrValue::Expr(comptest_model::Expr::num(lo)))
            .with_attr("r_max", AttrValue::Expr(comptest_model::Expr::num(hi)))
    };
    let release_put = |idx: usize| {
        Statement::new(signal_name(idx), put_r.clone())
            .with_attr(
                "r",
                AttrValue::Expr(comptest_model::Expr::num(f64::INFINITY)),
            )
            .with_attr("r_min", AttrValue::Expr(comptest_model::Expr::num(0.0)))
            .with_attr(
                "r_max",
                AttrValue::Expr(comptest_model::Expr::num(f64::INFINITY)),
            )
    };

    let concurrency = shape.concurrency.max(1).min(shape.signals.max(1));
    let mut active: Vec<usize> = Vec::new();
    let mut next_fresh = 0usize;
    let mut steps = Vec::new();
    for nr in 0..shape.steps {
        let mut statements = Vec::new();
        // Occasionally retire the oldest active signal back to open circuit.
        if !active.is_empty() && (active.len() == concurrency || rng.chance(0.3)) {
            let retired = active.remove(0);
            statements.push(release_put(retired));
        }
        // Admit a fresh signal while capacity remains.
        if active.len() < concurrency {
            let idx = next_fresh % shape.signals.max(1);
            next_fresh += 1;
            if !active.contains(&idx) {
                active.push(idx);
                statements.push(finite_put(rng, idx));
            }
        }
        // Reassign values within the active set.
        for _ in 0..shape.puts_per_step.saturating_sub(statements.len()) {
            if active.is_empty() {
                break;
            }
            let idx = active[rng.index(active.len())];
            statements.push(finite_put(rng, idx));
        }
        steps.push(ScriptStep {
            nr: nr as u32,
            dt: SimTime::from_millis(100),
            statements,
        });
    }

    TestScript {
        name: format!("synth_{}x{}", shape.signals, shape.steps),
        suite: "synthetic".into(),
        signals,
        init: Vec::new(),
        steps,
    }
}

/// Parameters for [`gen_workbook_text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkbookShape {
    /// Number of input signals.
    pub signals: usize,
    /// Number of test sections.
    pub tests: usize,
    /// Steps per test.
    pub steps: usize,
}

impl Default for WorkbookShape {
    fn default() -> Self {
        Self {
            signals: 8,
            tests: 4,
            steps: 20,
        }
    }
}

/// Generates `.cts` workbook text (for parser / codegen throughput benches).
/// The workbook always validates: statuses `On`/`Off2` on every input, a
/// `Lit`/`Dark` check column on the output signal.
pub fn gen_workbook_text(rng: &mut SplitMix64, shape: &WorkbookShape) -> String {
    gen_workbook_text_prefixed(rng, shape, "")
}

/// [`gen_workbook_text`] with every signal and pin name carrying `prefix`
/// (`{prefix}IN0` on `pin:{prefix}P0`, output `{prefix}OUT0` on
/// `pin:{prefix}OUT_F/{prefix}OUT_R`), so many generated suites can
/// coexist on one stand with disjoint pin sets — the multi-block workload
/// of [`block_device`](crate::dut::block_device) and
/// [`block_stand`](crate::stands::block_stand). An empty prefix yields
/// exactly the classic un-prefixed workbook.
pub fn gen_workbook_text_prefixed(
    rng: &mut SplitMix64,
    shape: &WorkbookShape,
    prefix: &str,
) -> String {
    let suite_name = if prefix.is_empty() {
        "synthetic".to_owned()
    } else {
        format!("synthetic_{}", prefix.trim_end_matches('_'))
    };
    let mut out =
        format!("[suite]\nname = {suite_name}\n\n[signals]\nname, kind, direction, init\n");
    for i in 0..shape.signals {
        out.push_str(&format!("{prefix}IN{i}, pin:{prefix}P{i}, input, Off2\n"));
    }
    out.push_str(&format!(
        "{prefix}OUT0, pin:{prefix}OUT_F/{prefix}OUT_R, output,\n"
    ));
    out.push_str(
        "\n[status]\nstatus, method, attribut, var, nom, min, max\n\
         On,   put_r, r, ,      0,   0,    2\n\
         Off2, put_r, r, ,      INF, 5000, INF\n\
         Lit,  get_u, u, UBATT, 1,   0.7,  1.1\n\
         Dark, get_u, u, UBATT, 0,   0,    0.3\n",
    );
    for t in 0..shape.tests {
        out.push_str(&format!("\n[test case_{t}]\nstep, dt, "));
        for i in 0..shape.signals {
            out.push_str(&format!("{prefix}IN{i}, "));
        }
        out.push_str(&format!("{prefix}OUT0, remarks\n"));
        for s in 0..shape.steps {
            out.push_str(&format!("{s}, 0.1, "));
            for _ in 0..shape.signals {
                let cell = match rng.index(4) {
                    0 => "On",
                    1 => "Off2",
                    _ => "",
                };
                out.push_str(&format!("{cell}, "));
            }
            // Step 0 always checks the output, so every generated test
            // genuinely touches its output pin (the footprint workloads
            // rely on each cell exercising its own block).
            out.push_str(if s == 0 || rng.chance(0.5) {
                "Dark"
            } else {
                ""
            });
            out.push_str(&format!(", REQ-SYN-{:03}\n", rng.index(50)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_model::MethodRegistry;

    #[test]
    fn generated_script_is_well_formed() {
        let mut rng = SplitMix64::new(5);
        let script = gen_script(&mut rng, &ScriptShape::default());
        assert_eq!(script.steps.len(), 50);
        assert_eq!(script.signals.len(), 16);
        // Roundtrips through XML.
        let xml = script.to_xml();
        let back = comptest_script::TestScript::parse_xml(&xml).unwrap();
        assert_eq!(back, script);
    }

    #[test]
    fn prefixed_workbook_parses_and_empty_prefix_is_the_classic_text() {
        let shape = WorkbookShape {
            signals: 3,
            tests: 2,
            steps: 2,
        };
        // Same seed, same shape: the prefixed generator with "" must emit
        // byte-identical text (hash-stable workloads depend on it).
        let classic = gen_workbook_text(&mut SplitMix64::new(9), &shape);
        let empty = gen_workbook_text_prefixed(&mut SplitMix64::new(9), &shape, "");
        assert_eq!(classic, empty);

        let text = gen_workbook_text_prefixed(&mut SplitMix64::new(9), &shape, "e3_");
        let parsed = comptest_sheets::Workbook::parse_str("e3.cts", &text)
            .unwrap_or_else(|e| panic!("prefixed workbook must parse: {e}\n{text}"));
        let issues = parsed.suite.validate(&MethodRegistry::builtin());
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(parsed.suite.name, "synthetic_e3");
        assert!(parsed
            .suite
            .signals
            .iter()
            .all(|s| s.name.key().starts_with("e3_")));
    }

    #[test]
    fn generated_workbook_parses_and_validates() {
        let mut rng = SplitMix64::new(6);
        let text = gen_workbook_text(&mut rng, &WorkbookShape::default());
        let parsed = comptest_sheets::Workbook::parse_str("synthetic.cts", &text)
            .unwrap_or_else(|e| panic!("generated workbook must parse: {e}\n{text}"));
        let issues = parsed.suite.validate(&MethodRegistry::builtin());
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(parsed.suite.tests.len(), 4);
        assert_eq!(parsed.suite.signals.len(), 9);
    }

    #[test]
    fn script_windows_slide() {
        let mut rng = SplitMix64::new(7);
        let shape = ScriptShape {
            signals: 8,
            steps: 16,
            puts_per_step: 1,
            concurrency: 2,
        };
        let script = gen_script(&mut rng, &shape);
        // Across the run, more than `concurrency` distinct signals appear.
        let mut used = std::collections::BTreeSet::new();
        for step in &script.steps {
            for stmt in &step.statements {
                used.insert(stmt.signal.key());
            }
        }
        assert!(
            used.len() > 2,
            "sliding window touched {} signals",
            used.len()
        );
    }
}
