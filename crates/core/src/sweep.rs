//! Parameter sweeps: run a suite repeatedly while varying one stand
//! environment variable, and find the operating window in which the DUT
//! passes.
//!
//! This is the quantitative face of the paper's `var (x)` column: because
//! every limit scales with the stand's variables, sweeping a variable
//! against a *fixed* DUT maps out exactly how much supply mismatch the
//! component tolerates before the sheets call it broken.

use std::fmt;

use comptest_dut::Device;
use comptest_model::TestSuite;
use comptest_stand::TestStand;

use crate::error::CoreError;
use crate::exec::ExecOptions;
use crate::pipeline::run_suite;
use crate::verdict::{SuiteResult, Verdict};

/// One sweep point: the variable's value and the suite outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept variable's value at this point.
    pub value: f64,
    /// The suite result (or the planning error message).
    pub outcome: Result<SuiteResult, String>,
}

impl SweepPoint {
    /// True if the whole suite passed at this point.
    pub fn passed(&self) -> bool {
        matches!(&self.outcome, Ok(r) if r.verdict() == Verdict::Pass)
    }
}

/// The result of [`sweep_variable`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The swept environment variable (lowercased).
    pub variable: String,
    /// Points in the order given.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The values at which the suite passed.
    pub fn passing_values(&self) -> Vec<f64> {
        self.points
            .iter()
            .filter(|p| p.passed())
            .map(|p| p.value)
            .collect()
    }

    /// The contiguous `[min, max]` hull of passing values, if any passed.
    /// (Callers sweeping a monotone parameter read this as the operating
    /// window.)
    pub fn passing_window(&self) -> Option<(f64, f64)> {
        let passing = self.passing_values();
        let lo = passing.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = passing.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if passing.is_empty() {
            None
        } else {
            Some((lo, hi))
        }
    }
}

impl fmt::Display for SweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sweep of {}:", self.variable)?;
        for p in &self.points {
            let status = match &p.outcome {
                Ok(r) => {
                    let (pass, fail, err) = r.counts();
                    format!("{} ({pass}P/{fail}F/{err}E)", r.verdict())
                }
                Err(e) => format!("NOT RUNNABLE ({e})"),
            };
            writeln!(
                f,
                "  {} = {:<8} {status}",
                self.variable,
                comptest_model::value::display_number(p.value)
            )?;
        }
        Ok(())
    }
}

/// Runs `suite` once per value of `variable`, with the stand's environment
/// updated each time. `device_factory` receives the current value so the
/// DUT can either track the rail (matched sweep) or ignore it (mismatch
/// sweep).
///
/// Planning failures at individual points are recorded as data; generation
/// errors (an invalid suite) abort the sweep.
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] for invalid suites.
pub fn sweep_variable(
    suite: &TestSuite,
    stand: &TestStand,
    variable: &str,
    values: &[f64],
    mut device_factory: impl FnMut(f64) -> Device,
    options: &ExecOptions,
) -> Result<SweepResult, CoreError> {
    // Surface suite problems once, up front.
    comptest_script::generate_all(suite)?;

    let mut points = Vec::new();
    for &value in values {
        let mut stand = stand.clone();
        stand.env_mut().set(variable, value);
        let outcome = match run_suite(suite, &stand, || device_factory(value), options) {
            Ok(r) => Ok(r),
            Err(CoreError::Stand(e)) => Err(e.to_string()),
            Err(other) => return Err(other),
        };
        points.push(SweepPoint { value, outcome });
    }
    Ok(SweepResult {
        variable: variable.to_ascii_lowercase(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_dut::ecus::interior_light;
    use comptest_dut::ElectricalConfig;
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho
1,    0.5, Closed,,      Lo
";

    fn suite() -> TestSuite {
        Workbook::parse_str("wb.cts", WB).unwrap().suite
    }

    fn stand() -> TestStand {
        TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap()
    }

    #[test]
    fn matched_sweep_passes_everywhere() {
        // DUT supply tracks the stand's declared rail: every point passes.
        let result = sweep_variable(
            &suite(),
            &stand(),
            "ubatt",
            &[9.0, 10.8, 12.0, 13.8, 14.4, 16.0],
            |u| {
                interior_light::device(ElectricalConfig {
                    ubatt: u,
                    ..Default::default()
                })
            },
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(result.passing_values().len(), 6, "{result}");
        assert_eq!(result.passing_window(), Some((9.0, 16.0)));
    }

    #[test]
    fn mismatch_sweep_finds_the_operating_window() {
        // A fixed 12 V DUT against stands declaring different rails. The Ho
        // status (0.7..1.1 × ubatt) bounds the window analytically:
        // 12/1.1 ≈ 10.9 ≤ ubatt ≤ 12/0.7 ≈ 17.1.
        let result = sweep_variable(
            &suite(),
            &stand(),
            "ubatt",
            &[8.0, 10.0, 11.0, 12.0, 14.0, 17.0, 18.0, 20.0],
            |_| interior_light::device(ElectricalConfig::default()),
            &ExecOptions::default(),
        )
        .unwrap();
        let window = result.passing_window().expect("some points pass");
        assert_eq!(window, (11.0, 17.0), "{result}");
        assert!(!result.points[0].passed(), "8 V stand rejects a 12 V DUT");
        assert!(!result.points.last().unwrap().passed());
        let text = result.to_string();
        assert!(text.contains("ubatt = 12"));
        assert!(text.contains("FAIL") || text.contains("1F"));
    }

    #[test]
    fn no_passing_points_yields_no_window() {
        let result = sweep_variable(
            &suite(),
            &stand(),
            "ubatt",
            &[40.0, 50.0],
            |_| interior_light::device(ElectricalConfig::default()),
            &ExecOptions::default(),
        )
        .unwrap();
        assert!(result.passing_window().is_none());
    }

    #[test]
    fn invalid_suite_aborts() {
        let mut bad = suite();
        bad.tests[0].steps.push(
            comptest_model::TestStep::new(9, comptest_model::SimTime::from_secs(1)).assign(
                comptest_model::SignalName::new("GHOST").unwrap(),
                comptest_model::StatusName::new("Open").unwrap(),
            ),
        );
        let err = sweep_variable(
            &bad,
            &stand(),
            "ubatt",
            &[12.0],
            |_| interior_light::device(Default::default()),
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Codegen(_)));
    }
}
