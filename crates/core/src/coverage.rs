//! Requirement-tag coverage.
//!
//! Remarks in test sheets double as requirement links (`REQ-IL-001 …`); a
//! suite covers a requirement when a tagged test exists, and *verifies* it
//! when that test passes.

use std::collections::BTreeMap;
use std::fmt;

use comptest_model::TestSuite;

use crate::verdict::{SuiteResult, Verdict};

/// Requirement → tests mapping with pass/fail status.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequirementCoverage {
    /// tag → (test name, passed) pairs.
    pub map: BTreeMap<String, Vec<(String, Option<Verdict>)>>,
}

impl RequirementCoverage {
    /// Builds the static mapping (no verdicts) from a suite.
    pub fn from_suite(suite: &TestSuite) -> Self {
        let mut map: BTreeMap<String, Vec<(String, Option<Verdict>)>> = BTreeMap::new();
        for test in &suite.tests {
            for tag in test.requirement_tags() {
                map.entry(tag).or_default().push((test.name.clone(), None));
            }
        }
        Self { map }
    }

    /// Annotates the mapping with execution verdicts.
    pub fn with_results(mut self, results: &SuiteResult) -> Self {
        for entries in self.map.values_mut() {
            for (test, verdict) in entries.iter_mut() {
                if let Some(r) = results.results.iter().find(|r| &r.test == test) {
                    *verdict = Some(r.verdict());
                }
            }
        }
        self
    }

    /// Number of distinct requirements referenced.
    pub fn requirement_count(&self) -> usize {
        self.map.len()
    }

    /// Requirements whose every tagged test passed (ignoring unexecuted).
    pub fn verified(&self) -> Vec<&str> {
        self.map
            .iter()
            .filter(|(_, tests)| {
                !tests.is_empty() && tests.iter().all(|(_, v)| matches!(v, Some(Verdict::Pass)))
            })
            .map(|(tag, _)| tag.as_str())
            .collect()
    }
}

impl fmt::Display for RequirementCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (tag, tests) in &self.map {
            write!(f, "{tag}:")?;
            for (test, verdict) in tests {
                match verdict {
                    Some(v) => write!(f, " {test}={v}")?,
                    None => write!(f, " {test}")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_dut::ecus::interior_light;
    use comptest_sheets::Workbook;
    use comptest_stand::TestStand;

    const WB: &str = "\
[suite]
name = demo

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test day]
step, dt,  DS_FL, NIGHT, INT_ILL, remarks
0,    0.5, Open,  0,     Lo,      REQ-IL-001 no day light

[test night]
step, dt,  DS_FL, NIGHT, INT_ILL, remarks
0,    0.5, Open,  1,     Ho,      REQ-IL-002 night light REQ-IL-003
";

    #[test]
    fn static_mapping() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let cov = RequirementCoverage::from_suite(&wb.suite);
        assert_eq!(cov.requirement_count(), 3);
        assert!(cov.map.contains_key("REQ-IL-001"));
        assert!(cov.map.contains_key("REQ-IL-003"));
        assert!(cov.verified().is_empty(), "nothing executed yet");
    }

    #[test]
    fn with_execution_results() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let stand = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let results = crate::run_suite(
            &wb.suite,
            &stand,
            || interior_light::device(Default::default()),
            &crate::ExecOptions::default(),
        )
        .unwrap();
        let cov = RequirementCoverage::from_suite(&wb.suite).with_results(&results);
        assert_eq!(cov.verified().len(), 3);
        let text = cov.to_string();
        assert!(text.contains("REQ-IL-002: night=PASS"));
    }
}
