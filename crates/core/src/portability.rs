//! Cross-stand portability: which suites run on which stands.
//!
//! Planning alone (no execution) answers the paper's central question: a
//! test defined once runs anywhere a stand offers appropriate, connectable
//! resources — and where it does not, the interpreter's error message says
//! exactly what is missing.

use std::fmt;

use comptest_model::TestSuite;
use comptest_script::generate_all;
use comptest_stand::{plan, TestStand};

use crate::error::CoreError;

/// One (test, stand) portability outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PortabilityRow {
    /// Test name.
    pub test: String,
    /// Stand name.
    pub stand: String,
    /// True if planning succeeded.
    pub ok: bool,
    /// The stand's error message when it did not.
    pub error: Option<String>,
}

/// The full test × stand matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PortabilityReport {
    /// All rows, tests major, stands minor.
    pub rows: Vec<PortabilityRow>,
}

impl PortabilityReport {
    /// Fraction of (test, stand) pairs that plan successfully.
    pub fn portability(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        self.rows.iter().filter(|r| r.ok).count() as f64 / self.rows.len() as f64
    }

    /// Rows for one stand.
    pub fn for_stand<'a>(&'a self, stand: &'a str) -> impl Iterator<Item = &'a PortabilityRow> {
        self.rows.iter().filter(move |r| r.stand == stand)
    }

    /// True if every test plans on every stand.
    pub fn fully_portable(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }
}

impl fmt::Display for PortabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            write!(
                f,
                "{:<28} on {:<12} {}",
                row.test,
                row.stand,
                if row.ok { "ok" } else { "NOT RUNNABLE" }
            )?;
            if let Some(e) = &row.error {
                write!(f, "\n    {}", e.replace('\n', "\n    "))?;
            }
            writeln!(f)?;
        }
        writeln!(f, "portability: {:.0}%", self.portability() * 100.0)
    }
}

/// Plans every generated script of `suite` on every stand.
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] if the suite itself is invalid; per-stand
/// planning failures are *data* (rows with `ok = false`), not errors.
pub fn check_portability(
    suite: &TestSuite,
    stands: &[&TestStand],
) -> Result<PortabilityReport, CoreError> {
    let scripts = generate_all(suite)?;
    let mut report = PortabilityReport::default();
    for script in &scripts {
        for stand in stands {
            match plan(script, stand) {
                Ok(_) => report.rows.push(PortabilityRow {
                    test: script.name.clone(),
                    stand: stand.name().to_owned(),
                    ok: true,
                    error: None,
                }),
                Err(e) => report.rows.push(PortabilityRow {
                    test: script.name.clone(),
                    stand: stand.name().to_owned(),
                    ok: false,
                    error: Some(e.to_string()),
                }),
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = demo

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test one]
step, dt,  DS_FL, INT_ILL
0,    0.5, Open,  Ho
";

    /// A stand with no voltmeter: the get_u statement cannot be served.
    const STAND_NO_DVM: &str = "\
[stand]
name = bare
ubatt = 12.0

[resources]
id,    method, attribut, min, max,  unit
Dec1,  put_r,  r,        0,   1E6,  Ohm

[matrix]
point, resource, pin
P1,    Dec1,     DS_FL
";

    #[test]
    fn matrix_reports_per_stand() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let full = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let bare = TestStand::parse_str("bare.stand", STAND_NO_DVM).unwrap();
        let report = check_portability(&wb.suite, &[&full, &bare]).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows[0].ok, "full stand runs the test");
        assert!(!report.rows[1].ok, "bare stand cannot");
        assert!(!report.fully_portable());
        assert!((report.portability() - 0.5).abs() < 1e-9);
        let err = report.rows[1].error.as_ref().unwrap();
        assert!(err.contains("no resource for get_u"), "{err}");
        assert_eq!(report.for_stand("bare").count(), 1);
        let text = report.to_string();
        assert!(text.contains("NOT RUNNABLE"));
        assert!(text.contains("portability: 50%"));
    }
}
