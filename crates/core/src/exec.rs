//! Executing a planned script against a simulated DUT.
//!
//! Timing semantics (DESIGN.md): all stimuli of a step are applied atomically
//! at step start; the DUT then advances event-driven to step end; checks are
//! sampled **at step end** ([`SampleMode::EndOfStep`], the default).
//! [`SampleMode::Continuous`] additionally samples the whole step window —
//! the stricter ablation discussed in DESIGN.md §7 (it catches glitch/delay
//! faults that a single end-of-step sample misses, but rejects steps that
//! legitimately contain a transition, like the paper's step 8).
//!
//! Execution itself is a resumable state machine: [`TestRun`] advances one
//! planned step per [`TestRun::step`] call, which lets an event-loop
//! scheduler interleave thousands of runs on one thread; [`execute`] is the
//! drive-to-completion wrapper over it.

use std::borrow::{Borrow, BorrowMut};
use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use comptest_dut::{Device, PinDrive};
use comptest_model::{SignalKind, SimTime};
use comptest_stand::{Action, AppliedValue, ExecutionPlan, GetCheck};

use crate::trace::{Trace, TraceEvent};
use crate::verdict::{CheckResult, Measured, StepResult, TestResult, Verdict};

/// When expected-output checks are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// Sample each check once, at step end (paper semantics).
    EndOfStep,
    /// Sample at step start + settle, then every `interval`, then at step
    /// end; a check passes only if **every** sample is in bounds.
    Continuous {
        /// Sampling interval.
        interval: SimTime,
    },
}

/// Execution options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Sampling mode for checks.
    pub sample: SampleMode,
    /// Abort the test after the first non-passing step (long soak tests
    /// then stop spending bench time on a component already known bad).
    /// Aborted runs still report the steps executed so far.
    pub stop_on_failure: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            sample: SampleMode::EndOfStep,
            stop_on_failure: false,
        }
    }
}

impl SampleMode {
    /// The accepted `FromStr` spellings, for CLI error messages.
    pub const ACCEPTED: [&'static str; 2] = ["end-of-step", "continuous:<interval_s>"];
}

impl FromStr for SampleMode {
    type Err = String;

    /// Parses a sample-mode name, case-insensitively: `end-of-step` or
    /// `continuous:<interval_s>` (seconds, decimal comma or point — e.g.
    /// `continuous:0.1`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        if lower == "end-of-step" {
            return Ok(SampleMode::EndOfStep);
        }
        if let Some(rest) = lower.strip_prefix("continuous:") {
            let interval: SimTime = rest
                .parse()
                .map_err(|e| format!("bad continuous sampling interval {rest:?}: {e}"))?;
            if interval.is_zero() {
                return Err(format!(
                    "continuous sampling interval must be positive, got {rest:?}"
                ));
            }
            return Ok(SampleMode::Continuous { interval });
        }
        Err(format!(
            "unknown sample mode {s:?}: expected one of {} (e.g. continuous:0.1)",
            SampleMode::ACCEPTED.join(", ")
        ))
    }
}

/// Observer of per-step execution progress, attached with
/// [`TestRun::with_probe`].
///
/// A probe is pure telemetry: it sees each executed step *after* the step
/// completed and cannot influence the run — results stay byte-identical
/// with or without one. Wall-clock time reaches the probe only as a
/// duration argument; nothing wall-clock ever enters the [`TestResult`],
/// which is what keeps results hashable and cacheable.
pub trait StepProbe: std::fmt::Debug + Send + Sync {
    /// Called once per executed plan step: the step's `nr`, the simulated
    /// time the run advanced to, and the wall-clock time the step took.
    fn step_executed(&self, nr: u32, sim_end: SimTime, wall: Duration);
}

/// What one [`TestRun::step`] call left behind.
#[must_use = "a Finished state carries the test result"]
#[derive(Debug)]
pub enum RunState {
    /// The run has more planned steps; call [`TestRun::step`] again.
    Running,
    /// The run is complete. The result is handed out exactly once; calling
    /// [`TestRun::step`] again afterwards panics.
    Finished(TestResult),
}

/// One test execution as a **resumable state machine**: each
/// [`TestRun::step`] call advances exactly one planned step (stimuli →
/// event-driven DUT advance → end-of-step/continuous sampling), so a
/// scheduler can interleave thousands of runs on one thread. Driving a run
/// to completion yields byte-for-byte the [`execute`] result — `execute`
/// *is* the trivial drive-to-completion wrapper.
///
/// The plan and device parameters are generic over ownership
/// ([`Borrow`]/[`BorrowMut`]): `execute` borrows them
/// (`TestRun<&ExecutionPlan, &mut Device>`), while a long-lived scheduler
/// like `comptest-engine`'s `AsyncExecutor` moves owned values in
/// (`TestRun<ExecutionPlan, Device>`), which keeps the run `'static` and
/// `Send` without self-referential tricks.
///
/// Construction resets the device and applies the plan's init stimuli; an
/// init error latches an error-carrying result that the first `step` call
/// delivers as [`RunState::Finished`], exactly like `execute`.
///
/// # Example
///
/// ```
/// use comptest_core::{RunState, TestRun, ExecOptions, PAPER_STAND_A};
/// use comptest_dut::ecus::interior_light;
/// use comptest_script::TestScript;
/// use comptest_stand::{plan, TestStand};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let script = TestScript::parse_xml(r#"
/// <testscript name="t" suite="s" version="1">
///   <signals>
///     <signal name="ds_fl" kind="pin:DS_FL" direction="input"/>
///     <signal name="int_ill" kind="pin:INT_ILL_F/INT_ILL_R" direction="output"/>
///   </signals>
///   <step nr="0" dt="0.5">
///     <signal name="ds_fl"><put_r r="0" r_min="0" r_max="2"/></signal>
///     <signal name="int_ill"><get_u u_max="(0.3*ubatt)" u_min="0"/></signal>
///   </step>
/// </testscript>"#)?;
/// let stand = TestStand::parse_str("a.stand", PAPER_STAND_A)?;
/// let plan = plan(&script, &stand)?;
/// let mut dut = interior_light::device(Default::default());
/// let mut run = TestRun::new(&plan, &mut dut, &ExecOptions::default());
/// let result = loop {
///     match run.step() {
///         RunState::Running => continue,
///         RunState::Finished(result) => break result,
///     }
/// };
/// assert!(result.passed());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TestRun<P, D>
where
    P: Borrow<ExecutionPlan>,
    D: BorrowMut<Device>,
{
    plan: P,
    device: D,
    options: ExecOptions,
    /// Simulated time at the start of the next step.
    now: SimTime,
    /// Index of the next plan step to execute.
    next_step: usize,
    /// Reused scratch: indices of the current step's check actions. One
    /// buffer for the whole run instead of a fresh `Vec<&GetCheck>`
    /// allocation per step — the per-step re-collection used to sit on the
    /// execution hot path.
    checks_buf: Vec<usize>,
    /// The result under construction; taken when the run finishes.
    result: Option<TestResult>,
    /// Latched when the run ended before exhausting the plan (init error,
    /// step error, `stop_on_failure`).
    done: bool,
    /// Optional telemetry observer; `None` (the default) keeps the step
    /// path free of any timing calls.
    probe: Option<Arc<dyn StepProbe>>,
}

impl<P, D> TestRun<P, D>
where
    P: Borrow<ExecutionPlan>,
    D: BorrowMut<Device>,
{
    /// Prepares a run: resets the device to simulated time zero and applies
    /// the plan's init stimuli. An init error does not raise — it latches
    /// the error-carrying result (no steps executed) that the first
    /// [`TestRun::step`] call delivers.
    pub fn new(plan: P, mut device: D, options: &ExecOptions) -> Self {
        let now = SimTime::ZERO;
        let mut done = false;
        let mut result = {
            let plan = plan.borrow();
            let device = device.borrow_mut();
            let mut result = TestResult {
                test: plan.script_name.clone(),
                stand: plan.stand_name.clone(),
                dut: device.behavior_name().to_owned(),
                steps: Vec::new(),
                error: None,
                trace: Trace::new(),
            };
            device.reset(now);
            for action in &plan.init {
                if let Err(msg) = apply_action(device, action, now, &mut result.trace) {
                    result.error = Some(format!("init: {msg}"));
                    done = true;
                    break;
                }
            }
            result
        };
        result
            .steps
            .reserve(if done { 0 } else { plan.borrow().steps.len() });
        Self {
            plan,
            device,
            options: *options,
            now,
            next_step: 0,
            checks_buf: Vec::new(),
            result: Some(result),
            done,
            probe: None,
        }
    }

    /// Attaches a telemetry probe (builder style): every subsequent
    /// [`TestRun::step`] call reports the executed step's number, simulated
    /// end time and wall-clock duration to it. Observation only — the
    /// run's result is byte-identical with or without a probe.
    pub fn with_probe(mut self, probe: Arc<dyn StepProbe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Advances the run by exactly one planned step (or delivers the final
    /// result when none remain): all of the step's stimuli atomically at
    /// step start, the event-driven DUT advance, and the step's full
    /// sampling schedule. The call that completes the run returns
    /// [`RunState::Finished`]; a plan with no (remaining) steps — or a run
    /// whose init failed — finishes on the first call.
    ///
    /// # Panics
    ///
    /// Panics when called again after [`RunState::Finished`] was returned.
    pub fn step(&mut self) -> RunState {
        assert!(
            self.result.is_some(),
            "TestRun::step called after the run finished"
        );
        if !self.done && self.next_step < self.plan.borrow().steps.len() {
            if self.probe.is_none() {
                self.execute_next_step();
            } else {
                let nr = self.plan.borrow().steps[self.next_step].nr;
                let begin = Instant::now();
                self.execute_next_step();
                let wall = begin.elapsed();
                if let Some(probe) = &self.probe {
                    probe.step_executed(nr, self.now, wall);
                }
            }
        }
        if self.done || self.next_step >= self.plan.borrow().steps.len() {
            return RunState::Finished(self.result.take().expect("checked above"));
        }
        RunState::Running
    }

    /// True once the next [`TestRun::step`] call will return (or already
    /// returned) [`RunState::Finished`].
    pub fn is_finished(&self) -> bool {
        self.done || self.next_step >= self.plan.borrow().steps.len()
    }

    /// Simulated time the run has advanced to (the start of the next step).
    pub fn sim_now(&self) -> SimTime {
        self.now
    }

    /// Simulated time the next [`TestRun::step`] call will advance to: the
    /// end of the next planned step, or the current time when the run is
    /// finished. This is the sim-time wheel key an event-loop scheduler
    /// orders runs by.
    pub fn next_deadline(&self) -> SimTime {
        if self.done {
            return self.now;
        }
        match self.plan.borrow().steps.get(self.next_step) {
            Some(step) => self.now.saturating_add(step.dt),
            None => self.now,
        }
    }

    /// Executes plan step `self.next_step`. Caller guarantees it exists and
    /// the run is not done.
    fn execute_next_step(&mut self) {
        let Self {
            plan,
            device,
            options,
            now,
            next_step,
            checks_buf,
            result,
            done,
            probe: _,
        } = self;
        let plan: &ExecutionPlan = (*plan).borrow();
        let device: &mut Device = (*device).borrow_mut();
        let result = result.as_mut().expect("caller checked");
        let step = &plan.steps[*next_step];
        let t_start = *now;
        let t_end = now.saturating_add(step.dt);

        // Phase 1: all stimuli, atomically at step start.
        for action in &step.actions {
            if let Err(msg) = apply_action(device, action, t_start, &mut result.trace) {
                result.error = Some(format!("step {}: {msg}", step.nr));
                *done = true;
                return;
            }
        }

        // Phase 2: collect the checks (into the run's reused buffer) and
        // their sample schedules.
        checks_buf.clear();
        checks_buf.extend(
            step.actions
                .iter()
                .enumerate()
                .filter_map(|(i, a)| match a {
                    Action::Check(_) => Some(i),
                    Action::Apply { .. } => None,
                }),
        );
        let check_at = |i: usize| -> &GetCheck {
            match &step.actions[i] {
                Action::Check(c) => c,
                Action::Apply { .. } => unreachable!("checks_buf holds only check indices"),
            }
        };

        let mut step_result = StepResult {
            nr: step.nr,
            t_end,
            checks: Vec::new(),
        };

        match options.sample {
            SampleMode::EndOfStep => {
                device.advance_to(t_end);
                for &i in checks_buf.iter() {
                    step_result.checks.push(sample_check(
                        device,
                        check_at(i),
                        step.nr,
                        t_start,
                        t_end,
                        &mut result.trace,
                    ));
                }
            }
            SampleMode::Continuous { interval } => {
                let interval = if interval.is_zero() {
                    SimTime::from_millis(100)
                } else {
                    interval
                };
                // Worst result per check across all samples.
                let mut worst: Vec<Option<CheckResult>> = vec![None; checks_buf.len()];
                let max_settle = checks_buf
                    .iter()
                    .map(|&i| check_at(i).settle)
                    .max()
                    .unwrap_or(SimTime::ZERO);
                let mut t = t_start;
                let mut first = true;
                loop {
                    t = if first {
                        first = false;
                        // First sample: after the longest settle.
                        t_start.saturating_add(max_settle)
                    } else {
                        t.saturating_add(interval)
                    };
                    if t >= t_end {
                        t = t_end;
                    }
                    device.advance_to(t);
                    for (slot, &i) in checks_buf.iter().enumerate() {
                        let sampled = sample_check(
                            device,
                            check_at(i),
                            step.nr,
                            t_start,
                            t,
                            &mut result.trace,
                        );
                        let replace = match &worst[slot] {
                            None => true,
                            Some(prev) => sampled.verdict > prev.verdict,
                        };
                        if replace {
                            worst[slot] = Some(sampled);
                        }
                    }
                    if t == t_end {
                        break;
                    }
                }
                step_result.checks = worst.into_iter().flatten().collect();
            }
        }

        result.trace.push(TraceEvent::StepEnd {
            nr: step.nr,
            at: t_end,
        });
        let failed = step_result.verdict() != Verdict::Pass;
        result.steps.push(step_result);
        *now = t_end;
        *next_step += 1;
        if failed && options.stop_on_failure {
            *done = true;
        }
    }
}

/// Runs an execution plan against a device. Never panics on DUT behaviour;
/// execution-level problems (unsupported methods, absent CAN frames) yield
/// [`Verdict::Error`] checks or an error-carrying [`TestResult`].
///
/// # Example
///
/// ```
/// use comptest_core::{execute, ExecOptions, PAPER_STAND_A};
/// use comptest_dut::ecus::interior_light;
/// use comptest_script::TestScript;
/// use comptest_stand::{plan, TestStand};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let script = TestScript::parse_xml(r#"
/// <testscript name="t" suite="s" version="1">
///   <signals>
///     <signal name="ds_fl" kind="pin:DS_FL" direction="input"/>
///     <signal name="int_ill" kind="pin:INT_ILL_F/INT_ILL_R" direction="output"/>
///   </signals>
///   <step nr="0" dt="0.5">
///     <signal name="ds_fl"><put_r r="0" r_min="0" r_max="2"/></signal>
///     <signal name="int_ill"><get_u u_max="(0.3*ubatt)" u_min="0"/></signal>
///   </step>
/// </testscript>"#)?;
/// let stand = TestStand::parse_str("a.stand", PAPER_STAND_A)?;
/// let plan = plan(&script, &stand)?;
/// let mut dut = interior_light::device(Default::default());
/// let result = execute(&plan, &mut dut, &ExecOptions::default());
/// assert!(result.passed()); // day: lamp stays dark
/// # Ok(())
/// # }
/// ```
pub fn execute(plan: &ExecutionPlan, device: &mut Device, options: &ExecOptions) -> TestResult {
    let mut run = TestRun::new(plan, device, options);
    loop {
        if let RunState::Finished(result) = run.step() {
            return result;
        }
    }
}

/// Applies a single stimulus action. Checks are ignored here.
fn apply_action(
    device: &mut Device,
    action: &Action,
    at: SimTime,
    trace: &mut Trace,
) -> Result<(), String> {
    let Action::Apply {
        signal,
        kind,
        resource,
        method,
        value,
        ..
    } = action
    else {
        return Ok(());
    };
    match (kind, value) {
        (SignalKind::Pin { pins }, AppliedValue::Num(v)) => {
            let drive = match method.key().as_str() {
                "put_r" => PinDrive::ResistanceToGround(*v),
                "put_u" => PinDrive::Voltage(*v),
                other => {
                    return Err(format!(
                        "method {other} is not executable on this simulated stand"
                    ))
                }
            };
            // Stimuli drive the signal's first pin; a second pin, if any, is
            // the return line.
            let pin = pins
                .first()
                .ok_or_else(|| format!("signal {signal} has no pins"))?;
            device.apply_pin(pin, drive, at);
        }
        (
            SignalKind::Can {
                frame,
                start_bit,
                width,
            },
            AppliedValue::Bits(bits),
        ) => {
            device.write_can_field(*frame, *start_bit, *width, bits.bits(), at);
        }
        (
            SignalKind::Can {
                frame,
                start_bit,
                width,
            },
            AppliedValue::Num(v),
        ) => {
            // A numeric put onto a CAN signal writes the rounded value.
            device.write_can_field(*frame, *start_bit, *width, v.round() as u64, at);
        }
        (SignalKind::Pin { .. }, AppliedValue::Bits(_)) => {
            return Err(format!(
                "bit-pattern stimulus on electrical signal {signal}"
            ));
        }
    }
    trace.push(TraceEvent::Applied {
        at,
        signal: signal.clone(),
        resource: resource.to_string(),
        value: *value,
    });
    Ok(())
}

/// Samples one check at time `at` (the device must already be advanced).
/// `step_start` bounds the observation window for rate measurements
/// (`get_f` counts edges over `step_start..=at`).
fn sample_check(
    device: &Device,
    check: &GetCheck,
    step: u32,
    step_start: SimTime,
    at: SimTime,
    trace: &mut Trace,
) -> CheckResult {
    let mut result = CheckResult {
        step,
        at,
        signal: check.signal.clone(),
        method: check.method.clone(),
        bound: check.bound,
        measured: Measured::None,
        verdict: Verdict::Error,
        message: String::new(),
    };

    match (&check.kind, check.method.key().as_str()) {
        (SignalKind::Pin { pins }, "get_u") => {
            let v = device.measure_pins(pins);
            result.measured = Measured::Num(v);
            if check.bound.accepts_num(v) {
                result.verdict = Verdict::Pass;
            } else {
                result.verdict = Verdict::Fail;
                result.message = format!("{v:.3} V outside bounds");
            }
        }
        (SignalKind::Pin { pins }, "get_f") => {
            // A frequency counter gates over the step window. The settle
            // time excludes the initial transient from the count.
            let window_start = step_start.saturating_add(check.settle);
            let f = device.frequency(&pins[0], window_start, at);
            result.measured = Measured::Num(f);
            if check.bound.accepts_num(f) {
                result.verdict = Verdict::Pass;
            } else {
                result.verdict = Verdict::Fail;
                result.message = format!("{f:.3} Hz outside bounds");
            }
        }
        (
            SignalKind::Can {
                frame,
                start_bit,
                width,
            },
            "get_can",
        ) => match device.read_can_field(*frame, *start_bit, *width) {
            Some(bits) => {
                result.measured = Measured::Bits(bits);
                if check.bound.accepts_bits(bits) {
                    result.verdict = Verdict::Pass;
                } else {
                    result.verdict = Verdict::Fail;
                    result.message = format!("field value {bits:#b} does not match");
                }
            }
            None => {
                result.verdict = Verdict::Fail;
                result.message = format!("frame {frame} never transmitted");
            }
        },
        (_, other) => {
            result.message =
                format!("method {other} cannot be measured on this signal kind in the simulation");
        }
    }

    trace.push(TraceEvent::Measured {
        at,
        signal: check.signal.clone(),
        resource: check.resource.to_string(),
        value: result.measured,
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_dut::ecus::interior_light;
    use comptest_script::TestScript;
    use comptest_stand::{plan, TestStand};

    fn stand() -> TestStand {
        TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap()
    }

    fn script(xml: &str) -> TestScript {
        TestScript::parse_xml(xml).unwrap()
    }

    const NIGHT_SCRIPT: &str = r#"<?xml version="1.0"?>
<testscript name="night" suite="demo" version="1">
  <signals>
    <signal name="ds_fl" kind="pin:DS_FL" direction="input"/>
    <signal name="night" kind="can:0x2A0:0:1" direction="input"/>
    <signal name="int_ill" kind="pin:INT_ILL_F/INT_ILL_R" direction="output"/>
  </signals>
  <step nr="0" dt="0.5">
    <signal name="night"><put_can data="1B"/></signal>
    <signal name="ds_fl"><put_r r="0" r_min="0" r_max="2"/></signal>
    <signal name="int_ill"><get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)"/></signal>
  </step>
  <step nr="1" dt="0.5">
    <signal name="ds_fl"><put_r r="INF" r_min="5000" r_max="INF"/></signal>
    <signal name="int_ill"><get_u u_max="(0.3*ubatt)" u_min="0"/></signal>
  </step>
</testscript>"#;

    #[test]
    fn healthy_dut_passes() {
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();
        let mut dut = interior_light::device(Default::default());
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        assert!(result.passed(), "{result}\n{}", result.trace);
        assert_eq!(result.check_count(), 2);
        assert_eq!(result.steps.len(), 2);
        assert_eq!(result.steps[1].t_end, SimTime::from_secs(1));
    }

    #[test]
    fn broken_dut_fails() {
        use comptest_dut::ecus::interior_light::InteriorLight;
        use comptest_dut::{FaultKind, FaultyBehavior, PortValue};
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();
        let mut dut = interior_light::device_with(
            Default::default(),
            Box::new(FaultyBehavior::new(
                Box::new(InteriorLight::new()),
                vec![FaultKind::StuckOutput {
                    port: "lamp",
                    value: PortValue::Bool(false),
                }],
            )),
        );
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        assert_eq!(result.verdict(), Verdict::Fail);
        let failures = result.failures();
        assert_eq!(failures.len(), 1, "step 0's Ho check fails");
        assert_eq!(failures[0].step, 0);
    }

    #[test]
    fn trace_records_everything() {
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();
        let mut dut = interior_light::device(Default::default());
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        let applies = result
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Applied { .. }))
            .count();
        let measures = result
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Measured { .. }))
            .count();
        assert_eq!(applies, 3);
        assert_eq!(measures, 2);
    }

    #[test]
    fn get_can_round_trip() {
        // The central lock reports its state on CAN; check it with get_can.
        use comptest_dut::ecus::central_lock;
        let xml = r#"<?xml version="1.0"?>
<testscript name="lock" suite="demo" version="1">
  <signals>
    <signal name="lock_cmd" kind="can:0x2F0:0:1" direction="input"/>
    <signal name="lock_status" kind="can:0x2F8:0:1" direction="output"/>
  </signals>
  <step nr="0" dt="0.1">
    <signal name="lock_cmd"><put_can data="1B"/></signal>
    <signal name="lock_status"><get_can data="1B"/></signal>
  </step>
</testscript>"#;
        let stand = stand();
        let plan = plan(&script(xml), &stand).unwrap();
        let mut dut = central_lock::device(Default::default());
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        assert!(result.passed(), "{result}\n{}", result.trace);
    }

    #[test]
    fn missing_frame_is_a_failure_not_a_crash() {
        let xml = r#"<?xml version="1.0"?>
<testscript name="ghost" suite="demo" version="1">
  <signals>
    <signal name="nothing" kind="can:0x7FF:0:1" direction="output"/>
  </signals>
  <step nr="0" dt="0.1">
    <signal name="nothing"><get_can data="1B"/></signal>
  </step>
</testscript>"#;
        let stand = stand();
        let plan = plan(&script(xml), &stand).unwrap();
        let mut dut = interior_light::device(Default::default());
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        assert_eq!(result.verdict(), Verdict::Fail);
        assert!(result.failures()[0].message.contains("never transmitted"));
    }

    #[test]
    fn stepping_a_test_run_matches_execute() {
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();
        let reference = execute(
            &plan,
            &mut interior_light::device(Default::default()),
            &ExecOptions::default(),
        );

        let mut dut = interior_light::device(Default::default());
        let mut run = TestRun::new(&plan, &mut dut, &ExecOptions::default());
        assert!(!run.is_finished());
        assert_eq!(run.sim_now(), SimTime::ZERO);
        // The wheel key before the first step: end of step 0.
        assert_eq!(run.next_deadline(), SimTime::from_millis(500));
        // Two planned steps: the first call runs step 0 and keeps going,
        // the second runs step 1 and delivers the result.
        assert!(matches!(run.step(), RunState::Running));
        assert_eq!(run.sim_now(), SimTime::from_millis(500));
        assert_eq!(run.next_deadline(), SimTime::from_secs(1));
        let RunState::Finished(result) = run.step() else {
            panic!("two-step plan finishes on the second call");
        };
        assert!(run.is_finished());
        assert_eq!(result, reference, "stepping must equal execute exactly");
    }

    #[test]
    #[should_panic(expected = "after the run finished")]
    fn stepping_past_finished_panics() {
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();
        let mut dut = interior_light::device(Default::default());
        let mut run = TestRun::new(&plan, &mut dut, &ExecOptions::default());
        loop {
            if let RunState::Finished(_) = run.step() {
                break;
            }
        }
        let _ = run.step();
    }

    #[test]
    fn test_run_can_own_its_plan_and_device() {
        // The AsyncExecutor shape: owned plan + device, 'static run.
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();
        let reference = execute(
            &plan,
            &mut interior_light::device(Default::default()),
            &ExecOptions::default(),
        );
        let mut run: TestRun<_, _> = TestRun::new(
            plan,
            interior_light::device(Default::default()),
            &ExecOptions::default(),
        );
        fn assert_send<T: Send + 'static>(_: &T) {}
        assert_send(&run);
        let result = loop {
            if let RunState::Finished(result) = run.step() {
                break result;
            }
        };
        assert_eq!(result, reference);
    }

    #[test]
    fn sample_mode_parses_and_rejects() {
        assert_eq!(
            "end-of-step".parse::<SampleMode>().unwrap(),
            SampleMode::EndOfStep
        );
        assert_eq!(
            "END-OF-STEP".parse::<SampleMode>().unwrap(),
            SampleMode::EndOfStep
        );
        assert_eq!(
            "continuous:0.1".parse::<SampleMode>().unwrap(),
            SampleMode::Continuous {
                interval: SimTime::from_millis(100)
            }
        );
        // Decimal comma, as everywhere else in the sheets.
        assert_eq!(
            "continuous:0,25".parse::<SampleMode>().unwrap(),
            SampleMode::Continuous {
                interval: SimTime::from_millis(250)
            }
        );
        let unknown = "hourly".parse::<SampleMode>().unwrap_err();
        assert!(unknown.contains("\"hourly\""), "{unknown}");
        assert!(
            unknown.contains("end-of-step, continuous:<interval_s>"),
            "{unknown}"
        );
        let zero = "continuous:0".parse::<SampleMode>().unwrap_err();
        assert!(zero.contains("positive"), "{zero}");
        let junk = "continuous:fast".parse::<SampleMode>().unwrap_err();
        assert!(junk.contains("\"fast\""), "{junk}");
    }

    #[test]
    fn continuous_sampling_catches_a_delay_fault() {
        use comptest_dut::ecus::interior_light::InteriorLight;
        use comptest_dut::{FaultKind, FaultyBehavior};
        // The lamp reacts 0.3 s late. End-of-step sampling (0.5 s step)
        // misses it; continuous sampling sees the dark interval.
        let make_dut = || {
            interior_light::device_with(
                Default::default(),
                Box::new(FaultyBehavior::new(
                    Box::new(InteriorLight::new()),
                    vec![FaultKind::OutputDelay {
                        port: "lamp",
                        delay: SimTime::from_millis(300),
                    }],
                )),
            )
        };
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();

        let end_of_step = execute(&plan, &mut make_dut(), &ExecOptions::default());
        assert!(end_of_step.passed(), "end-of-step misses the delay");

        let continuous = execute(
            &plan,
            &mut make_dut(),
            &ExecOptions {
                sample: SampleMode::Continuous {
                    interval: SimTime::from_millis(100),
                },
                ..ExecOptions::default()
            },
        );
        assert_eq!(continuous.verdict(), Verdict::Fail, "continuous catches it");
    }
}
