//! Executing a planned script against a simulated DUT.
//!
//! Timing semantics (DESIGN.md): all stimuli of a step are applied atomically
//! at step start; the DUT then advances event-driven to step end; checks are
//! sampled **at step end** ([`SampleMode::EndOfStep`], the default).
//! [`SampleMode::Continuous`] additionally samples the whole step window —
//! the stricter ablation discussed in DESIGN.md §7 (it catches glitch/delay
//! faults that a single end-of-step sample misses, but rejects steps that
//! legitimately contain a transition, like the paper's step 8).

use comptest_dut::{Device, PinDrive};
use comptest_model::{SignalKind, SimTime};
use comptest_stand::{Action, AppliedValue, ExecutionPlan, GetCheck};

use crate::trace::{Trace, TraceEvent};
use crate::verdict::{CheckResult, Measured, StepResult, TestResult, Verdict};

/// When expected-output checks are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// Sample each check once, at step end (paper semantics).
    EndOfStep,
    /// Sample at step start + settle, then every `interval`, then at step
    /// end; a check passes only if **every** sample is in bounds.
    Continuous {
        /// Sampling interval.
        interval: SimTime,
    },
}

/// Execution options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Sampling mode for checks.
    pub sample: SampleMode,
    /// Abort the test after the first non-passing step (long soak tests
    /// then stop spending bench time on a component already known bad).
    /// Aborted runs still report the steps executed so far.
    pub stop_on_failure: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            sample: SampleMode::EndOfStep,
            stop_on_failure: false,
        }
    }
}

/// Runs an execution plan against a device. Never panics on DUT behaviour;
/// execution-level problems (unsupported methods, absent CAN frames) yield
/// [`Verdict::Error`] checks or an error-carrying [`TestResult`].
///
/// # Example
///
/// ```
/// use comptest_core::{execute, ExecOptions, PAPER_STAND_A};
/// use comptest_dut::ecus::interior_light;
/// use comptest_script::TestScript;
/// use comptest_stand::{plan, TestStand};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let script = TestScript::parse_xml(r#"
/// <testscript name="t" suite="s" version="1">
///   <signals>
///     <signal name="ds_fl" kind="pin:DS_FL" direction="input"/>
///     <signal name="int_ill" kind="pin:INT_ILL_F/INT_ILL_R" direction="output"/>
///   </signals>
///   <step nr="0" dt="0.5">
///     <signal name="ds_fl"><put_r r="0" r_min="0" r_max="2"/></signal>
///     <signal name="int_ill"><get_u u_max="(0.3*ubatt)" u_min="0"/></signal>
///   </step>
/// </testscript>"#)?;
/// let stand = TestStand::parse_str("a.stand", PAPER_STAND_A)?;
/// let plan = plan(&script, &stand)?;
/// let mut dut = interior_light::device(Default::default());
/// let result = execute(&plan, &mut dut, &ExecOptions::default());
/// assert!(result.passed()); // day: lamp stays dark
/// # Ok(())
/// # }
/// ```
pub fn execute(plan: &ExecutionPlan, device: &mut Device, options: &ExecOptions) -> TestResult {
    let mut result = TestResult {
        test: plan.script_name.clone(),
        stand: plan.stand_name.clone(),
        dut: device.behavior_name().to_owned(),
        steps: Vec::new(),
        error: None,
        trace: Trace::new(),
    };

    let mut now = SimTime::ZERO;
    device.reset(now);

    for action in &plan.init {
        if let Err(msg) = apply_action(device, action, now, &mut result.trace) {
            result.error = Some(format!("init: {msg}"));
            return result;
        }
    }

    for step in &plan.steps {
        let t_start = now;
        let t_end = now.saturating_add(step.dt);

        // Phase 1: all stimuli, atomically at step start.
        for action in &step.actions {
            if let Err(msg) = apply_action(device, action, t_start, &mut result.trace) {
                result.error = Some(format!("step {}: {msg}", step.nr));
                return result;
            }
        }

        // Phase 2: collect the checks and their sample schedules.
        let checks: Vec<&GetCheck> = step
            .actions
            .iter()
            .filter_map(|a| match a {
                Action::Check(c) => Some(c),
                Action::Apply { .. } => None,
            })
            .collect();

        let mut step_result = StepResult {
            nr: step.nr,
            t_end,
            checks: Vec::new(),
        };

        match options.sample {
            SampleMode::EndOfStep => {
                device.advance_to(t_end);
                for check in checks {
                    step_result.checks.push(sample_check(
                        device,
                        check,
                        step.nr,
                        t_start,
                        t_end,
                        &mut result.trace,
                    ));
                }
            }
            SampleMode::Continuous { interval } => {
                let interval = if interval.is_zero() {
                    SimTime::from_millis(100)
                } else {
                    interval
                };
                // Worst result per check across all samples.
                let mut worst: Vec<Option<CheckResult>> = vec![None; checks.len()];
                let max_settle = checks
                    .iter()
                    .map(|c| c.settle)
                    .max()
                    .unwrap_or(SimTime::ZERO);
                let mut t = t_start;
                let mut first = true;
                loop {
                    t = if first {
                        first = false;
                        // First sample: after the longest settle.
                        t_start.saturating_add(max_settle)
                    } else {
                        t.saturating_add(interval)
                    };
                    if t >= t_end {
                        t = t_end;
                    }
                    device.advance_to(t);
                    for (i, check) in checks.iter().enumerate() {
                        let sampled =
                            sample_check(device, check, step.nr, t_start, t, &mut result.trace);
                        let replace = match &worst[i] {
                            None => true,
                            Some(prev) => sampled.verdict > prev.verdict,
                        };
                        if replace {
                            worst[i] = Some(sampled);
                        }
                    }
                    if t == t_end {
                        break;
                    }
                }
                step_result.checks = worst.into_iter().flatten().collect();
            }
        }

        result.trace.push(TraceEvent::StepEnd {
            nr: step.nr,
            at: t_end,
        });
        let failed = step_result.verdict() != Verdict::Pass;
        result.steps.push(step_result);
        now = t_end;
        if failed && options.stop_on_failure {
            break;
        }
    }

    result
}

/// Applies a single stimulus action. Checks are ignored here.
fn apply_action(
    device: &mut Device,
    action: &Action,
    at: SimTime,
    trace: &mut Trace,
) -> Result<(), String> {
    let Action::Apply {
        signal,
        kind,
        resource,
        method,
        value,
        ..
    } = action
    else {
        return Ok(());
    };
    match (kind, value) {
        (SignalKind::Pin { pins }, AppliedValue::Num(v)) => {
            let drive = match method.key().as_str() {
                "put_r" => PinDrive::ResistanceToGround(*v),
                "put_u" => PinDrive::Voltage(*v),
                other => {
                    return Err(format!(
                        "method {other} is not executable on this simulated stand"
                    ))
                }
            };
            // Stimuli drive the signal's first pin; a second pin, if any, is
            // the return line.
            let pin = pins
                .first()
                .ok_or_else(|| format!("signal {signal} has no pins"))?;
            device.apply_pin(pin, drive, at);
        }
        (
            SignalKind::Can {
                frame,
                start_bit,
                width,
            },
            AppliedValue::Bits(bits),
        ) => {
            device.write_can_field(*frame, *start_bit, *width, bits.bits(), at);
        }
        (
            SignalKind::Can {
                frame,
                start_bit,
                width,
            },
            AppliedValue::Num(v),
        ) => {
            // A numeric put onto a CAN signal writes the rounded value.
            device.write_can_field(*frame, *start_bit, *width, v.round() as u64, at);
        }
        (SignalKind::Pin { .. }, AppliedValue::Bits(_)) => {
            return Err(format!(
                "bit-pattern stimulus on electrical signal {signal}"
            ));
        }
    }
    trace.push(TraceEvent::Applied {
        at,
        signal: signal.clone(),
        resource: resource.to_string(),
        value: *value,
    });
    Ok(())
}

/// Samples one check at time `at` (the device must already be advanced).
/// `step_start` bounds the observation window for rate measurements
/// (`get_f` counts edges over `step_start..=at`).
fn sample_check(
    device: &Device,
    check: &GetCheck,
    step: u32,
    step_start: SimTime,
    at: SimTime,
    trace: &mut Trace,
) -> CheckResult {
    let mut result = CheckResult {
        step,
        at,
        signal: check.signal.clone(),
        method: check.method.clone(),
        bound: check.bound,
        measured: Measured::None,
        verdict: Verdict::Error,
        message: String::new(),
    };

    match (&check.kind, check.method.key().as_str()) {
        (SignalKind::Pin { pins }, "get_u") => {
            let v = device.measure_pins(pins);
            result.measured = Measured::Num(v);
            if check.bound.accepts_num(v) {
                result.verdict = Verdict::Pass;
            } else {
                result.verdict = Verdict::Fail;
                result.message = format!("{v:.3} V outside bounds");
            }
        }
        (SignalKind::Pin { pins }, "get_f") => {
            // A frequency counter gates over the step window. The settle
            // time excludes the initial transient from the count.
            let window_start = step_start.saturating_add(check.settle);
            let f = device.frequency(&pins[0], window_start, at);
            result.measured = Measured::Num(f);
            if check.bound.accepts_num(f) {
                result.verdict = Verdict::Pass;
            } else {
                result.verdict = Verdict::Fail;
                result.message = format!("{f:.3} Hz outside bounds");
            }
        }
        (
            SignalKind::Can {
                frame,
                start_bit,
                width,
            },
            "get_can",
        ) => match device.read_can_field(*frame, *start_bit, *width) {
            Some(bits) => {
                result.measured = Measured::Bits(bits);
                if check.bound.accepts_bits(bits) {
                    result.verdict = Verdict::Pass;
                } else {
                    result.verdict = Verdict::Fail;
                    result.message = format!("field value {bits:#b} does not match");
                }
            }
            None => {
                result.verdict = Verdict::Fail;
                result.message = format!("frame {frame} never transmitted");
            }
        },
        (_, other) => {
            result.message =
                format!("method {other} cannot be measured on this signal kind in the simulation");
        }
    }

    trace.push(TraceEvent::Measured {
        at,
        signal: check.signal.clone(),
        resource: check.resource.to_string(),
        value: result.measured,
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_dut::ecus::interior_light;
    use comptest_script::TestScript;
    use comptest_stand::{plan, TestStand};

    fn stand() -> TestStand {
        TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap()
    }

    fn script(xml: &str) -> TestScript {
        TestScript::parse_xml(xml).unwrap()
    }

    const NIGHT_SCRIPT: &str = r#"<?xml version="1.0"?>
<testscript name="night" suite="demo" version="1">
  <signals>
    <signal name="ds_fl" kind="pin:DS_FL" direction="input"/>
    <signal name="night" kind="can:0x2A0:0:1" direction="input"/>
    <signal name="int_ill" kind="pin:INT_ILL_F/INT_ILL_R" direction="output"/>
  </signals>
  <step nr="0" dt="0.5">
    <signal name="night"><put_can data="1B"/></signal>
    <signal name="ds_fl"><put_r r="0" r_min="0" r_max="2"/></signal>
    <signal name="int_ill"><get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)"/></signal>
  </step>
  <step nr="1" dt="0.5">
    <signal name="ds_fl"><put_r r="INF" r_min="5000" r_max="INF"/></signal>
    <signal name="int_ill"><get_u u_max="(0.3*ubatt)" u_min="0"/></signal>
  </step>
</testscript>"#;

    #[test]
    fn healthy_dut_passes() {
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();
        let mut dut = interior_light::device(Default::default());
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        assert!(result.passed(), "{result}\n{}", result.trace);
        assert_eq!(result.check_count(), 2);
        assert_eq!(result.steps.len(), 2);
        assert_eq!(result.steps[1].t_end, SimTime::from_secs(1));
    }

    #[test]
    fn broken_dut_fails() {
        use comptest_dut::ecus::interior_light::InteriorLight;
        use comptest_dut::{FaultKind, FaultyBehavior, PortValue};
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();
        let mut dut = interior_light::device_with(
            Default::default(),
            Box::new(FaultyBehavior::new(
                Box::new(InteriorLight::new()),
                vec![FaultKind::StuckOutput {
                    port: "lamp",
                    value: PortValue::Bool(false),
                }],
            )),
        );
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        assert_eq!(result.verdict(), Verdict::Fail);
        let failures = result.failures();
        assert_eq!(failures.len(), 1, "step 0's Ho check fails");
        assert_eq!(failures[0].step, 0);
    }

    #[test]
    fn trace_records_everything() {
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();
        let mut dut = interior_light::device(Default::default());
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        let applies = result
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Applied { .. }))
            .count();
        let measures = result
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Measured { .. }))
            .count();
        assert_eq!(applies, 3);
        assert_eq!(measures, 2);
    }

    #[test]
    fn get_can_round_trip() {
        // The central lock reports its state on CAN; check it with get_can.
        use comptest_dut::ecus::central_lock;
        let xml = r#"<?xml version="1.0"?>
<testscript name="lock" suite="demo" version="1">
  <signals>
    <signal name="lock_cmd" kind="can:0x2F0:0:1" direction="input"/>
    <signal name="lock_status" kind="can:0x2F8:0:1" direction="output"/>
  </signals>
  <step nr="0" dt="0.1">
    <signal name="lock_cmd"><put_can data="1B"/></signal>
    <signal name="lock_status"><get_can data="1B"/></signal>
  </step>
</testscript>"#;
        let stand = stand();
        let plan = plan(&script(xml), &stand).unwrap();
        let mut dut = central_lock::device(Default::default());
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        assert!(result.passed(), "{result}\n{}", result.trace);
    }

    #[test]
    fn missing_frame_is_a_failure_not_a_crash() {
        let xml = r#"<?xml version="1.0"?>
<testscript name="ghost" suite="demo" version="1">
  <signals>
    <signal name="nothing" kind="can:0x7FF:0:1" direction="output"/>
  </signals>
  <step nr="0" dt="0.1">
    <signal name="nothing"><get_can data="1B"/></signal>
  </step>
</testscript>"#;
        let stand = stand();
        let plan = plan(&script(xml), &stand).unwrap();
        let mut dut = interior_light::device(Default::default());
        let result = execute(&plan, &mut dut, &ExecOptions::default());
        assert_eq!(result.verdict(), Verdict::Fail);
        assert!(result.failures()[0].message.contains("never transmitted"));
    }

    #[test]
    fn continuous_sampling_catches_a_delay_fault() {
        use comptest_dut::ecus::interior_light::InteriorLight;
        use comptest_dut::{FaultKind, FaultyBehavior};
        // The lamp reacts 0.3 s late. End-of-step sampling (0.5 s step)
        // misses it; continuous sampling sees the dark interval.
        let make_dut = || {
            interior_light::device_with(
                Default::default(),
                Box::new(FaultyBehavior::new(
                    Box::new(InteriorLight::new()),
                    vec![FaultKind::OutputDelay {
                        port: "lamp",
                        delay: SimTime::from_millis(300),
                    }],
                )),
            )
        };
        let stand = stand();
        let plan = plan(&script(NIGHT_SCRIPT), &stand).unwrap();

        let end_of_step = execute(&plan, &mut make_dut(), &ExecOptions::default());
        assert!(end_of_step.passed(), "end-of-step misses the delay");

        let continuous = execute(
            &plan,
            &mut make_dut(),
            &ExecOptions {
                sample: SampleMode::Continuous {
                    interval: SimTime::from_millis(100),
                },
                ..ExecOptions::default()
            },
        );
        assert_eq!(continuous.verdict(), Verdict::Fail, "continuous catches it");
    }
}
