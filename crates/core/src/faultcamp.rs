//! Fault-injection campaigns: does the reused test suite detect component
//! bugs?
//!
//! The paper's motivation is knowledge preservation — test sheets encode
//! "bugs that have occured in the past" so they are not reintroduced.  This
//! module quantifies that: every fault model is injected into a fresh DUT,
//! the full suite runs, and a fault counts as *detected* when at least one
//! check fails.  The fault-free reference run must pass, otherwise results
//! would be meaningless ([`CoreError::UnhealthyReference`]).

use std::fmt;

use comptest_dut::{Device, FaultKind};
use comptest_model::TestSuite;
use comptest_stand::TestStand;

use crate::error::CoreError;
use crate::exec::ExecOptions;
use crate::pipeline::run_suite;
use crate::verdict::Verdict;

/// The outcome of one injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRun {
    /// The fault, rendered (`inverted_lamp`, `timer_x1.5`, …).
    pub fault: String,
    /// True if at least one check failed (the suite caught the bug).
    pub detected: bool,
    /// Number of failing checks across the suite.
    pub failing_checks: usize,
    /// Names of the tests that flagged the fault.
    pub detected_by: Vec<String>,
}

/// The result of a fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaignResult {
    /// Suite name.
    pub suite: String,
    /// Stand name.
    pub stand: String,
    /// One row per injected fault.
    pub runs: Vec<FaultRun>,
}

impl FaultCampaignResult {
    /// Fraction of faults detected, in `0.0..=1.0` (1.0 for an empty set).
    pub fn coverage(&self) -> f64 {
        if self.runs.is_empty() {
            return 1.0;
        }
        self.runs.iter().filter(|r| r.detected).count() as f64 / self.runs.len() as f64
    }

    /// The faults that escaped every test.
    pub fn escapes(&self) -> Vec<&FaultRun> {
        self.runs.iter().filter(|r| !r.detected).collect()
    }
}

impl fmt::Display for FaultCampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault campaign: {} on {} — {}/{} detected ({:.0}%)",
            self.suite,
            self.stand,
            self.runs.iter().filter(|r| r.detected).count(),
            self.runs.len(),
            self.coverage() * 100.0
        )?;
        for run in &self.runs {
            writeln!(
                f,
                "  {:<28} {}",
                run.fault,
                if run.detected {
                    format!("DETECTED ({} failing checks)", run.failing_checks)
                } else {
                    "escaped".to_owned()
                }
            )?;
        }
        Ok(())
    }
}

/// Runs a fault campaign.
///
/// `device_factory` builds a DUT: `None` for the healthy reference,
/// `Some(fault)` with that fault injected.  Keeping construction with the
/// caller keeps this module agnostic of ECU wiring.
///
/// # Errors
///
/// Returns [`CoreError::UnhealthyReference`] when the fault-free run does
/// not pass, and propagates generation/planning errors.
pub fn run_fault_campaign(
    suite: &TestSuite,
    stand: &TestStand,
    mut device_factory: impl FnMut(Option<&FaultKind>) -> Device,
    faults: &[FaultKind],
    options: &ExecOptions,
) -> Result<FaultCampaignResult, CoreError> {
    // Reference run: the healthy DUT must pass everything.
    let reference = run_suite(suite, stand, || device_factory(None), options)?;
    if reference.verdict() != Verdict::Pass {
        let offender = reference
            .results
            .iter()
            .find(|r| r.verdict() != Verdict::Pass)
            .expect("non-pass suite has a non-pass test");
        return Err(CoreError::UnhealthyReference {
            test: offender.test.clone(),
            summary: offender.to_string(),
        });
    }

    let mut runs = Vec::new();
    for fault in faults {
        let result = run_suite(suite, stand, || device_factory(Some(fault)), options)?;
        let mut failing_checks = 0;
        let mut detected_by = Vec::new();
        for test in &result.results {
            let fails = test.failures().len();
            if fails > 0 || test.verdict() != Verdict::Pass {
                detected_by.push(test.test.clone());
            }
            failing_checks += fails;
        }
        runs.push(FaultRun {
            fault: fault.to_string(),
            detected: !detected_by.is_empty(),
            failing_checks,
            detected_by,
        });
    }

    Ok(FaultCampaignResult {
        suite: suite.name.clone(),
        stand: stand.name().to_owned(),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_dut::ecus::interior_light::{self, InteriorLight};
    use comptest_dut::{FaultyBehavior, PortValue};
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = lamp_suite

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test lamp_basics]
step, dt,  DS_FL, NIGHT, INT_ILL, remarks
0,    0.5, Open,  0,     Lo,      day off
1,    0.5, Closed,1,     Lo,      night closed off
2,    0.5, Open,  ,      Ho,      night open on
3,    0.5, Closed,,      Lo,      closes again
";

    fn build(fault: Option<&FaultKind>) -> Device {
        match fault {
            None => interior_light::device(Default::default()),
            Some(f) if f.is_device_level() => {
                let mut d = interior_light::device(Default::default());
                assert!(f.apply_to_device(&mut d));
                d
            }
            Some(f) => interior_light::device_with(
                Default::default(),
                Box::new(FaultyBehavior::new(
                    Box::new(InteriorLight::new()),
                    vec![f.clone()],
                )),
            ),
        }
    }

    #[test]
    fn campaign_detects_and_reports() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let stand = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let faults = vec![
            FaultKind::StuckOutput {
                port: "lamp",
                value: PortValue::Bool(true),
            },
            FaultKind::InvertedOutput { port: "lamp" },
            FaultKind::IgnoredInput { port: "night" },
            FaultKind::DropCanFrame {
                frame: interior_light::NIGHT_FRAME,
            },
            // A 300s-timer drift is invisible to this short suite — an
            // expected escape (the paper's T1 steps 7/8 exist to catch it).
            FaultKind::TimerScale { factor: 1.5 },
        ];
        let result =
            run_fault_campaign(&wb.suite, &stand, build, &faults, &ExecOptions::default()).unwrap();
        assert_eq!(result.runs.len(), 5);
        assert!(result.runs[0].detected, "stuck lamp detected");
        assert!(result.runs[1].detected, "inverted lamp detected");
        assert!(result.runs[2].detected, "dead night bit detected");
        assert!(result.runs[3].detected, "dropped CAN frame detected");
        assert!(
            !result.runs[4].detected,
            "timer drift escapes the short suite"
        );
        assert!((result.coverage() - 0.8).abs() < 1e-9);
        assert_eq!(result.escapes().len(), 1);
        let text = result.to_string();
        assert!(text.contains("80%"));
        assert!(text.contains("escaped"));
    }

    #[test]
    fn unhealthy_reference_is_rejected() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let stand = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        // "Healthy" device that is actually broken.
        let err = run_fault_campaign(
            &wb.suite,
            &stand,
            |_| build(Some(&FaultKind::InvertedOutput { port: "lamp" })),
            &[],
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::UnhealthyReference { .. }));
    }
}
