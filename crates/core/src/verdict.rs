//! Verdicts and result containers.

use std::fmt;

use comptest_model::{MethodName, SignalName, SimTime, StatusBound};

use crate::trace::Trace;

/// The outcome of a check, step, test or suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Verdict {
    /// Everything within bounds.
    Pass,
    /// A measured value violated its bound.
    Fail,
    /// The test could not be executed correctly (unsupported method,
    /// missing CAN frame, …) — distinct from a DUT failure.
    Error,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass => f.write_str("PASS"),
            Verdict::Fail => f.write_str("FAIL"),
            Verdict::Error => f.write_str("ERROR"),
        }
    }
}

/// What a measurement produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measured {
    /// A voltage/resistance/… in the method's unit.
    Num(f64),
    /// A CAN field value.
    Bits(u64),
    /// Nothing (frame never transmitted, method unsupported).
    None,
}

impl fmt::Display for Measured {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Measured::Num(v) => f.write_str(&comptest_model::value::number_to_string(*v)),
            Measured::Bits(v) => write!(f, "{v:#b}"),
            Measured::None => f.write_str("-"),
        }
    }
}

/// One evaluated expected-output check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Step number.
    pub step: u32,
    /// Simulation time of the sample.
    pub at: SimTime,
    /// The checked signal.
    pub signal: SignalName,
    /// The measurement method.
    pub method: MethodName,
    /// The acceptance bound.
    pub bound: StatusBound,
    /// What was measured.
    pub measured: Measured,
    /// The verdict.
    pub verdict: Verdict,
    /// Explanation for non-passes.
    pub message: String,
}

impl fmt::Display for CheckResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[step {} @ {}] {} {}: measured {} against {} -> {}",
            self.step, self.at, self.signal, self.method, self.measured, self.bound, self.verdict
        )?;
        if !self.message.is_empty() {
            write!(f, " ({})", self.message)?;
        }
        Ok(())
    }
}

/// All checks of one executed step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Step number.
    pub nr: u32,
    /// Step end time.
    pub t_end: SimTime,
    /// Check outcomes (empty for stimulus-only steps).
    pub checks: Vec<CheckResult>,
}

impl StepResult {
    /// Worst verdict of the step (`Pass` when there are no checks).
    pub fn verdict(&self) -> Verdict {
        self.checks
            .iter()
            .map(|c| c.verdict)
            .max()
            .unwrap_or(Verdict::Pass)
    }
}

/// The outcome of one test execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Test (script) name.
    pub test: String,
    /// Stand the plan was made for.
    pub stand: String,
    /// The DUT (behaviour) name.
    pub dut: String,
    /// Per-step outcomes.
    pub steps: Vec<StepResult>,
    /// A fatal execution error, if one aborted the run.
    pub error: Option<String>,
    /// The stimulus/measurement trace.
    pub trace: Trace,
}

impl TestResult {
    /// Worst verdict across all steps (or `Error` for aborted runs).
    pub fn verdict(&self) -> Verdict {
        if self.error.is_some() {
            return Verdict::Error;
        }
        self.steps
            .iter()
            .map(|s| s.verdict())
            .max()
            .unwrap_or(Verdict::Pass)
    }

    /// True if every check passed and no error occurred.
    pub fn passed(&self) -> bool {
        self.verdict() == Verdict::Pass
    }

    /// All non-passing checks.
    pub fn failures(&self) -> Vec<&CheckResult> {
        self.steps
            .iter()
            .flat_map(|s| s.checks.iter())
            .filter(|c| c.verdict != Verdict::Pass)
            .collect()
    }

    /// Total number of checks executed.
    pub fn check_count(&self) -> usize {
        self.steps.iter().map(|s| s.checks.len()).sum()
    }

    /// Simulated duration of the run: the end time of the last executed
    /// step ([`SimTime::ZERO`] when nothing ran). Deterministic — unlike
    /// wall-clock, it is identical across serial and parallel execution, so
    /// reports can carry per-test timing without breaking the engine's
    /// byte-identity guarantee.
    pub fn sim_duration(&self) -> SimTime {
        self.steps.last().map_or(SimTime::ZERO, |s| s.t_end)
    }
}

impl fmt::Display for TestResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} against {}: {} ({} checks",
            self.test,
            self.stand,
            self.dut,
            self.verdict(),
            self.check_count()
        )?;
        let fails = self.failures().len();
        if fails > 0 {
            write!(f, ", {fails} failing")?;
        }
        f.write_str(")")
    }
}

/// The outcomes of a whole suite on one stand/DUT combination.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Suite name.
    pub suite: String,
    /// One result per test, in suite order.
    pub results: Vec<TestResult>,
}

impl SuiteResult {
    /// Worst verdict across all tests.
    pub fn verdict(&self) -> Verdict {
        self.results
            .iter()
            .map(|r| r.verdict())
            .max()
            .unwrap_or(Verdict::Pass)
    }

    /// Total simulated duration across all tests.
    pub fn sim_duration(&self) -> SimTime {
        self.results
            .iter()
            .fold(SimTime::ZERO, |acc, r| acc.saturating_add(r.sim_duration()))
    }

    /// `(passed, failed, errored)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for r in &self.results {
            match r.verdict() {
                Verdict::Pass => counts.0 += 1,
                Verdict::Fail => counts.1 += 1,
                Verdict::Error => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(verdict: Verdict) -> CheckResult {
        CheckResult {
            step: 0,
            at: SimTime::from_millis(500),
            signal: SignalName::new("int_ill").unwrap(),
            method: MethodName::new("get_u").unwrap(),
            bound: StatusBound::Numeric {
                nominal: None,
                lo: 8.4,
                hi: 13.2,
            },
            measured: Measured::Num(12.0),
            verdict,
            message: String::new(),
        }
    }

    #[test]
    fn verdict_ordering_is_worst_wins() {
        assert!(Verdict::Pass < Verdict::Fail);
        assert!(Verdict::Fail < Verdict::Error);
        let step = StepResult {
            nr: 0,
            t_end: SimTime::from_millis(500),
            checks: vec![check(Verdict::Pass), check(Verdict::Fail)],
        };
        assert_eq!(step.verdict(), Verdict::Fail);
        let empty = StepResult {
            nr: 1,
            t_end: SimTime::from_secs(1),
            checks: vec![],
        };
        assert_eq!(empty.verdict(), Verdict::Pass);
    }

    #[test]
    fn test_result_aggregation() {
        let mut result = TestResult {
            test: "t".into(),
            stand: "s".into(),
            dut: "d".into(),
            steps: vec![StepResult {
                nr: 0,
                t_end: SimTime::from_millis(500),
                checks: vec![check(Verdict::Pass)],
            }],
            error: None,
            trace: Trace::default(),
        };
        assert!(result.passed());
        assert_eq!(result.check_count(), 1);
        result.steps[0].checks.push(check(Verdict::Fail));
        assert_eq!(result.verdict(), Verdict::Fail);
        assert_eq!(result.failures().len(), 1);
        result.error = Some("boom".into());
        assert_eq!(result.verdict(), Verdict::Error);
    }

    #[test]
    fn suite_counts() {
        let ok = TestResult {
            test: "a".into(),
            stand: "s".into(),
            dut: "d".into(),
            steps: vec![],
            error: None,
            trace: Trace::default(),
        };
        let mut fail = ok.clone();
        fail.steps.push(StepResult {
            nr: 0,
            t_end: SimTime::ZERO,
            checks: vec![check(Verdict::Fail)],
        });
        let mut err = ok.clone();
        err.error = Some("x".into());
        let suite = SuiteResult {
            suite: "s".into(),
            results: vec![ok, fail, err],
        };
        assert_eq!(suite.counts(), (1, 1, 1));
        assert_eq!(suite.verdict(), Verdict::Error);
    }

    #[test]
    fn sim_duration_is_last_step_end() {
        let mut r = TestResult {
            test: "t".into(),
            stand: "s".into(),
            dut: "d".into(),
            steps: vec![],
            error: None,
            trace: Trace::default(),
        };
        assert_eq!(r.sim_duration(), SimTime::ZERO);
        for t_end in [500, 1500] {
            r.steps.push(StepResult {
                nr: 0,
                t_end: SimTime::from_millis(t_end),
                checks: vec![],
            });
        }
        assert_eq!(r.sim_duration(), SimTime::from_millis(1500));
        let suite = SuiteResult {
            suite: "s".into(),
            results: vec![r.clone(), r],
        };
        assert_eq!(suite.sim_duration(), SimTime::from_secs(3));
    }

    #[test]
    fn displays() {
        assert_eq!(Verdict::Pass.to_string(), "PASS");
        assert_eq!(Measured::Num(12.5).to_string(), "12.5");
        assert_eq!(Measured::Bits(5).to_string(), "0b101");
        assert_eq!(Measured::None.to_string(), "-");
        let c = check(Verdict::Fail);
        let text = c.to_string();
        assert!(text.contains("step 0"));
        assert!(text.contains("FAIL"));
    }
}
