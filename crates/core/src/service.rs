//! Service-side campaign identity and result retention.
//!
//! The one-shot CLI runs a campaign and exits; a resident campaign
//! service (`comptest serve`) outlives every run it executes, so it
//! needs two things the batch path never did: a **stable id** naming
//! each submitted campaign across its whole lifecycle, and a **result
//! store** keeping finished verdicts retrievable after the submitting
//! client is long gone. Both are engine-agnostic plain data, so they
//! live here next to [`CampaignResult`](crate::campaign::CampaignResult)
//! rather than in the server crate — tests and benches can use them
//! without touching sockets.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Mutex;

use crate::campaign::CampaignResult;

/// A stable campaign id, assigned at submission and valid for the
/// lifetime of the service process: `c-000042`. Ids are dense and
/// ordered by submission, which makes burst fairness observable (the
/// id order *is* the submission order) and log lines greppable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignId(pub u64);

impl fmt::Display for CampaignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c-{:06}", self.0)
    }
}

impl FromStr for CampaignId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("c-")
            .ok_or_else(|| format!("bad campaign id {s:?} (expected c-NNNNNN)"))?;
        digits
            .parse::<u64>()
            .map(CampaignId)
            .map_err(|_| format!("bad campaign id {s:?} (expected c-NNNNNN)"))
    }
}

/// Where a submitted campaign is in its service lifecycle.
///
/// ```text
/// Queued ──launch──▶ Running ──join──▶ Done
///    │                  │
///    └──cancel──────────┴──cancel──▶ (Done with cancelled jobs,
///                                     or Cancelled if never launched)
/// Running ──launch/join error──▶ Failed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignState {
    /// Accepted and waiting in the admission queue.
    Queued,
    /// Launched on the shared executor; events are streaming.
    Running,
    /// Joined with a verdict (which may include cancelled jobs).
    Done,
    /// Cancelled before it ever launched: no cell ran, no verdict exists.
    Cancelled,
    /// Launch or join failed; the payload is the rendered error.
    Failed(String),
}

impl CampaignState {
    /// The wire / display name of the state (`Failed` renders bare; the
    /// error travels separately).
    pub fn name(&self) -> &'static str {
        match self {
            CampaignState::Queued => "queued",
            CampaignState::Running => "running",
            CampaignState::Done => "done",
            CampaignState::Cancelled => "cancelled",
            CampaignState::Failed(_) => "failed",
        }
    }

    /// True once the campaign can never produce further events: `Done`,
    /// `Cancelled` or `Failed`.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, CampaignState::Queued | CampaignState::Running)
    }
}

impl fmt::Display for CampaignState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A finished campaign's retained verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredOutcome {
    /// The deterministic result matrix.
    pub result: CampaignResult,
    /// Jobs skipped by cancellation (`stop_on_first_fail` or a wire
    /// cancel).
    pub cancelled: usize,
}

/// An in-memory store of finished campaign verdicts, keyed by
/// [`CampaignId`] — what makes verdicts retrievable after the
/// submitting client disconnected. Thread-safe; the service keeps one
/// for its whole lifetime.
#[derive(Debug, Default)]
pub struct ResultStore {
    results: Mutex<BTreeMap<CampaignId, StoredOutcome>>,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retains `outcome` under `id`, replacing any previous entry.
    pub fn insert(&self, id: CampaignId, outcome: StoredOutcome) {
        self.results
            .lock()
            .expect("result store lock")
            .insert(id, outcome);
    }

    /// The stored outcome for `id`, if that campaign has finished.
    pub fn get(&self, id: CampaignId) -> Option<StoredOutcome> {
        self.results
            .lock()
            .expect("result store lock")
            .get(&id)
            .cloned()
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.results.lock().expect("result store lock").len()
    }

    /// True when no verdict is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_and_parse_stably() {
        let id = CampaignId(42);
        assert_eq!(id.to_string(), "c-000042");
        assert_eq!("c-000042".parse::<CampaignId>().unwrap(), id);
        assert_eq!("c-7".parse::<CampaignId>().unwrap(), CampaignId(7));
        for bad in ["", "42", "c-", "c-x", "x-42"] {
            assert!(bad.parse::<CampaignId>().is_err(), "{bad:?}");
        }
        // Display order matches numeric order for dense ids.
        assert!(CampaignId(9).to_string() < CampaignId(10).to_string());
    }

    #[test]
    fn states_report_terminality() {
        assert!(!CampaignState::Queued.is_terminal());
        assert!(!CampaignState::Running.is_terminal());
        assert!(CampaignState::Done.is_terminal());
        assert!(CampaignState::Cancelled.is_terminal());
        assert!(CampaignState::Failed("boom".into()).is_terminal());
        assert_eq!(CampaignState::Failed("boom".into()).to_string(), "failed");
    }

    #[test]
    fn result_store_retains_and_replays() {
        let store = ResultStore::new();
        assert!(store.is_empty());
        assert_eq!(store.get(CampaignId(1)), None);
        let outcome = StoredOutcome {
            result: CampaignResult::default(),
            cancelled: 3,
        };
        store.insert(CampaignId(1), outcome.clone());
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(CampaignId(1)), Some(outcome));
    }
}
