//! Stable structural hashing for campaign caching.
//!
//! A regression campaign re-runs the same workbook suites against the same
//! stands over and over; most cells are byte-identical re-executions. To
//! skip them safely, a cache must key each cell by *content*: the same
//! suite, stand and DUT configuration must hash to the same [`CellKey`]
//! on every run — and any structural change (a renamed test, a widened
//! check bound, a reordered step, a re-wired matrix crosspoint) must
//! change it. Compositional-testing theory backs exactly this notion:
//! re-verification of a component can be skipped as long as its interface
//! contract is unchanged.
//!
//! The hashes here are therefore **structural and deliberately stable**:
//!
//! * only the declarative content is hashed — wall-clock timestamps,
//!   event-arrival ordering, worker counts and scheduling granularity are
//!   all excluded, so a serial, pooled and async run of the same campaign
//!   key identically;
//! * the hash function is a fixed FNV-1a (no per-process randomisation, no
//!   dependence on `std`'s hasher internals), so keys survive process
//!   restarts and are usable as on-disk file names;
//! * every field is tagged and strings are length-prefixed, so adjacent
//!   fields cannot melt into each other (`("ab", "c")` ≠ `("a", "bc")`);
//! * identifier names hash through their canonical case-insensitive
//!   [`key()`](comptest_model::SignalName::key) form, matching how the
//!   rest of the toolchain compares them.

use std::collections::BTreeSet;
use std::fmt;

use comptest_dut::Device;
use comptest_model::{Env, SignalDef, SignalKind, StatusDef, TestSuite};
use comptest_script::TestScript;
use comptest_stand::{Action, ExecutionPlan, TestStand};

use crate::campaign::{CampaignEntry, DeviceFactory};
use crate::exec::{ExecOptions, SampleMode};

/// A stable streaming hasher: 64-bit FNV-1a with field tagging.
///
/// Unlike [`std::hash::Hasher`] implementations, the output is guaranteed
/// stable across processes, platforms and Rust versions — it is pure
/// arithmetic over the bytes written. Collisions are possible (64 bits),
/// but a collision only ever *reuses* a cached outcome; `--cache-verify`
/// exists to audit exactly that.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte (field tags).
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64`, so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Feeds an `f64` through its IEEE-754 bit pattern (`-0.0` is
    /// normalised to `0.0` so the two structurally equal spellings agree).
    pub fn write_f64(&mut self, v: f64) {
        let v = if v == 0.0 { 0.0 } else { v };
        self.write_u64(v.to_bits());
    }

    /// Feeds an optional `f64` with a presence tag.
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.write_u8(1);
                self.write_f64(v);
            }
            None => self.write_u8(0),
        }
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes one environment (sorted by canonical variable name, so insertion
/// order is irrelevant — it is not part of the stand's structure).
fn write_env(h: &mut StableHasher, env: &Env) {
    let mut vars: Vec<(String, f64)> = env
        .iter()
        .map(|(name, value)| (name.to_ascii_lowercase(), value))
        .collect();
    vars.sort_by(|a, b| a.0.cmp(&b.0));
    h.write_usize(vars.len());
    for (name, value) in vars {
        h.write_str(&name);
        h.write_f64(value);
    }
}

fn write_signal_kind(h: &mut StableHasher, kind: &SignalKind) {
    match kind {
        SignalKind::Pin { pins } => {
            h.write_u8(1);
            h.write_usize(pins.len());
            for pin in pins {
                h.write_str(&pin.key());
            }
        }
        SignalKind::Can {
            frame,
            start_bit,
            width,
        } => {
            h.write_u8(2);
            h.write_u32(frame.0);
            h.write_u8(*start_bit);
            h.write_u8(*width);
        }
    }
}

fn write_signal_def(h: &mut StableHasher, sig: &SignalDef) {
    h.write_str(&sig.name.key());
    write_signal_kind(h, &sig.kind);
    h.write_u8(match sig.direction {
        comptest_model::SignalDirection::Input => 0,
        comptest_model::SignalDirection::Output => 1,
    });
    match &sig.init {
        Some(init) => {
            h.write_u8(1);
            h.write_str(&init.key());
        }
        None => h.write_u8(0),
    }
    // The free-text description is documentation, not structure: two suites
    // differing only in prose verify the same contract.
}

fn write_status_def(h: &mut StableHasher, def: &StatusDef) {
    h.write_str(&def.name.key());
    h.write_str(&def.method.key());
    h.write_str(&def.attribut.to_ascii_lowercase());
    match &def.var {
        Some(var) => {
            h.write_u8(1);
            h.write_str(&var.to_ascii_lowercase());
        }
        None => h.write_u8(0),
    }
    h.write_opt_f64(def.nom);
    h.write_opt_f64(def.min);
    h.write_opt_f64(def.max);
    match def.bits {
        Some(bits) => {
            h.write_u8(1);
            h.write_u64(bits.bits());
            h.write_u8(bits.width());
        }
        None => h.write_u8(0),
    }
    h.write_opt_f64(def.d1);
    h.write_opt_f64(def.d2);
    h.write_opt_f64(def.d3);
}

/// Stable structural hash of a test suite: name, signal sheet, status
/// table and every test's step sequence — everything that feeds script
/// generation. Step *order* is structure (reordering steps changes the
/// executed stimulus sequence) and is hashed; step remarks carry
/// requirement tags into reports but do not alter execution, yet they are
/// part of the exchanged sheet and are hashed too, conservatively.
pub fn hash_suite(suite: &TestSuite) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'S');
    h.write_str(&suite.name);
    h.write_usize(suite.signals.len());
    for sig in &suite.signals {
        write_signal_def(&mut h, sig);
    }
    h.write_usize(suite.statuses.len());
    for def in suite.statuses.iter() {
        write_status_def(&mut h, def);
    }
    h.write_usize(suite.tests.len());
    for test in &suite.tests {
        h.write_str(&test.name);
        h.write_usize(test.steps.len());
        for step in &test.steps {
            h.write_u32(step.nr);
            h.write_u64(step.dt.as_micros());
            h.write_usize(step.assignments.len());
            for a in &step.assignments {
                h.write_str(&a.signal.key());
                h.write_str(&a.status.key());
            }
            h.write_str(&step.remark);
        }
    }
    h.finish()
}

/// Stable structural hash of a test stand: name, environment (sorted),
/// resources with capabilities and capacities, and the full connection
/// matrix in declaration order.
pub fn hash_stand(stand: &TestStand) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'T');
    h.write_str(stand.name());
    write_env(&mut h, stand.env());
    h.write_usize(stand.resources().len());
    for resource in stand.resources() {
        h.write_str(&resource.id.key());
        h.write_usize(resource.capacity);
        h.write_usize(resource.capabilities.len());
        for cap in &resource.capabilities {
            h.write_str(&cap.method.key());
            h.write_str(&cap.attribut.to_ascii_lowercase());
            h.write_f64(cap.min);
            h.write_f64(cap.max);
            h.write_str(&cap.unit.to_string());
        }
    }
    let connections = stand.matrix().connections();
    h.write_usize(connections.len());
    for c in connections {
        h.write_str(&c.point.key());
        h.write_str(&c.resource.key());
        h.write_str(&c.pin.key());
    }
    h.finish()
}

/// Stable hash of a generated test script, over its canonical XML
/// serialisation — the exchange format *is* the script's identity.
pub fn hash_script(script: &TestScript) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'X');
    h.write_str(&script.to_xml());
    h.finish()
}

/// Stable hash of a freshly built DUT: its behaviour, electrical
/// configuration, pin/CAN bindings and power-on state, via the device's
/// structural [`Debug`] rendering at simulated time zero. Wall-clock never
/// enters a freshly built device, so the hash is reproducible across runs;
/// two factories building structurally identical devices key identically.
///
/// This makes the *derived, exhaustive* `Debug` of [`Device`] and of every
/// [`Behavior`](comptest_dut::Behavior) implementation part of the
/// cache-key contract: a hand-written `Debug` that elides fields (e.g. via
/// `finish_non_exhaustive`) would let structurally different DUT configs
/// collide on this digest and serve each other's cached outcomes —
/// detectable only by `--cache-verify`. Keep device/behaviour `Debug`
/// derived (or field-complete), or extend this function with explicit
/// accessors instead.
pub fn hash_device(device: &Device) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'D');
    h.write_str(&format!("{device:?}"));
    h.finish()
}

/// Stable hash of the per-test execution options. Sampling mode and
/// stop-on-failure change the *content* of a test result (which samples
/// were taken, whether later steps ran), so outcomes cached under one
/// option set must never serve a campaign running another.
pub fn hash_exec_options(options: &ExecOptions) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'O');
    match options.sample {
        SampleMode::EndOfStep => h.write_u8(0),
        SampleMode::Continuous { interval } => {
            h.write_u8(1);
            h.write_u64(interval.as_micros());
        }
    }
    h.write_u8(u8::from(options.stop_on_failure));
    h.finish()
}

/// The content address of one campaign cell: what ran (`suite_hash`),
/// where (`stand_hash`), against which component (`dut_config_hash`) and
/// under which execution options (`exec_hash`).
///
/// Everything that can change a cell's outcome is folded into these four
/// digests; everything that cannot — executor choice, worker count,
/// scheduling granularity, event ordering, wall-clock — is deliberately
/// excluded, so a serial, pooled and async run of the same campaign hit
/// the same cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey {
    /// Structural hash of the test suite ([`hash_suite`]).
    pub suite_hash: u64,
    /// Structural hash of the test stand ([`hash_stand`]).
    pub stand_hash: u64,
    /// Hash of the freshly built DUT ([`hash_device`]).
    pub dut_config_hash: u64,
    /// Hash of the execution options ([`hash_exec_options`]).
    pub exec_hash: u64,
}

impl CellKey {
    /// Computes the key for one (entry, stand) cell under `options`. Builds
    /// one device from the entry's factory to fingerprint the DUT config.
    pub fn for_cell(entry: &CampaignEntry<'_>, stand: &TestStand, options: &ExecOptions) -> Self {
        Self {
            suite_hash: hash_suite(entry.suite),
            stand_hash: hash_stand(stand),
            dut_config_hash: hash_device(&entry.device_factory.build()),
            exec_hash: hash_exec_options(options),
        }
    }

    /// Computes the key from pre-computed suite/stand digests (so a
    /// campaign-wide key sweep hashes each suite and stand once, not once
    /// per cell).
    pub fn from_hashes(
        suite_hash: u64,
        stand_hash: u64,
        factory: &dyn DeviceFactory,
        options: &ExecOptions,
    ) -> Self {
        Self {
            suite_hash,
            stand_hash,
            dut_config_hash: hash_device(&factory.build()),
            exec_hash: hash_exec_options(options),
        }
    }
}

impl fmt::Display for CellKey {
    /// Renders the key as a fixed-width, filesystem-safe name:
    /// `<suite>-<stand>-<dut>-<exec>`, 16 lowercase hex digits each.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}-{:016x}-{:016x}-{:016x}",
            self.suite_hash, self.stand_hash, self.dut_config_hash, self.exec_hash
        )
    }
}

/// The exact dependency footprint of one campaign cell: which signals the
/// suite reads or drives, which DUT pins and CAN frames realise them,
/// which stand resources the planner allocated, and which behaviours
/// (ECUs) the cell exercises — plus an author-supplied cache salt.
///
/// A footprint is captured from the cell's *resolved* execution plans, so
/// it reflects what the cell will actually do on this stand, not what the
/// stand could do in general. Two digests summarise it:
///
/// * [`plan_hash`](Footprint::plan_hash) — the stand slice. Execution is a
///   pure function of the plan (plus the device and exec options), and the
///   plan is a pure function of (script, stand): any stand edit that could
///   change this cell's outcome changes its plans, while edits the planner
///   never routed through this cell (an unrelated resource, a crosspoint
///   to another ECU's pins) leave them — and the key — untouched.
/// * [`dut_slice_hash`](Footprint::dut_slice_hash) — the DUT slice: the
///   electrical configuration, the behaviour name, and only the pin/CAN
///   bindings the plans touch, each refined by the behaviour's
///   [`port_slice`](comptest_dut::Behavior::port_slice). A behaviour that
///   does not implement `port_slice` falls back to hashing the whole
///   device, which makes the footprint exactly as conservative as full
///   keying on the DUT axis — never less safe.
///
/// The salt is folded into both digests, so bumping it (e.g. on a firmware
/// release) invalidates every footprint-keyed record at once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// Author-supplied cache salt (empty by default).
    pub salt: String,
    /// Canonical names of the signals the plans apply or check (sorted).
    pub signals: Vec<String>,
    /// Canonical DUT pin names those signals route through (sorted).
    pub pins: Vec<String>,
    /// CAN frame ids those signals map onto (sorted).
    pub frames: Vec<u32>,
    /// Canonical ids of the stand resources the planner allocated (sorted).
    pub resources: Vec<String>,
    /// Behaviour (ECU) names the cell exercises.
    pub ecus: Vec<String>,
    /// Digest of the resolved execution plans (tag `b'P'`; salt included).
    pub plan_hash: u64,
    /// Digest of the touched DUT slice (tag `b'F'`; salt included).
    pub dut_slice_hash: u64,
}

impl Footprint {
    /// The footprint-keyed content address for this cell, shaped exactly
    /// like a [`CellKey`] so every cache backend works unchanged: the
    /// suite and exec digests are identical to full keying, the stand axis
    /// carries [`plan_hash`](Self::plan_hash) and the DUT axis
    /// [`dut_slice_hash`](Self::dut_slice_hash).
    pub fn key(&self, suite_hash: u64, exec_hash: u64) -> FootprintKey {
        FootprintKey {
            suite_hash,
            plan_hash: self.plan_hash,
            dut_slice_hash: self.dut_slice_hash,
            exec_hash,
        }
    }

    /// Whether the footprint names this ECU (behaviour name).
    pub fn touches_ecu(&self, name: &str) -> bool {
        self.ecus.iter().any(|e| e == name)
    }
}

/// A footprint-keyed cell address: same four-digest shape as [`CellKey`],
/// but the stand and DUT axes hash only the slices the cell touches.
///
/// The plan digest is tagged `b'P'` (full stand hashing uses `b'T'`) and
/// the DUT-slice digest `b'F'` (full device hashing uses `b'D'`), so
/// footprint and full keys live in disjoint hash domains and can never
/// alias each other inside one cache directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FootprintKey {
    /// Structural hash of the test suite ([`hash_suite`]).
    pub suite_hash: u64,
    /// Digest of the cell's resolved execution plans.
    pub plan_hash: u64,
    /// Digest of the DUT slice the plans touch.
    pub dut_slice_hash: u64,
    /// Hash of the execution options ([`hash_exec_options`]).
    pub exec_hash: u64,
}

impl FootprintKey {
    /// The [`CellKey`]-shaped address used by every cache backend.
    pub fn cell_key(&self) -> CellKey {
        CellKey {
            suite_hash: self.suite_hash,
            stand_hash: self.plan_hash,
            dut_config_hash: self.dut_slice_hash,
            exec_hash: self.exec_hash,
        }
    }

    /// Computes the footprint key for one (entry, stand) cell under
    /// `options`: generates the suite's scripts, plans them on the stand,
    /// captures the footprint and keys it. Generation or planning failures
    /// fold into the footprint conservatively (see [`footprint_for_cell`]),
    /// so this never errors — it mirrors [`CellKey::for_cell`].
    pub fn for_cell(
        entry: &CampaignEntry<'_>,
        stand: &TestStand,
        options: &ExecOptions,
        salt: &str,
    ) -> Self {
        footprint_for_cell(entry, stand, salt)
            .key(hash_suite(entry.suite), hash_exec_options(options))
    }
}

impl fmt::Display for FootprintKey {
    /// Same fixed-width, filesystem-safe rendering as [`CellKey`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.cell_key().fmt(f)
    }
}

/// Folds one plan action's dependencies into the footprint sets.
fn collect_action(
    action: &Action,
    signals: &mut BTreeSet<String>,
    pins: &mut BTreeSet<String>,
    frames: &mut BTreeSet<u32>,
    resources: &mut BTreeSet<String>,
) {
    let (signal, kind, resource) = match action {
        Action::Apply {
            signal,
            kind,
            resource,
            ..
        } => (signal, kind, resource),
        Action::Check(check) => (&check.signal, &check.kind, &check.resource),
    };
    signals.insert(signal.key());
    resources.insert(resource.key());
    match kind {
        SignalKind::Pin { pins: signal_pins } => {
            for pin in signal_pins {
                pins.insert(pin.key());
            }
        }
        SignalKind::Can { frame, .. } => {
            frames.insert(frame.0);
        }
    }
}

/// Captures the dependency footprint of one cell from its resolved
/// execution plans (one `Result` per test, in suite order; `Err` carries
/// the planner's error message) and a freshly built device.
///
/// Conservative fallbacks keep the footprint at least as safe as full
/// keying: an errored plan hashes its error string (so the not-runnable
/// verdict is keyed by *why*), and any errored plan or any touched port
/// without a [`port_slice`](comptest_dut::Behavior::port_slice) makes the
/// DUT digest fold the whole device, exactly like [`hash_device`].
pub fn capture_footprint(
    plans: &[Result<&ExecutionPlan, &str>],
    device: &Device,
    salt: &str,
) -> Footprint {
    let mut signals = BTreeSet::new();
    let mut pins = BTreeSet::new();
    let mut frames = BTreeSet::new();
    let mut resources = BTreeSet::new();
    let mut complete = true;

    let mut plan_hasher = StableHasher::new();
    plan_hasher.write_u8(b'P');
    plan_hasher.write_str(salt);
    plan_hasher.write_usize(plans.len());
    for plan in plans {
        match plan {
            Ok(plan) => {
                plan_hasher.write_u8(1);
                plan_hasher.write_str(&format!("{plan:?}"));
                for action in plan
                    .init
                    .iter()
                    .chain(plan.steps.iter().flat_map(|s| s.actions.iter()))
                {
                    collect_action(action, &mut signals, &mut pins, &mut frames, &mut resources);
                }
            }
            Err(message) => {
                // A cell that cannot be planned still caches its
                // not-runnable outcome; key it by the message and fall
                // back to whole-device hashing below.
                plan_hasher.write_u8(2);
                plan_hasher.write_str(message);
                complete = false;
            }
        }
    }

    let mut dut_hasher = StableHasher::new();
    dut_hasher.write_u8(b'F');
    dut_hasher.write_str(salt);
    dut_hasher.write_str(&format!("{:?}", device.config()));
    dut_hasher.write_str(device.behavior_name());
    dut_hasher.write_usize(pins.len());
    for pin in &pins {
        dut_hasher.write_str(pin);
        match device.pin_binding_debug(pin) {
            Some((binding, port)) => {
                dut_hasher.write_u8(1);
                dut_hasher.write_str(&binding);
                match port {
                    Some(port) => match device.port_slice(port) {
                        Some(slice) => {
                            dut_hasher.write_u8(1);
                            dut_hasher.write_str(&slice);
                        }
                        None => complete = false,
                    },
                    // Return rails carry no behaviour state of their own.
                    None => dut_hasher.write_u8(0),
                }
            }
            // A pin the device does not bind (stand-side stimulus only).
            None => dut_hasher.write_u8(0),
        }
    }
    dut_hasher.write_usize(frames.len());
    for &frame in &frames {
        dut_hasher.write_u32(frame);
        let bindings = device.can_frame_bindings(comptest_model::CanFrameId(frame));
        dut_hasher.write_usize(bindings.len());
        for (start_bit, width, port, input) in bindings {
            dut_hasher.write_u8(start_bit);
            dut_hasher.write_u8(width);
            dut_hasher.write_str(port);
            dut_hasher.write_u8(u8::from(input));
            match device.port_slice(port) {
                Some(slice) => {
                    dut_hasher.write_u8(1);
                    dut_hasher.write_str(&slice);
                }
                None => complete = false,
            }
        }
    }
    if !complete {
        // Conservative fallback: hash the whole device, exactly what full
        // keying covers on the DUT axis.
        dut_hasher.write_u8(255);
        dut_hasher.write_str(&format!("{device:?}"));
    }

    Footprint {
        salt: salt.to_owned(),
        signals: signals.into_iter().collect(),
        pins: pins.into_iter().collect(),
        frames: frames.into_iter().collect(),
        resources: resources.into_iter().collect(),
        ecus: vec![device.behavior_name().to_owned()],
        plan_hash: plan_hasher.finish(),
        dut_slice_hash: dut_hasher.finish(),
    }
}

/// Captures the footprint for one (entry, stand) cell from scratch:
/// generates every test's script, plans it on the stand, builds one device
/// from the entry's factory, and delegates to [`capture_footprint`].
///
/// Infallible by design: script-generation and planning failures fold into
/// the plan digest as error strings and trigger the conservative
/// whole-device fallback, so a footprint always exists for every cell the
/// campaign will attempt. (The engine still surfaces codegen errors at
/// launch, before any job runs.)
pub fn footprint_for_cell(entry: &CampaignEntry<'_>, stand: &TestStand, salt: &str) -> Footprint {
    let device = entry.device_factory.build();
    let plans: Vec<Result<ExecutionPlan, String>> = entry
        .suite
        .tests
        .iter()
        .map(
            |test| match comptest_script::generate(entry.suite, &test.name) {
                Ok(script) => crate::campaign::plan_script(&script, stand),
                Err(e) => Err(e.to_string()),
            },
        )
        .collect();
    let plan_refs: Vec<Result<&ExecutionPlan, &str>> = plans
        .iter()
        .map(|r| match r {
            Ok(plan) => Ok(plan),
            Err(message) => Err(message.as_str()),
        })
        .collect();
    capture_footprint(&plan_refs, &device, salt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_model::SimTime;
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho

[test day_off]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Lo
";

    fn suite() -> TestSuite {
        Workbook::parse_str("wb.cts", WB).unwrap().suite
    }

    fn stand() -> TestStand {
        TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap()
    }

    #[test]
    fn reparsing_the_same_text_hashes_equal() {
        assert_eq!(hash_suite(&suite()), hash_suite(&suite()));
        assert_eq!(hash_stand(&stand()), hash_stand(&stand()));
    }

    #[test]
    fn structural_mutations_change_the_suite_hash() {
        let base = hash_suite(&suite());

        let mut renamed = suite();
        renamed.tests[0].name = "night_on_v2".into();
        assert_ne!(hash_suite(&renamed), base, "renamed test");

        let mut bound = suite();
        let mut ho = bound.statuses.get_str("Ho").unwrap().clone();
        ho.max = Some(1.2);
        bound.statuses.insert(ho);
        assert_ne!(hash_suite(&bound), base, "widened check bound");

        let mut reordered = suite();
        reordered.tests.swap(0, 1);
        assert_ne!(hash_suite(&reordered), base, "reordered tests");

        let mut dt = suite();
        dt.tests[0].steps[0].dt = SimTime::from_millis(600);
        assert_ne!(hash_suite(&dt), base, "changed step duration");
    }

    #[test]
    fn structural_mutations_change_the_stand_hash() {
        let base = hash_stand(&stand());

        let mut env = stand();
        env.env_mut().set("ubatt", 13.8);
        assert_ne!(hash_stand(&env), base, "supply voltage");

        let renamed =
            TestStand::parse_str("a.stand", &crate::PAPER_STAND_A.replace("HIL-A", "HIL-Z"))
                .unwrap();
        assert_ne!(hash_stand(&renamed), base, "renamed stand");

        let rewired = TestStand::parse_str(
            "a.stand",
            &crate::PAPER_STAND_A.replace("Mx1.2, Ress2,    DS_FL", "Mx1.2, Ress2,    DS_FR"),
        )
        .unwrap();
        assert_ne!(hash_stand(&rewired), base, "re-wired crosspoint");
    }

    #[test]
    fn script_hash_tracks_generated_content() {
        let suite = suite();
        let a = comptest_script::generate(&suite, "night_on").unwrap();
        let b = comptest_script::generate(&suite, "day_off").unwrap();
        assert_eq!(hash_script(&a), hash_script(&a));
        assert_ne!(hash_script(&a), hash_script(&b));
    }

    #[test]
    fn device_hash_distinguishes_configs() {
        use comptest_dut::ecus::interior_light;
        let a = interior_light::device(Default::default());
        let b = interior_light::device(Default::default());
        assert_eq!(hash_device(&a), hash_device(&b), "same config, same hash");
        let cfg = comptest_dut::ElectricalConfig {
            ubatt: 13.8,
            ..Default::default()
        };
        let c = interior_light::device(cfg);
        assert_ne!(hash_device(&a), hash_device(&c), "different supply rail");
    }

    #[test]
    fn exec_options_hash_covers_sampling_and_stop() {
        let base = hash_exec_options(&ExecOptions::default());
        let continuous = hash_exec_options(&ExecOptions {
            sample: SampleMode::Continuous {
                interval: SimTime::from_millis(100),
            },
            ..ExecOptions::default()
        });
        let stop = hash_exec_options(&ExecOptions {
            stop_on_failure: true,
            ..ExecOptions::default()
        });
        assert_ne!(base, continuous);
        assert_ne!(base, stop);
        assert_ne!(continuous, stop);
    }

    #[test]
    fn cell_key_display_is_filesystem_safe_and_fixed_width() {
        let key = CellKey {
            suite_hash: 1,
            stand_hash: 0xdead_beef,
            dut_config_hash: u64::MAX,
            exec_hash: 0,
        };
        let name = key.to_string();
        assert_eq!(name.len(), 16 * 4 + 3);
        assert!(name
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase() || c == '-'));
    }

    fn lamp_entry(suite: &TestSuite) -> CampaignEntry<'_> {
        CampaignEntry {
            suite,
            device_factory: Box::new(|| {
                comptest_dut::ecus::interior_light::device(Default::default())
            }),
        }
    }

    #[test]
    fn footprint_is_stable_and_salt_moves_it() {
        let suite = suite();
        let stand = stand();
        let entry = lamp_entry(&suite);
        let a = footprint_for_cell(&entry, &stand, "");
        let b = footprint_for_cell(&entry, &stand, "");
        assert_eq!(a, b, "footprints are a pure function of the cell");
        assert!(!a.signals.is_empty() && !a.pins.is_empty() && !a.resources.is_empty());
        assert_eq!(a.ecus, vec!["interior_light".to_owned()]);
        assert!(a.frames.contains(&0x2A0), "CAN-mapped NIGHT signal");

        let salted = footprint_for_cell(&entry, &stand, "fw-2");
        assert_ne!(a.plan_hash, salted.plan_hash, "salt moves the plan digest");
        assert_ne!(
            a.dut_slice_hash, salted.dut_slice_hash,
            "salt moves the DUT digest"
        );
        let options = ExecOptions::default();
        assert_ne!(
            FootprintKey::for_cell(&entry, &stand, &options, ""),
            FootprintKey::for_cell(&entry, &stand, &options, "fw-2"),
        );
    }

    #[test]
    fn footprint_ignores_unused_stand_env_vars() {
        let suite = suite();
        let stand = stand();
        let entry = lamp_entry(&suite);
        let base = footprint_for_cell(&entry, &stand, "");

        // An env var no plan evaluates is outside the footprint...
        let mut extra = stand.clone();
        extra.env_mut().set("unrelated_var", 42.0);
        assert_eq!(footprint_for_cell(&entry, &extra, ""), base);
        assert_ne!(
            hash_stand(&stand),
            hash_stand(&extra),
            "full keying re-tests on the same edit"
        );

        // ...while the supply rail the get_u checks scale against is not.
        let mut supply = stand.clone();
        supply.env_mut().set("ubatt", 13.8);
        assert_ne!(
            footprint_for_cell(&entry, &supply, "").plan_hash,
            base.plan_hash
        );
    }

    #[test]
    fn footprint_key_never_aliases_full_key() {
        let suite = suite();
        let stand = stand();
        let entry = lamp_entry(&suite);
        let options = ExecOptions::default();
        let full = CellKey::for_cell(&entry, &stand, &options);
        let footprint = FootprintKey::for_cell(&entry, &stand, &options, "");
        assert_eq!(footprint.suite_hash, full.suite_hash);
        assert_eq!(footprint.exec_hash, full.exec_hash);
        assert_ne!(footprint.cell_key(), full, "disjoint hash domains");
        assert_eq!(footprint.to_string().len(), 16 * 4 + 3);
    }

    #[test]
    fn unplannable_cells_still_get_a_footprint() {
        let suite = suite();
        // A stand with no resources cannot plan anything.
        let bare = TestStand::new("bare", Env::with_ubatt(12.0));
        let entry = lamp_entry(&suite);
        let a = footprint_for_cell(&entry, &bare, "");
        let b = footprint_for_cell(&entry, &bare, "");
        assert_eq!(a, b);
        assert!(a.signals.is_empty(), "nothing planned, nothing touched");
    }

    #[test]
    fn hasher_tags_separate_adjacent_fields() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut z = StableHasher::new();
        z.write_f64(-0.0);
        let mut p = StableHasher::new();
        p.write_f64(0.0);
        assert_eq!(z.finish(), p.finish(), "-0.0 normalises to 0.0");
    }
}
