//! Stable structural hashing for campaign caching.
//!
//! A regression campaign re-runs the same workbook suites against the same
//! stands over and over; most cells are byte-identical re-executions. To
//! skip them safely, a cache must key each cell by *content*: the same
//! suite, stand and DUT configuration must hash to the same [`CellKey`]
//! on every run — and any structural change (a renamed test, a widened
//! check bound, a reordered step, a re-wired matrix crosspoint) must
//! change it. Compositional-testing theory backs exactly this notion:
//! re-verification of a component can be skipped as long as its interface
//! contract is unchanged.
//!
//! The hashes here are therefore **structural and deliberately stable**:
//!
//! * only the declarative content is hashed — wall-clock timestamps,
//!   event-arrival ordering, worker counts and scheduling granularity are
//!   all excluded, so a serial, pooled and async run of the same campaign
//!   key identically;
//! * the hash function is a fixed FNV-1a (no per-process randomisation, no
//!   dependence on `std`'s hasher internals), so keys survive process
//!   restarts and are usable as on-disk file names;
//! * every field is tagged and strings are length-prefixed, so adjacent
//!   fields cannot melt into each other (`("ab", "c")` ≠ `("a", "bc")`);
//! * identifier names hash through their canonical case-insensitive
//!   [`key()`](comptest_model::SignalName::key) form, matching how the
//!   rest of the toolchain compares them.

use std::fmt;

use comptest_dut::Device;
use comptest_model::{Env, SignalDef, SignalKind, StatusDef, TestSuite};
use comptest_script::TestScript;
use comptest_stand::TestStand;

use crate::campaign::{CampaignEntry, DeviceFactory};
use crate::exec::{ExecOptions, SampleMode};

/// A stable streaming hasher: 64-bit FNV-1a with field tagging.
///
/// Unlike [`std::hash::Hasher`] implementations, the output is guaranteed
/// stable across processes, platforms and Rust versions — it is pure
/// arithmetic over the bytes written. Collisions are possible (64 bits),
/// but a collision only ever *reuses* a cached outcome; `--cache-verify`
/// exists to audit exactly that.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte (field tags).
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64`, so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Feeds an `f64` through its IEEE-754 bit pattern (`-0.0` is
    /// normalised to `0.0` so the two structurally equal spellings agree).
    pub fn write_f64(&mut self, v: f64) {
        let v = if v == 0.0 { 0.0 } else { v };
        self.write_u64(v.to_bits());
    }

    /// Feeds an optional `f64` with a presence tag.
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.write_u8(1);
                self.write_f64(v);
            }
            None => self.write_u8(0),
        }
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes one environment (sorted by canonical variable name, so insertion
/// order is irrelevant — it is not part of the stand's structure).
fn write_env(h: &mut StableHasher, env: &Env) {
    let mut vars: Vec<(String, f64)> = env
        .iter()
        .map(|(name, value)| (name.to_ascii_lowercase(), value))
        .collect();
    vars.sort_by(|a, b| a.0.cmp(&b.0));
    h.write_usize(vars.len());
    for (name, value) in vars {
        h.write_str(&name);
        h.write_f64(value);
    }
}

fn write_signal_kind(h: &mut StableHasher, kind: &SignalKind) {
    match kind {
        SignalKind::Pin { pins } => {
            h.write_u8(1);
            h.write_usize(pins.len());
            for pin in pins {
                h.write_str(&pin.key());
            }
        }
        SignalKind::Can {
            frame,
            start_bit,
            width,
        } => {
            h.write_u8(2);
            h.write_u32(frame.0);
            h.write_u8(*start_bit);
            h.write_u8(*width);
        }
    }
}

fn write_signal_def(h: &mut StableHasher, sig: &SignalDef) {
    h.write_str(&sig.name.key());
    write_signal_kind(h, &sig.kind);
    h.write_u8(match sig.direction {
        comptest_model::SignalDirection::Input => 0,
        comptest_model::SignalDirection::Output => 1,
    });
    match &sig.init {
        Some(init) => {
            h.write_u8(1);
            h.write_str(&init.key());
        }
        None => h.write_u8(0),
    }
    // The free-text description is documentation, not structure: two suites
    // differing only in prose verify the same contract.
}

fn write_status_def(h: &mut StableHasher, def: &StatusDef) {
    h.write_str(&def.name.key());
    h.write_str(&def.method.key());
    h.write_str(&def.attribut.to_ascii_lowercase());
    match &def.var {
        Some(var) => {
            h.write_u8(1);
            h.write_str(&var.to_ascii_lowercase());
        }
        None => h.write_u8(0),
    }
    h.write_opt_f64(def.nom);
    h.write_opt_f64(def.min);
    h.write_opt_f64(def.max);
    match def.bits {
        Some(bits) => {
            h.write_u8(1);
            h.write_u64(bits.bits());
            h.write_u8(bits.width());
        }
        None => h.write_u8(0),
    }
    h.write_opt_f64(def.d1);
    h.write_opt_f64(def.d2);
    h.write_opt_f64(def.d3);
}

/// Stable structural hash of a test suite: name, signal sheet, status
/// table and every test's step sequence — everything that feeds script
/// generation. Step *order* is structure (reordering steps changes the
/// executed stimulus sequence) and is hashed; step remarks carry
/// requirement tags into reports but do not alter execution, yet they are
/// part of the exchanged sheet and are hashed too, conservatively.
pub fn hash_suite(suite: &TestSuite) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'S');
    h.write_str(&suite.name);
    h.write_usize(suite.signals.len());
    for sig in &suite.signals {
        write_signal_def(&mut h, sig);
    }
    h.write_usize(suite.statuses.len());
    for def in suite.statuses.iter() {
        write_status_def(&mut h, def);
    }
    h.write_usize(suite.tests.len());
    for test in &suite.tests {
        h.write_str(&test.name);
        h.write_usize(test.steps.len());
        for step in &test.steps {
            h.write_u32(step.nr);
            h.write_u64(step.dt.as_micros());
            h.write_usize(step.assignments.len());
            for a in &step.assignments {
                h.write_str(&a.signal.key());
                h.write_str(&a.status.key());
            }
            h.write_str(&step.remark);
        }
    }
    h.finish()
}

/// Stable structural hash of a test stand: name, environment (sorted),
/// resources with capabilities and capacities, and the full connection
/// matrix in declaration order.
pub fn hash_stand(stand: &TestStand) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'T');
    h.write_str(stand.name());
    write_env(&mut h, stand.env());
    h.write_usize(stand.resources().len());
    for resource in stand.resources() {
        h.write_str(&resource.id.key());
        h.write_usize(resource.capacity);
        h.write_usize(resource.capabilities.len());
        for cap in &resource.capabilities {
            h.write_str(&cap.method.key());
            h.write_str(&cap.attribut.to_ascii_lowercase());
            h.write_f64(cap.min);
            h.write_f64(cap.max);
            h.write_str(&cap.unit.to_string());
        }
    }
    let connections = stand.matrix().connections();
    h.write_usize(connections.len());
    for c in connections {
        h.write_str(&c.point.key());
        h.write_str(&c.resource.key());
        h.write_str(&c.pin.key());
    }
    h.finish()
}

/// Stable hash of a generated test script, over its canonical XML
/// serialisation — the exchange format *is* the script's identity.
pub fn hash_script(script: &TestScript) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'X');
    h.write_str(&script.to_xml());
    h.finish()
}

/// Stable hash of a freshly built DUT: its behaviour, electrical
/// configuration, pin/CAN bindings and power-on state, via the device's
/// structural [`Debug`] rendering at simulated time zero. Wall-clock never
/// enters a freshly built device, so the hash is reproducible across runs;
/// two factories building structurally identical devices key identically.
///
/// This makes the *derived, exhaustive* `Debug` of [`Device`] and of every
/// [`Behavior`](comptest_dut::Behavior) implementation part of the
/// cache-key contract: a hand-written `Debug` that elides fields (e.g. via
/// `finish_non_exhaustive`) would let structurally different DUT configs
/// collide on this digest and serve each other's cached outcomes —
/// detectable only by `--cache-verify`. Keep device/behaviour `Debug`
/// derived (or field-complete), or extend this function with explicit
/// accessors instead.
pub fn hash_device(device: &Device) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'D');
    h.write_str(&format!("{device:?}"));
    h.finish()
}

/// Stable hash of the per-test execution options. Sampling mode and
/// stop-on-failure change the *content* of a test result (which samples
/// were taken, whether later steps ran), so outcomes cached under one
/// option set must never serve a campaign running another.
pub fn hash_exec_options(options: &ExecOptions) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(b'O');
    match options.sample {
        SampleMode::EndOfStep => h.write_u8(0),
        SampleMode::Continuous { interval } => {
            h.write_u8(1);
            h.write_u64(interval.as_micros());
        }
    }
    h.write_u8(u8::from(options.stop_on_failure));
    h.finish()
}

/// The content address of one campaign cell: what ran (`suite_hash`),
/// where (`stand_hash`), against which component (`dut_config_hash`) and
/// under which execution options (`exec_hash`).
///
/// Everything that can change a cell's outcome is folded into these four
/// digests; everything that cannot — executor choice, worker count,
/// scheduling granularity, event ordering, wall-clock — is deliberately
/// excluded, so a serial, pooled and async run of the same campaign hit
/// the same cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey {
    /// Structural hash of the test suite ([`hash_suite`]).
    pub suite_hash: u64,
    /// Structural hash of the test stand ([`hash_stand`]).
    pub stand_hash: u64,
    /// Hash of the freshly built DUT ([`hash_device`]).
    pub dut_config_hash: u64,
    /// Hash of the execution options ([`hash_exec_options`]).
    pub exec_hash: u64,
}

impl CellKey {
    /// Computes the key for one (entry, stand) cell under `options`. Builds
    /// one device from the entry's factory to fingerprint the DUT config.
    pub fn for_cell(entry: &CampaignEntry<'_>, stand: &TestStand, options: &ExecOptions) -> Self {
        Self {
            suite_hash: hash_suite(entry.suite),
            stand_hash: hash_stand(stand),
            dut_config_hash: hash_device(&entry.device_factory.build()),
            exec_hash: hash_exec_options(options),
        }
    }

    /// Computes the key from pre-computed suite/stand digests (so a
    /// campaign-wide key sweep hashes each suite and stand once, not once
    /// per cell).
    pub fn from_hashes(
        suite_hash: u64,
        stand_hash: u64,
        factory: &dyn DeviceFactory,
        options: &ExecOptions,
    ) -> Self {
        Self {
            suite_hash,
            stand_hash,
            dut_config_hash: hash_device(&factory.build()),
            exec_hash: hash_exec_options(options),
        }
    }
}

impl fmt::Display for CellKey {
    /// Renders the key as a fixed-width, filesystem-safe name:
    /// `<suite>-<stand>-<dut>-<exec>`, 16 lowercase hex digits each.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}-{:016x}-{:016x}-{:016x}",
            self.suite_hash, self.stand_hash, self.dut_config_hash, self.exec_hash
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_model::SimTime;
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho

[test day_off]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Lo
";

    fn suite() -> TestSuite {
        Workbook::parse_str("wb.cts", WB).unwrap().suite
    }

    fn stand() -> TestStand {
        TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap()
    }

    #[test]
    fn reparsing_the_same_text_hashes_equal() {
        assert_eq!(hash_suite(&suite()), hash_suite(&suite()));
        assert_eq!(hash_stand(&stand()), hash_stand(&stand()));
    }

    #[test]
    fn structural_mutations_change_the_suite_hash() {
        let base = hash_suite(&suite());

        let mut renamed = suite();
        renamed.tests[0].name = "night_on_v2".into();
        assert_ne!(hash_suite(&renamed), base, "renamed test");

        let mut bound = suite();
        let mut ho = bound.statuses.get_str("Ho").unwrap().clone();
        ho.max = Some(1.2);
        bound.statuses.insert(ho);
        assert_ne!(hash_suite(&bound), base, "widened check bound");

        let mut reordered = suite();
        reordered.tests.swap(0, 1);
        assert_ne!(hash_suite(&reordered), base, "reordered tests");

        let mut dt = suite();
        dt.tests[0].steps[0].dt = SimTime::from_millis(600);
        assert_ne!(hash_suite(&dt), base, "changed step duration");
    }

    #[test]
    fn structural_mutations_change_the_stand_hash() {
        let base = hash_stand(&stand());

        let mut env = stand();
        env.env_mut().set("ubatt", 13.8);
        assert_ne!(hash_stand(&env), base, "supply voltage");

        let renamed =
            TestStand::parse_str("a.stand", &crate::PAPER_STAND_A.replace("HIL-A", "HIL-Z"))
                .unwrap();
        assert_ne!(hash_stand(&renamed), base, "renamed stand");

        let rewired = TestStand::parse_str(
            "a.stand",
            &crate::PAPER_STAND_A.replace("Mx1.2, Ress2,    DS_FL", "Mx1.2, Ress2,    DS_FR"),
        )
        .unwrap();
        assert_ne!(hash_stand(&rewired), base, "re-wired crosspoint");
    }

    #[test]
    fn script_hash_tracks_generated_content() {
        let suite = suite();
        let a = comptest_script::generate(&suite, "night_on").unwrap();
        let b = comptest_script::generate(&suite, "day_off").unwrap();
        assert_eq!(hash_script(&a), hash_script(&a));
        assert_ne!(hash_script(&a), hash_script(&b));
    }

    #[test]
    fn device_hash_distinguishes_configs() {
        use comptest_dut::ecus::interior_light;
        let a = interior_light::device(Default::default());
        let b = interior_light::device(Default::default());
        assert_eq!(hash_device(&a), hash_device(&b), "same config, same hash");
        let cfg = comptest_dut::ElectricalConfig {
            ubatt: 13.8,
            ..Default::default()
        };
        let c = interior_light::device(cfg);
        assert_ne!(hash_device(&a), hash_device(&c), "different supply rail");
    }

    #[test]
    fn exec_options_hash_covers_sampling_and_stop() {
        let base = hash_exec_options(&ExecOptions::default());
        let continuous = hash_exec_options(&ExecOptions {
            sample: SampleMode::Continuous {
                interval: SimTime::from_millis(100),
            },
            ..ExecOptions::default()
        });
        let stop = hash_exec_options(&ExecOptions {
            stop_on_failure: true,
            ..ExecOptions::default()
        });
        assert_ne!(base, continuous);
        assert_ne!(base, stop);
        assert_ne!(continuous, stop);
    }

    #[test]
    fn cell_key_display_is_filesystem_safe_and_fixed_width() {
        let key = CellKey {
            suite_hash: 1,
            stand_hash: 0xdead_beef,
            dut_config_hash: u64::MAX,
            exec_hash: 0,
        };
        let name = key.to_string();
        assert_eq!(name.len(), 16 * 4 + 3);
        assert!(name
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase() || c == '-'));
    }

    #[test]
    fn hasher_tags_separate_adjacent_fields() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut z = StableHasher::new();
        z.write_f64(-0.0);
        let mut p = StableHasher::new();
        p.write_f64(0.0);
        assert_eq!(z.finish(), p.finish(), "-0.0 normalises to 0.0");
    }
}
