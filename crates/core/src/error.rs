//! Engine-level errors.

use std::error::Error;
use std::fmt;

use comptest_script::CodegenError;
use comptest_stand::StandError;

/// Any error raised while assembling or running the pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Script generation failed (invalid suite / unknown test).
    Codegen(CodegenError),
    /// Stand-side planning failed (allocation, statement resolution).
    Stand(StandError),
    /// The healthy reference run of a fault campaign did not pass, so fault
    /// detection results would be meaningless.
    UnhealthyReference {
        /// The failing test.
        test: String,
        /// Its verdict summary.
        summary: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Codegen(e) => e.fmt(f),
            CoreError::Stand(e) => e.fmt(f),
            CoreError::UnhealthyReference { test, summary } => write!(
                f,
                "reference (fault-free) run of {test} did not pass: {summary}"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Codegen(e) => Some(e),
            CoreError::Stand(e) => Some(e),
            CoreError::UnhealthyReference { .. } => None,
        }
    }
}

impl From<CodegenError> for CoreError {
    fn from(e: CodegenError) -> Self {
        CoreError::Codegen(e)
    }
}

impl From<StandError> for CoreError {
    fn from(e: StandError) -> Self {
        CoreError::Stand(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::UnhealthyReference {
            test: "smoke".into(),
            summary: "FAIL".into(),
        };
        assert!(e.to_string().contains("smoke"));
        assert!(e.source().is_none());
        let e: CoreError = StandError::UnknownSignal { signal: "x".into() }.into();
        assert!(e.source().is_some());
    }
}
