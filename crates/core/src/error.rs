//! Engine-level errors.

use std::error::Error;
use std::fmt;

use comptest_script::CodegenError;
use comptest_stand::StandError;

use crate::campaign::CampaignSpecError;

/// Any error raised while assembling or running the pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Script generation failed (invalid suite / unknown test).
    Codegen(CodegenError),
    /// The campaign description itself is invalid (no entries, no stands,
    /// duplicate stand names) — rejected by validation before any job runs.
    InvalidCampaign(CampaignSpecError),
    /// Stand-side planning failed (allocation, statement resolution).
    Stand(StandError),
    /// The healthy reference run of a fault campaign did not pass, so fault
    /// detection results would be meaningless.
    UnhealthyReference {
        /// The failing test.
        test: String,
        /// Its verdict summary.
        summary: String,
    },
    /// Scheduled jobs produced no outcome although no cancellation was
    /// requested — a worker died mid-job (e.g. a panic in the DUT model).
    /// Raised instead of returning a silently truncated result.
    JobsLost {
        /// Number of jobs with no outcome.
        lost: usize,
        /// Labels (`suite::test` or `suite @ stand`) of the lost jobs when
        /// the executor can attribute them; empty when unknown.
        jobs: Vec<String>,
    },
    /// A campaign cache could not be opened (unusable directory, not a
    /// directory, permissions). Raised when the cache is *configured*, not
    /// per entry — a corrupt or missing cache entry is a miss, never an
    /// error.
    Cache {
        /// Human-readable description of the problem.
        message: String,
    },
    /// `cache_verify` audit mode re-executed cached cells and at least one
    /// cached outcome no longer matched the fresh execution — the cache is
    /// stale or the hashing missed an input.
    CacheMismatch {
        /// Number of mismatching cached outcomes.
        mismatches: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Codegen(e) => e.fmt(f),
            CoreError::InvalidCampaign(e) => e.fmt(f),
            CoreError::Stand(e) => e.fmt(f),
            CoreError::UnhealthyReference { test, summary } => write!(
                f,
                "reference (fault-free) run of {test} did not pass: {summary}"
            ),
            CoreError::JobsLost { lost, jobs } => {
                write!(
                    f,
                    "{lost} campaign job(s) produced no outcome without cancellation \
                     (worker died mid-job?)"
                )?;
                if !jobs.is_empty() {
                    let shown = jobs.iter().take(4).cloned().collect::<Vec<_>>().join(", ");
                    write!(f, ": {shown}")?;
                    if jobs.len() > 4 {
                        write!(f, ", …")?;
                    }
                }
                Ok(())
            }
            CoreError::Cache { message } => write!(f, "campaign cache unusable: {message}"),
            CoreError::CacheMismatch { mismatches } => write!(
                f,
                "cache verification failed: {mismatches} cached outcome(s) diverged from \
                 fresh execution (stale cache or un-keyed input?)"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Codegen(e) => Some(e),
            CoreError::InvalidCampaign(e) => Some(e),
            CoreError::Stand(e) => Some(e),
            CoreError::UnhealthyReference { .. }
            | CoreError::JobsLost { .. }
            | CoreError::Cache { .. }
            | CoreError::CacheMismatch { .. } => None,
        }
    }
}

impl From<CodegenError> for CoreError {
    fn from(e: CodegenError) -> Self {
        CoreError::Codegen(e)
    }
}

impl From<StandError> for CoreError {
    fn from(e: StandError) -> Self {
        CoreError::Stand(e)
    }
}

impl From<CampaignSpecError> for CoreError {
    fn from(e: CampaignSpecError) -> Self {
        CoreError::InvalidCampaign(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::UnhealthyReference {
            test: "smoke".into(),
            summary: "FAIL".into(),
        };
        assert!(e.to_string().contains("smoke"));
        assert!(e.source().is_none());
        let e: CoreError = StandError::UnknownSignal { signal: "x".into() }.into();
        assert!(e.source().is_some());
        let e = CoreError::JobsLost {
            lost: 3,
            jobs: vec![],
        };
        assert!(e.to_string().contains("3 campaign job(s)"));
        assert!(e.source().is_none());
        let e = CoreError::JobsLost {
            lost: 1,
            jobs: vec!["lights::night".into()],
        };
        assert!(e.to_string().contains("lights::night"));
        let e: CoreError = CampaignSpecError::NoEntries.into();
        assert!(e.to_string().contains("no entries"));
        assert!(e.source().is_some());
    }
}
