//! Execution traces: a time-ordered log of everything the engine did.

use std::fmt;

use comptest_model::{SignalName, SimTime};
use comptest_stand::AppliedValue;

use crate::verdict::Measured;

/// One trace entry.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A stimulus was applied.
    Applied {
        /// When.
        at: SimTime,
        /// To which signal.
        signal: SignalName,
        /// Through which resource.
        resource: String,
        /// The concrete value.
        value: AppliedValue,
    },
    /// A measurement was taken.
    Measured {
        /// When.
        at: SimTime,
        /// On which signal.
        signal: SignalName,
        /// Through which resource.
        resource: String,
        /// The value read.
        value: Measured,
    },
    /// A step boundary.
    StepEnd {
        /// Step number.
        nr: u32,
        /// Step end time.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Applied { at, .. }
            | TraceEvent::Measured { at, .. }
            | TraceEvent::StepEnd { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Applied {
                at,
                signal,
                resource,
                value,
            } => write!(f, "{at:>12} apply   {signal} = {value} via {resource}"),
            TraceEvent::Measured {
                at,
                signal,
                resource,
                value,
            } => write!(f, "{at:>12} measure {signal} -> {value} via {resource}"),
            TraceEvent::StepEnd { nr, at } => write!(f, "{at:>12} ---- end of step {nr} ----"),
        }
    }
}

/// The ordered event log of one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (events must be pushed in time order; the engine
    /// does so by construction).
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_render() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(TraceEvent::Applied {
            at: SimTime::ZERO,
            signal: SignalName::new("ds_fl").unwrap(),
            resource: "Ress2".into(),
            value: AppliedValue::Num(0.0),
        });
        t.push(TraceEvent::Measured {
            at: SimTime::from_millis(500),
            signal: SignalName::new("int_ill").unwrap(),
            resource: "Ress1".into(),
            value: Measured::Num(12.0),
        });
        t.push(TraceEvent::StepEnd {
            nr: 0,
            at: SimTime::from_millis(500),
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].at(), SimTime::ZERO);
        let text = t.to_string();
        assert!(text.contains("apply   ds_fl = 0 via Ress2"));
        assert!(text.contains("measure int_ill -> 12 via Ress1"));
        assert!(text.contains("end of step 0"));
        assert_eq!(t.iter().count(), 3);
        assert_eq!((&t).into_iter().count(), 3);
    }
}
