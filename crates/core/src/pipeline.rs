//! Convenience front end: suite → script → plan → execution in one call.

use comptest_dut::Device;
use comptest_model::TestSuite;
use comptest_script::generate;
use comptest_stand::{plan, TestStand};

use crate::error::CoreError;
use crate::exec::{execute, ExecOptions};
use crate::verdict::{SuiteResult, TestResult};

/// Runs one named test of a suite on a stand against a device.
///
/// # Errors
///
/// Returns [`CoreError`] when generation or planning fails; execution
/// problems are reported inside the [`TestResult`], not as errors.
pub fn run_test(
    suite: &TestSuite,
    test_name: &str,
    stand: &TestStand,
    device: &mut Device,
    options: &ExecOptions,
) -> Result<TestResult, CoreError> {
    let script = generate(suite, test_name)?;
    let plan = plan(&script, stand)?;
    Ok(execute(&plan, device, options))
}

/// Runs every test of a suite on a stand, with a fresh device per test.
///
/// `device_factory` is called once per test so state never leaks between
/// tests (the paper's stands power-cycle the DUT between runs).
///
/// # Errors
///
/// Returns [`CoreError`] when generation or planning fails for any test.
pub fn run_suite(
    suite: &TestSuite,
    stand: &TestStand,
    mut device_factory: impl FnMut() -> Device,
    options: &ExecOptions,
) -> Result<SuiteResult, CoreError> {
    let mut results = Vec::new();
    for test in &suite.tests {
        let mut device = device_factory();
        results.push(run_test(suite, &test.name, stand, &mut device, options)?);
    }
    Ok(SuiteResult {
        suite: suite.name.clone(),
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_dut::ecus::interior_light;
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = demo

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test lamp_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho

[test lamp_off_day]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Lo
";

    #[test]
    fn run_suite_end_to_end() {
        let wb = Workbook::parse_str("demo.cts", WB).unwrap();
        let stand = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let result = run_suite(
            &wb.suite,
            &stand,
            || interior_light::device(Default::default()),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(result.results.len(), 2);
        assert_eq!(result.counts(), (2, 0, 0), "{result:?}");
    }

    #[test]
    fn unknown_test_surfaces_as_codegen_error() {
        let wb = Workbook::parse_str("demo.cts", WB).unwrap();
        let stand = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let mut dut = interior_light::device(Default::default());
        let err =
            run_test(&wb.suite, "nope", &stand, &mut dut, &ExecOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::Codegen(_)));
    }
}
