//! The component-test execution engine — the paper's toolchain, assembled.
//!
//! `comptest-core` glues the substrate crates together into the workflow of
//! Brinkmeyer (*A New Approach to Component Testing*, DATE 2005):
//!
//! 1. sheets (`comptest-sheets`) define suites;
//! 2. code generation (`comptest-script`) turns tests into portable XML;
//! 3. a stand (`comptest-stand`) plans the script onto its own resources;
//! 4. this crate *executes* the plan against a simulated DUT
//!    (`comptest-dut`), producing verdicts, traces and reports.
//!
//! On top of single-test execution it provides the evaluation machinery of
//! the reproduction: [`campaign`] (many suites × stands × devices),
//! [`faultcamp`] (fault-injection coverage), [`portability`] (which suites
//! run on which stands) and [`coverage`] (requirement-tag coverage).
//!
//! # Example — the full pipeline on one test
//!
//! ```
//! use comptest_core::{execute, ExecOptions};
//! use comptest_dut::ecus::interior_light;
//! use comptest_sheets::Workbook;
//! use comptest_script::generate;
//! use comptest_stand::{plan, TestStand};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wb = Workbook::parse_str("demo.cts", "\
//! [signals]
//! name,    kind,                     direction, init
//! DS_FL,   pin:DS_FL,                input,     Closed
//! NIGHT,   can:0x2A0:0:1,            input,     0
//! INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,
//!
//! [status]
//! status, method,  attribut, var,   nom, min,  max
//! Open,   put_r,   r,        ,      0,   0,    2
//! Closed, put_r,   r,        ,      INF, 5000, INF
//! 0,      put_can, data,     ,      0B,  ,
//! 1,      put_can, data,     ,      1B,  ,
//! Lo,     get_u,   u,        UBATT, 0,   0,    0.3
//! Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1
//!
//! [test smoke]
//! step, dt,  DS_FL, NIGHT, INT_ILL
//! 0,    0.5, Open,  1,     Ho
//! 1,    0.5, Closed,,      Lo
//! ")?;
//! let script = generate(&wb.suite, "smoke")?;
//! let stand = TestStand::parse_str("a.stand", comptest_core::PAPER_STAND_A)?;
//! let plan = plan(&script, &stand)?;
//! let mut dut = interior_light::device(Default::default());
//! let result = execute(&plan, &mut dut, &ExecOptions::default());
//! assert!(result.passed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod coverage;
pub mod error;
pub mod exec;
pub mod faultcamp;
pub mod hash;
pub mod pipeline;
pub mod portability;
pub mod service;
pub mod sweep;
pub mod trace;
pub mod verdict;

pub use error::CoreError;
pub use exec::{execute, ExecOptions, RunState, SampleMode, StepProbe, TestRun};
pub use hash::{hash_device, hash_exec_options, hash_script, hash_stand, hash_suite, CellKey};
pub use pipeline::{run_suite, run_test};
pub use trace::{Trace, TraceEvent};
pub use verdict::{CheckResult, Measured, StepResult, SuiteResult, TestResult, Verdict};

/// The paper's stand A description (Section 4's resource and matrix tables,
/// with the normalisations documented in DESIGN.md). Also available on disk
/// as `assets/stand_a.stand`; embedded here so doctests and benches need no
/// file I/O.
pub const PAPER_STAND_A: &str = "\
[stand]
name = HIL-A
ubatt = 12.0

[resources]
id,    method,  attribut, min, max,      unit, capacity
Ress1, get_u,   u,        -60, 60,       V,
Ress2, put_r,   r,        0,   1.00E+06, Ohm,
Ress3, put_r,   r,        0,   2.00E+05, Ohm,
Can1,  put_can, data,     ,    ,         ,     16
Can1,  get_can, data,     ,    ,         ,

[matrix]
point, resource, pin
Sw1.1, Ress1,    INT_ILL_F
Sw1.2, Ress1,    INT_ILL_R
Mx1.2, Ress2,    DS_FL
Mx2.2, Ress2,    DS_FR
Mx3.2, Ress2,    DS_RL
Mx4.2, Ress2,    DS_RR
Mx1.1, Ress3,    DS_FL
Mx2.1, Ress3,    DS_FR
Mx3.1, Ress3,    DS_RL
Mx4.1, Ress3,    DS_RR
Port1, Can1,     CAN0
";
