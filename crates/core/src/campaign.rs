//! Campaigns: many suites × stands × devices in one run.
//!
//! Section 5 of the paper reports the method "successfully applied to two
//! ECUs of the next S-class"; a campaign is that evaluation shape — every
//! suite executed against its matching DUT on every stand, with a summary
//! matrix.
//!
//! Campaign cells are independent of each other (a suite's verdict on one
//! stand never feeds into another cell), which makes the matrix
//! embarrassingly parallel. This module owns the *planning* half — the
//! deterministic cell ordering ([`plan_cells`]), the per-cell runner
//! ([`run_cell`]) and the serial driver ([`run_campaign`]) — while the
//! `comptest-engine` crate adds the sharded worker pool that executes the
//! same job list concurrently.

use std::fmt;

use comptest_dut::Device;
use comptest_model::TestSuite;
use comptest_stand::TestStand;

use crate::error::CoreError;
use crate::exec::ExecOptions;
use crate::pipeline::run_suite;
use crate::verdict::{SuiteResult, Verdict};

/// Builds a fresh DUT per test execution.
///
/// `Send + Sync` so campaign cells can execute on worker threads; the
/// blanket impl keeps closure call sites terse
/// (`Box::new(|| interior_light::device(Default::default()))`).
pub trait DeviceFactory: Send + Sync {
    /// Builds a fresh device (the paper's stands power-cycle the DUT
    /// between runs, so state never leaks between tests).
    fn build(&self) -> Device;
}

impl<F> DeviceFactory for F
where
    F: Fn() -> Device + Send + Sync,
{
    fn build(&self) -> Device {
        self()
    }
}

/// One campaign entry: a suite and the factory building its DUT.
pub struct CampaignEntry<'a> {
    /// The test suite.
    pub suite: &'a TestSuite,
    /// Builds a fresh DUT for each test.
    pub device_factory: Box<dyn DeviceFactory + 'a>,
}

impl fmt::Debug for CampaignEntry<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignEntry")
            .field("suite", &self.suite.name)
            .finish_non_exhaustive()
    }
}

/// One cell of the campaign matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Suite name.
    pub suite: String,
    /// Stand name.
    pub stand: String,
    /// The suite result, or the planning error that prevented execution.
    pub outcome: Result<SuiteResult, String>,
}

impl CampaignCell {
    /// A short status string for tables. Planning failures surface the
    /// first line of the error (truncated) so a matrix printout says *why*
    /// a cell could not run, not just that it could not.
    pub fn status(&self) -> String {
        match &self.outcome {
            Ok(r) => {
                let (p, f, e) = r.counts();
                format!("{} ({p}P/{f}F/{e}E)", r.verdict())
            }
            Err(reason) => {
                let first = reason.lines().next().unwrap_or("").trim();
                if first.is_empty() {
                    return "NOT RUNNABLE".to_owned();
                }
                const LIMIT: usize = 60;
                let mut short: String = first.chars().take(LIMIT).collect();
                if first.chars().count() > LIMIT {
                    short.push('…');
                }
                format!("NOT RUNNABLE ({short})")
            }
        }
    }

    /// True when the cell executed and every check passed.
    pub fn passed(&self) -> bool {
        matches!(&self.outcome, Ok(r) if r.verdict() == Verdict::Pass)
    }
}

/// The campaign result matrix.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CampaignResult {
    /// All cells, suites major, stands minor.
    pub cells: Vec<CampaignCell>,
}

impl CampaignResult {
    /// True if the matrix is non-empty, every cell was runnable and every
    /// runnable cell passed. An empty matrix is *not* green: a campaign
    /// that ran nothing has verified nothing.
    pub fn all_green(&self) -> bool {
        !self.cells.is_empty() && self.cells.iter().all(CampaignCell::passed)
    }

    /// Total `(passed, failed, errored, not_runnable)` across the matrix.
    pub fn totals(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for c in &self.cells {
            match &c.outcome {
                Ok(r) => {
                    let (p, f, e) = r.counts();
                    t.0 += p;
                    t.1 += f;
                    t.2 += e;
                }
                Err(_) => t.3 += 1,
            }
        }
        t
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cell in &self.cells {
            writeln!(
                f,
                "{:<20} on {:<12} {}",
                cell.suite,
                cell.stand,
                cell.status()
            )?;
        }
        Ok(())
    }
}

/// One schedulable unit of a campaign: a (suite, stand) pair together with
/// its position in the deterministic result matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellJob {
    /// Index into the result matrix (entry-major, stand-minor).
    pub cell: usize,
    /// Index of the [`CampaignEntry`].
    pub entry: usize,
    /// Index into the stand list.
    pub stand: usize,
}

/// Shards the suite × stand matrix into independent jobs in the canonical
/// cell order (entries major, stands minor). Both the serial driver and the
/// parallel engine schedule from this list, so results merge back into the
/// same [`CampaignResult`] ordering regardless of completion order.
pub fn plan_cells(entries: usize, stands: usize) -> Vec<CellJob> {
    let mut jobs = Vec::with_capacity(entries * stands);
    for entry in 0..entries {
        for stand in 0..stands {
            jobs.push(CellJob {
                cell: entry * stands + stand,
                entry,
                stand,
            });
        }
    }
    jobs
}

/// Surfaces codegen errors early: they are suite bugs no stand could ever
/// run, so they abort the campaign rather than filling the matrix.
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] for the first invalid suite.
pub fn precheck_entries(entries: &[CampaignEntry<'_>]) -> Result<(), CoreError> {
    for entry in entries {
        comptest_script::generate_all(entry.suite)?;
    }
    Ok(())
}

/// Executes one campaign cell: the entry's full suite on one stand.
///
/// Planning failures (a stand that cannot serve the suite) are recorded in
/// the cell, not raised — they are a result of the experiment.
///
/// # Errors
///
/// Propagates non-planning [`CoreError`]s (e.g. codegen failures that
/// slipped past [`precheck_entries`]).
pub fn run_cell(
    entry: &CampaignEntry<'_>,
    stand: &TestStand,
    options: &ExecOptions,
) -> Result<CampaignCell, CoreError> {
    let outcome = match run_suite(entry.suite, stand, || entry.device_factory.build(), options) {
        Ok(r) => Ok(r),
        Err(CoreError::Stand(e)) => Err(e.to_string()),
        Err(other) => return Err(other),
    };
    Ok(CampaignCell {
        suite: entry.suite.name.clone(),
        stand: stand.name().to_owned(),
        outcome,
    })
}

/// Runs every entry's suite on every stand, serially, in cell order — a
/// thin wrapper over [`plan_cells`]/[`run_cell`]. For multi-worker
/// execution with live progress events use
/// `comptest_engine::run_campaign_parallel`, which produces a cell-for-cell
/// identical matrix.
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] only for invalid suites, which no stand
/// could ever run.
pub fn run_campaign(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
    options: &ExecOptions,
) -> Result<CampaignResult, CoreError> {
    precheck_entries(entries)?;
    let mut result = CampaignResult::default();
    for job in plan_cells(entries.len(), stands.len()) {
        result
            .cells
            .push(run_cell(&entries[job.entry], stands[job.stand], options)?);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_dut::ecus::interior_light;
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho
";

    const BARE: &str = "\
[stand]
name = bare
ubatt = 12.0

[resources]
id,   method, attribut, min, max, unit
Dec1, put_r,  r,        0,   1E6, Ohm

[matrix]
point, resource, pin
P1,    Dec1,     DS_FL
";

    #[test]
    fn campaign_matrix() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let full = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let bare = TestStand::parse_str("bare.stand", BARE).unwrap();
        let entries = vec![CampaignEntry {
            suite: &wb.suite,
            device_factory: Box::new(|| interior_light::device(Default::default())),
        }];
        let result = run_campaign(&entries, &[&full, &bare], &ExecOptions::default()).unwrap();
        assert_eq!(result.cells.len(), 2);
        assert!(matches!(&result.cells[0].outcome, Ok(r) if r.verdict() == Verdict::Pass));
        assert!(result.cells[1].outcome.is_err(), "bare stand can't run it");
        assert!(!result.all_green());
        let (p, f, e, nr) = result.totals();
        assert_eq!((p, f, e, nr), (1, 0, 0, 1));
        assert!(result.cells[0].status().contains("PASS"));
        assert!(result.cells[1].status().starts_with("NOT RUNNABLE ("));
        assert!(result.to_string().contains("lamp"));
    }

    #[test]
    fn empty_matrix_is_not_green() {
        let result = CampaignResult::default();
        assert!(
            !result.all_green(),
            "a campaign that ran nothing proved nothing"
        );
    }

    #[test]
    fn status_surfaces_truncated_error_reason() {
        let cell = CampaignCell {
            suite: "s".into(),
            stand: "x".into(),
            outcome: Err(format!("{}\nsecond line", "e".repeat(100))),
        };
        let status = cell.status();
        assert!(status.starts_with("NOT RUNNABLE (eee"));
        assert!(status.ends_with("…)"), "{status}");
        assert!(!status.contains("second line"));
        // 60 chars + ellipsis, not the whole 100.
        assert!(status.len() < 80, "{status}");

        let empty = CampaignCell {
            suite: "s".into(),
            stand: "x".into(),
            outcome: Err(String::new()),
        };
        assert_eq!(empty.status(), "NOT RUNNABLE");
    }

    #[test]
    fn plan_cells_is_entry_major() {
        let jobs = plan_cells(2, 3);
        assert_eq!(jobs.len(), 6);
        assert_eq!(
            jobs[0],
            CellJob {
                cell: 0,
                entry: 0,
                stand: 0
            }
        );
        assert_eq!(
            jobs[4],
            CellJob {
                cell: 4,
                entry: 1,
                stand: 1
            }
        );
        let cells: Vec<usize> = jobs.iter().map(|j| j.cell).collect();
        assert_eq!(cells, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn device_factory_blanket_impl_builds() {
        let factory: Box<dyn DeviceFactory> =
            Box::new(|| interior_light::device(Default::default()));
        assert_eq!(factory.build().behavior_name(), "interior_light");
    }
}
