//! Campaigns: many suites × stands × devices in one run.
//!
//! Section 5 of the paper reports the method "successfully applied to two
//! ECUs of the next S-class"; a campaign is that evaluation shape — every
//! suite executed against its matching DUT on every stand, with a summary
//! matrix.

use std::fmt;

use comptest_dut::Device;
use comptest_model::TestSuite;
use comptest_stand::TestStand;

use crate::error::CoreError;
use crate::exec::ExecOptions;
use crate::pipeline::run_suite;
use crate::verdict::{SuiteResult, Verdict};

/// One campaign entry: a suite, the factory building its DUT, and a label.
pub struct CampaignEntry<'a> {
    /// The test suite.
    pub suite: &'a TestSuite,
    /// Builds a fresh DUT for each test.
    pub device_factory: Box<dyn FnMut() -> Device + 'a>,
}

impl fmt::Debug for CampaignEntry<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignEntry")
            .field("suite", &self.suite.name)
            .finish_non_exhaustive()
    }
}

/// One cell of the campaign matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Suite name.
    pub suite: String,
    /// Stand name.
    pub stand: String,
    /// The suite result, or the planning error that prevented execution.
    pub outcome: Result<SuiteResult, String>,
}

impl CampaignCell {
    /// A short status string for tables.
    pub fn status(&self) -> String {
        match &self.outcome {
            Ok(r) => {
                let (p, f, e) = r.counts();
                format!("{} ({p}P/{f}F/{e}E)", r.verdict())
            }
            Err(_) => "NOT RUNNABLE".to_owned(),
        }
    }
}

/// The campaign result matrix.
#[derive(Debug, Default)]
pub struct CampaignResult {
    /// All cells, suites major, stands minor.
    pub cells: Vec<CampaignCell>,
}

impl CampaignResult {
    /// True if every runnable cell passed and every cell was runnable.
    pub fn all_green(&self) -> bool {
        self.cells
            .iter()
            .all(|c| matches!(&c.outcome, Ok(r) if r.verdict() == Verdict::Pass))
    }

    /// Total `(passed, failed, errored, not_runnable)` across the matrix.
    pub fn totals(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for c in &self.cells {
            match &c.outcome {
                Ok(r) => {
                    let (p, f, e) = r.counts();
                    t.0 += p;
                    t.1 += f;
                    t.2 += e;
                }
                Err(_) => t.3 += 1,
            }
        }
        t
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cell in &self.cells {
            writeln!(
                f,
                "{:<20} on {:<12} {}",
                cell.suite,
                cell.stand,
                cell.status()
            )?;
        }
        Ok(())
    }
}

/// Runs every entry's suite on every stand.
///
/// Planning failures (a stand that cannot serve a suite) are recorded in
/// the matrix, not raised — they are a result of the experiment.
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] only for invalid suites, which no stand
/// could ever run.
pub fn run_campaign(
    entries: &mut [CampaignEntry<'_>],
    stands: &[&TestStand],
    options: &ExecOptions,
) -> Result<CampaignResult, CoreError> {
    let mut result = CampaignResult::default();
    for entry in entries.iter_mut() {
        // Surface codegen errors early: they are suite bugs.
        comptest_script::generate_all(entry.suite)?;
        for stand in stands {
            let outcome = match run_suite(entry.suite, stand, &mut entry.device_factory, options) {
                Ok(r) => Ok(r),
                Err(CoreError::Stand(e)) => Err(e.to_string()),
                Err(other) => return Err(other),
            };
            result.cells.push(CampaignCell {
                suite: entry.suite.name.clone(),
                stand: stand.name().to_owned(),
                outcome,
            });
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_dut::ecus::interior_light;
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho
";

    const BARE: &str = "\
[stand]
name = bare
ubatt = 12.0

[resources]
id,   method, attribut, min, max, unit
Dec1, put_r,  r,        0,   1E6, Ohm

[matrix]
point, resource, pin
P1,    Dec1,     DS_FL
";

    #[test]
    fn campaign_matrix() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let full = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let bare = TestStand::parse_str("bare.stand", BARE).unwrap();
        let mut entries = vec![CampaignEntry {
            suite: &wb.suite,
            device_factory: Box::new(|| interior_light::device(Default::default())),
        }];
        let result = run_campaign(&mut entries, &[&full, &bare], &ExecOptions::default()).unwrap();
        assert_eq!(result.cells.len(), 2);
        assert!(matches!(&result.cells[0].outcome, Ok(r) if r.verdict() == Verdict::Pass));
        assert!(result.cells[1].outcome.is_err(), "bare stand can't run it");
        assert!(!result.all_green());
        let (p, f, e, nr) = result.totals();
        assert_eq!((p, f, e, nr), (1, 0, 0, 1));
        assert!(result.cells[0].status().contains("PASS"));
        assert_eq!(result.cells[1].status(), "NOT RUNNABLE");
        assert!(result.to_string().contains("lamp"));
    }
}
