//! Campaigns: many suites × stands × devices in one run.
//!
//! Section 5 of the paper reports the method "successfully applied to two
//! ECUs of the next S-class"; a campaign is that evaluation shape — every
//! suite executed against its matching DUT on every stand, with a summary
//! matrix.
//!
//! Campaign cells are independent of each other (a suite's verdict on one
//! stand never feeds into another cell), which makes the matrix
//! embarrassingly parallel — and because every *test* runs against a fresh
//! power-cycled DUT, the tests inside a cell are independent too. This
//! module owns the *planning* half at both granularities:
//!
//! * cell-granular: the deterministic cell ordering ([`plan_cells`]) and
//!   the per-cell runner ([`run_cell`]);
//! * test-granular: the (entry, stand, test) job list
//!   ([`plan_test_jobs`]), the single-test runner ([`run_test_job`]) and
//!   the pure merge ([`merge_test_outcomes`]) that folds per-test outcomes
//!   back into the same [`CampaignResult`] a serial run produces;
//! * validation ([`validate_campaign`]): the structural checks behind the
//!   engine's `Campaign` builder.
//!
//! The `comptest-engine` crate owns *execution*: its `Campaign` builder
//! launches these plans on pluggable executors (serial or pooled). The
//! historical serial driver [`run_campaign`] survives as a deprecated
//! shim-level reference.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use comptest_dut::Device;
use comptest_model::TestSuite;
use comptest_stand::TestStand;

use crate::error::CoreError;
use crate::exec::ExecOptions;
use crate::pipeline::run_suite;
use crate::verdict::{SuiteResult, TestResult, Verdict};

/// Builds a fresh DUT per test execution.
///
/// `Send + Sync` so campaign cells can execute on worker threads; the
/// blanket impl keeps closure call sites terse
/// (`Box::new(|| interior_light::device(Default::default()))`).
pub trait DeviceFactory: Send + Sync {
    /// Builds a fresh device (the paper's stands power-cycle the DUT
    /// between runs, so state never leaks between tests).
    fn build(&self) -> Device;
}

impl<F> DeviceFactory for F
where
    F: Fn() -> Device + Send + Sync,
{
    fn build(&self) -> Device {
        self()
    }
}

/// One campaign entry: a suite and the factory building its DUT.
pub struct CampaignEntry<'a> {
    /// The test suite.
    pub suite: &'a TestSuite,
    /// Builds a fresh DUT for each test.
    pub device_factory: Box<dyn DeviceFactory + 'a>,
}

impl fmt::Debug for CampaignEntry<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignEntry")
            .field("suite", &self.suite.name)
            .finish_non_exhaustive()
    }
}

/// One cell of the campaign matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Suite name.
    pub suite: String,
    /// Stand name.
    pub stand: String,
    /// The suite result, or the planning error that prevented execution.
    pub outcome: Result<SuiteResult, String>,
}

impl CampaignCell {
    /// A short status string for tables. Planning failures surface the
    /// first line of the error (truncated) so a matrix printout says *why*
    /// a cell could not run, not just that it could not.
    pub fn status(&self) -> String {
        match &self.outcome {
            Ok(r) => {
                let (p, f, e) = r.counts();
                format!("{} ({p}P/{f}F/{e}E)", r.verdict())
            }
            Err(reason) => not_runnable_status(reason),
        }
    }

    /// True when the cell executed and every check passed.
    pub fn passed(&self) -> bool {
        matches!(&self.outcome, Ok(r) if r.verdict() == Verdict::Pass)
    }
}

/// Renders a planning-failure reason as a short status: `NOT RUNNABLE
/// (<first line, truncated>)`, so tables and live progress say *why*
/// something could not run, not just that it could not. One
/// implementation shared by [`CampaignCell::status`] and the engine's
/// per-test events.
pub fn not_runnable_status(reason: &str) -> String {
    let first = reason.lines().next().unwrap_or("").trim();
    if first.is_empty() {
        return "NOT RUNNABLE".to_owned();
    }
    const LIMIT: usize = 60;
    let mut short: String = first.chars().take(LIMIT).collect();
    if first.chars().count() > LIMIT {
        short.push('…');
    }
    format!("NOT RUNNABLE ({short})")
}

/// The campaign result matrix.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CampaignResult {
    /// All cells, suites major, stands minor.
    pub cells: Vec<CampaignCell>,
}

impl CampaignResult {
    /// True if the matrix is non-empty, every cell was runnable and every
    /// runnable cell passed. An empty matrix is *not* green: a campaign
    /// that ran nothing has verified nothing.
    pub fn all_green(&self) -> bool {
        !self.cells.is_empty() && self.cells.iter().all(CampaignCell::passed)
    }

    /// Total `(passed, failed, errored, not_runnable)` across the matrix.
    pub fn totals(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for c in &self.cells {
            match &c.outcome {
                Ok(r) => {
                    let (p, f, e) = r.counts();
                    t.0 += p;
                    t.1 += f;
                    t.2 += e;
                }
                Err(_) => t.3 += 1,
            }
        }
        t
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cell in &self.cells {
            writeln!(
                f,
                "{:<20} on {:<12} {}",
                cell.suite,
                cell.stand,
                cell.status()
            )?;
        }
        Ok(())
    }
}

/// One schedulable unit of a campaign: a (suite, stand) pair together with
/// its position in the deterministic result matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellJob {
    /// Index into the result matrix (entry-major, stand-minor).
    pub cell: usize,
    /// Index of the [`CampaignEntry`].
    pub entry: usize,
    /// Index into the stand list.
    pub stand: usize,
}

/// Shards the suite × stand matrix into independent jobs in the canonical
/// cell order (entries major, stands minor). Both the serial driver and the
/// parallel engine schedule from this list, so results merge back into the
/// same [`CampaignResult`] ordering regardless of completion order.
pub fn plan_cells(entries: usize, stands: usize) -> Vec<CellJob> {
    let mut jobs = Vec::with_capacity(entries * stands);
    for entry in 0..entries {
        for stand in 0..stands {
            jobs.push(CellJob {
                cell: entry * stands + stand,
                entry,
                stand,
            });
        }
    }
    jobs
}

/// Why a campaign description can never launch — structural problems caught
/// by [`validate_campaign`] before any job is planned or run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampaignSpecError {
    /// The campaign has no entries: nothing to run, nothing to verify.
    NoEntries,
    /// The campaign has no stands: nowhere to run.
    NoStands,
    /// Two stands share one name. Stand names key the result matrix rows
    /// and the JUnit `suite@stand` ids, so duplicates would make the
    /// report ambiguous.
    DuplicateStand {
        /// The repeated stand name.
        name: String,
    },
}

impl fmt::Display for CampaignSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignSpecError::NoEntries => f.write_str("campaign has no entries (nothing to run)"),
            CampaignSpecError::NoStands => f.write_str("campaign has no stands (nowhere to run)"),
            CampaignSpecError::DuplicateStand { name } => write!(
                f,
                "duplicate stand {name:?} in campaign (stand names key result rows and reports)"
            ),
        }
    }
}

impl Error for CampaignSpecError {}

/// Validates the campaign shape: at least one entry, at least one stand,
/// and no two stands sharing a name. The execution engines call this behind
/// their campaign builder; codegen prechecks are separate (every executor
/// generates all scripts up front and surfaces the first
/// [`CoreError::Codegen`] before running a job).
///
/// # Errors
///
/// Returns [`CoreError::InvalidCampaign`] describing the first structural
/// problem found.
pub fn validate_campaign(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
) -> Result<(), CoreError> {
    if entries.is_empty() {
        return Err(CampaignSpecError::NoEntries.into());
    }
    if stands.is_empty() {
        return Err(CampaignSpecError::NoStands.into());
    }
    let mut seen = HashSet::new();
    for stand in stands {
        if !seen.insert(stand.name()) {
            return Err(CampaignSpecError::DuplicateStand {
                name: stand.name().to_owned(),
            }
            .into());
        }
    }
    Ok(())
}

/// Surfaces codegen errors early: they are suite bugs no stand could ever
/// run, so they abort the campaign rather than filling the matrix.
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] for the first invalid suite.
pub fn precheck_entries(entries: &[CampaignEntry<'_>]) -> Result<(), CoreError> {
    for entry in entries {
        comptest_script::generate_all(entry.suite)?;
    }
    Ok(())
}

/// Executes one campaign cell: the entry's full suite on one stand.
///
/// Planning failures (a stand that cannot serve the suite) are recorded in
/// the cell, not raised — they are a result of the experiment.
///
/// # Errors
///
/// Propagates non-planning [`CoreError`]s (e.g. codegen failures that
/// slipped past [`precheck_entries`]).
pub fn run_cell(
    entry: &CampaignEntry<'_>,
    stand: &TestStand,
    options: &ExecOptions,
) -> Result<CampaignCell, CoreError> {
    let outcome = match run_suite(entry.suite, stand, || entry.device_factory.build(), options) {
        Ok(r) => Ok(r),
        Err(CoreError::Stand(e)) => Err(e.to_string()),
        Err(other) => return Err(other),
    };
    Ok(CampaignCell {
        suite: entry.suite.name.clone(),
        stand: stand.name().to_owned(),
        outcome,
    })
}

/// One schedulable unit of a *test-granular* campaign: a single test of one
/// entry's suite on one stand, together with its position in the
/// deterministic result matrix.
///
/// Test-granular jobs are the finer sharding of [`CellJob`]: a cell with
/// `k` tests contributes `k` jobs, so one large workbook no longer bounds
/// campaign wall-clock — its tests spread over all workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestJob {
    /// Index into the deterministic job list (cell-major, test-minor).
    pub job: usize,
    /// Index into the result matrix (entry-major, stand-minor).
    pub cell: usize,
    /// Index of the [`CampaignEntry`].
    pub entry: usize,
    /// Index into the stand list.
    pub stand: usize,
    /// Index into the entry's `suite.tests`.
    pub test: usize,
}

/// The outcome of one test job: the executed test, or the stand planning
/// error that made it not runnable (a result of the experiment, mirroring
/// [`CampaignCell::outcome`] at test granularity).
pub type TestJobOutcome = Result<TestResult, String>;

/// Shards the suite × stand matrix into per-test jobs. `test_counts[i]` is
/// the number of tests of entry `i`'s suite. The order is canonical:
/// entries major, stands next, tests minor — exactly the order in which the
/// serial [`run_campaign`] executes tests — so [`merge_test_outcomes`] can
/// fold completion-order results back into a byte-identical
/// [`CampaignResult`].
pub fn plan_test_jobs(test_counts: &[usize], stands: usize) -> Vec<TestJob> {
    let total: usize = test_counts.iter().sum::<usize>() * stands;
    let mut jobs = Vec::with_capacity(total);
    for (entry, &tests) in test_counts.iter().enumerate() {
        for stand in 0..stands {
            for test in 0..tests {
                jobs.push(TestJob {
                    job: jobs.len(),
                    cell: entry * stands + stand,
                    entry,
                    stand,
                    test,
                });
            }
        }
    }
    jobs
}

/// Plans one generated script on a stand, mapping planning failures to the
/// canonical not-runnable outcome string. The one error-rendering
/// implementation shared by [`execute_script_job`] (blocking executors)
/// and the engine's step-interleaving `AsyncExecutor`, so every executor
/// reports the exact same `Err(reason)` bytes.
///
/// # Errors
///
/// Returns the stringified [`comptest_stand::StandError`] when the stand
/// cannot serve the script.
pub fn plan_script(
    script: &comptest_script::TestScript,
    stand: &TestStand,
) -> Result<comptest_stand::ExecutionPlan, String> {
    comptest_stand::plan(script, stand).map_err(|e| e.to_string())
}

/// Plans and executes one already-generated script against a device — the
/// single-test step shared by [`run_test_job`] and the engine's worker
/// pool, so both paths map stand planning failures to the exact same
/// outcome string and the byte-identity guarantee has one implementation.
pub fn execute_script_job(
    script: &comptest_script::TestScript,
    stand: &TestStand,
    device: &mut Device,
    options: &ExecOptions,
) -> TestJobOutcome {
    match plan_script(script, stand) {
        Ok(plan) => Ok(crate::exec::execute(&plan, device, options)),
        Err(reason) => Err(reason),
    }
}

/// Executes one test job: test `test` of the entry's suite on one stand,
/// against a freshly built device (the paper's stands power-cycle the DUT
/// between runs, so per-test jobs see exactly the device state a serial
/// suite run would).
///
/// Stand planning failures are recorded in the outcome, not raised — the
/// same split as [`run_cell`].
///
/// # Errors
///
/// Propagates non-planning [`CoreError`]s (e.g. codegen failures that
/// slipped past [`precheck_entries`]).
///
/// # Panics
///
/// Panics when `test` is out of range for the entry's suite; job lists from
/// [`plan_test_jobs`] are always in range.
pub fn run_test_job(
    entry: &CampaignEntry<'_>,
    stand: &TestStand,
    test: usize,
    options: &ExecOptions,
) -> Result<TestJobOutcome, CoreError> {
    let script = comptest_script::generate(entry.suite, &entry.suite.tests[test].name)?;
    let mut device = entry.device_factory.build();
    Ok(execute_script_job(&script, stand, &mut device, options))
}

/// Folds per-test outcomes back into the deterministic [`CampaignResult`].
///
/// `outcomes` is indexed by [`TestJob::job`] (the [`plan_test_jobs`] order);
/// `None` marks a job that never ran (cancelled). The fold walks cells in
/// canonical order and, within each cell, tests in suite order:
///
/// * a complete run of `Ok` tests reproduces [`run_cell`]'s
///   `Ok(SuiteResult)` byte-for-byte;
/// * the first planning error ends the cell as `Err(reason)`, exactly where
///   the serial [`run_suite`] would have stopped — later outcomes of that
///   cell (which a parallel run may have produced anyway) are discarded;
/// * a missing outcome truncates the cell: its finished prefix of tests is
///   kept (so a `stop_on_first_fail` run still shows the failing test), and
///   a cell with *no* finished tests is omitted entirely.
///
/// Returns the result plus the number of jobs that produced no outcome.
/// With every outcome present the result is identical to serial
/// [`run_campaign`].
///
/// # Panics
///
/// Panics when `outcomes` does not cover the full [`plan_test_jobs`] list
/// (one slot per (entry, stand, test) triple): a shorter vector is
/// indistinguishable from "every remaining suite ran zero tests" and would
/// silently merge never-ran cells as empty, *passing* suites — the exact
/// silent-green outcome [`CoreError::JobsLost`] exists to prevent.
pub fn merge_test_outcomes(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
    outcomes: Vec<Option<TestJobOutcome>>,
) -> (CampaignResult, usize) {
    let expected: usize = entries.iter().map(|e| e.suite.tests.len()).sum::<usize>() * stands.len();
    assert_eq!(
        outcomes.len(),
        expected,
        "outcomes must cover every planned test job"
    );
    let cancelled = outcomes.iter().filter(|o| o.is_none()).count();
    let mut it = outcomes.into_iter();
    let mut result = CampaignResult::default();
    for entry in entries {
        for stand in stands {
            let per_cell: Vec<Option<TestJobOutcome>> =
                (&mut it).take(entry.suite.tests.len()).collect();
            let mut results = Vec::new();
            let mut outcome = None;
            let mut complete = true;
            for slot in per_cell {
                match slot {
                    Some(Ok(r)) => results.push(r),
                    Some(Err(reason)) => {
                        outcome = Some(Err(reason));
                        break;
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            let outcome = match outcome {
                Some(err) => err,
                None if complete || !results.is_empty() => Ok(SuiteResult {
                    suite: entry.suite.name.clone(),
                    results,
                }),
                None => continue, // nothing of this cell ran
            };
            result.cells.push(CampaignCell {
                suite: entry.suite.name.clone(),
                stand: stand.name().to_owned(),
                outcome,
            });
        }
    }
    (result, cancelled)
}

/// Runs every entry's suite on every stand, serially, in cell order — a
/// thin wrapper over [`plan_cells`]/[`run_cell`].
///
/// Deprecated: the campaign-running surface lives behind
/// `comptest_engine::Campaign` now; `Campaign::new(entries, stands)`
/// launched on a `SerialExecutor` produces a byte-identical result (and a
/// `PooledExecutor` a cell-for-cell identical one, with live events and
/// cancellation on top).
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] only for invalid suites, which no stand
/// could ever run.
#[deprecated(
    since = "0.1.0",
    note = "use comptest_engine::Campaign with a SerialExecutor (or PooledExecutor) instead"
)]
pub fn run_campaign(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
    options: &ExecOptions,
) -> Result<CampaignResult, CoreError> {
    precheck_entries(entries)?;
    let mut result = CampaignResult::default();
    for job in plan_cells(entries.len(), stands.len()) {
        result
            .cells
            .push(run_cell(&entries[job.entry], stands[job.stand], options)?);
    }
    Ok(result)
}

// The serial `run_campaign` is deprecated in favour of the engine's
// `Campaign` builder, but it stays the in-crate byte-identity reference the
// merge tests anchor to.
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use comptest_dut::ecus::interior_light;
    use comptest_sheets::Workbook;

    const WB: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho
";

    const BARE: &str = "\
[stand]
name = bare
ubatt = 12.0

[resources]
id,   method, attribut, min, max, unit
Dec1, put_r,  r,        0,   1E6, Ohm

[matrix]
point, resource, pin
P1,    Dec1,     DS_FL
";

    #[test]
    fn campaign_matrix() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let full = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let bare = TestStand::parse_str("bare.stand", BARE).unwrap();
        let entries = vec![CampaignEntry {
            suite: &wb.suite,
            device_factory: Box::new(|| interior_light::device(Default::default())),
        }];
        let result = run_campaign(&entries, &[&full, &bare], &ExecOptions::default()).unwrap();
        assert_eq!(result.cells.len(), 2);
        assert!(matches!(&result.cells[0].outcome, Ok(r) if r.verdict() == Verdict::Pass));
        assert!(result.cells[1].outcome.is_err(), "bare stand can't run it");
        assert!(!result.all_green());
        let (p, f, e, nr) = result.totals();
        assert_eq!((p, f, e, nr), (1, 0, 0, 1));
        assert!(result.cells[0].status().contains("PASS"));
        assert!(result.cells[1].status().starts_with("NOT RUNNABLE ("));
        assert!(result.to_string().contains("lamp"));
    }

    #[test]
    fn empty_matrix_is_not_green() {
        let result = CampaignResult::default();
        assert!(
            !result.all_green(),
            "a campaign that ran nothing proved nothing"
        );
    }

    #[test]
    fn status_surfaces_truncated_error_reason() {
        let cell = CampaignCell {
            suite: "s".into(),
            stand: "x".into(),
            outcome: Err(format!("{}\nsecond line", "e".repeat(100))),
        };
        let status = cell.status();
        assert!(status.starts_with("NOT RUNNABLE (eee"));
        assert!(status.ends_with("…)"), "{status}");
        assert!(!status.contains("second line"));
        // 60 chars + ellipsis, not the whole 100.
        assert!(status.len() < 80, "{status}");

        let empty = CampaignCell {
            suite: "s".into(),
            stand: "x".into(),
            outcome: Err(String::new()),
        };
        assert_eq!(empty.status(), "NOT RUNNABLE");
    }

    #[test]
    fn plan_cells_is_entry_major() {
        let jobs = plan_cells(2, 3);
        assert_eq!(jobs.len(), 6);
        assert_eq!(
            jobs[0],
            CellJob {
                cell: 0,
                entry: 0,
                stand: 0
            }
        );
        assert_eq!(
            jobs[4],
            CellJob {
                cell: 4,
                entry: 1,
                stand: 1
            }
        );
        let cells: Vec<usize> = jobs.iter().map(|j| j.cell).collect();
        assert_eq!(cells, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn plan_test_jobs_is_cell_major_test_minor() {
        // Two entries (2 and 1 tests) on 2 stands: 6 jobs.
        let jobs = plan_test_jobs(&[2, 1], 2);
        assert_eq!(jobs.len(), 6);
        let triples: Vec<(usize, usize, usize, usize)> = jobs
            .iter()
            .map(|j| (j.cell, j.entry, j.stand, j.test))
            .collect();
        assert_eq!(
            triples,
            vec![
                (0, 0, 0, 0),
                (0, 0, 0, 1),
                (1, 0, 1, 0),
                (1, 0, 1, 1),
                (2, 1, 0, 0),
                (3, 1, 1, 0),
            ]
        );
        let ids: Vec<usize> = jobs.iter().map(|j| j.job).collect();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn test_jobs_merge_back_to_the_serial_campaign() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let full = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let bare = TestStand::parse_str("bare.stand", BARE).unwrap();
        let entries = vec![CampaignEntry {
            suite: &wb.suite,
            device_factory: Box::new(|| interior_light::device(Default::default())),
        }];
        let stands = [&full, &bare];
        let serial = run_campaign(&entries, &stands, &ExecOptions::default()).unwrap();

        let jobs = plan_test_jobs(&[wb.suite.tests.len()], stands.len());
        // Execute in reverse completion order to prove the merge re-sorts.
        let mut outcomes: Vec<Option<TestJobOutcome>> = vec![None; jobs.len()];
        for job in jobs.iter().rev() {
            outcomes[job.job] = Some(
                run_test_job(
                    &entries[job.entry],
                    stands[job.stand],
                    job.test,
                    &ExecOptions::default(),
                )
                .unwrap(),
            );
        }
        let (merged, cancelled) = merge_test_outcomes(&entries, &stands, outcomes);
        assert_eq!(cancelled, 0);
        assert_eq!(merged, serial, "merge must reproduce serial byte-for-byte");
    }

    #[test]
    fn merge_truncates_cancelled_cells_to_their_finished_prefix() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let full = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let entries = vec![CampaignEntry {
            suite: &wb.suite,
            device_factory: Box::new(|| interior_light::device(Default::default())),
        }];
        let stands = [&full, &full];
        // Cell 0 finished its (single) test, cell 1 never ran.
        let outcome = run_test_job(&entries[0], stands[0], 0, &ExecOptions::default()).unwrap();
        let (merged, cancelled) = merge_test_outcomes(&entries, &stands, vec![Some(outcome), None]);
        assert_eq!(cancelled, 1);
        assert_eq!(merged.cells.len(), 1, "{merged}");
        assert!(merged.cells[0].passed());
    }

    #[test]
    fn merge_reports_the_first_planning_error_like_serial() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let bare = TestStand::parse_str("bare.stand", BARE).unwrap();
        let entries = vec![CampaignEntry {
            suite: &wb.suite,
            device_factory: Box::new(|| interior_light::device(Default::default())),
        }];
        let stands = [&bare];
        let outcome = run_test_job(&entries[0], stands[0], 0, &ExecOptions::default()).unwrap();
        assert!(outcome.is_err(), "bare stand cannot plan the test");
        let serial = run_campaign(&entries, &stands, &ExecOptions::default()).unwrap();
        let (merged, cancelled) = merge_test_outcomes(&entries, &stands, vec![Some(outcome)]);
        assert_eq!(cancelled, 0);
        assert_eq!(merged, serial);
    }

    #[test]
    fn device_factory_blanket_impl_builds() {
        let factory: Box<dyn DeviceFactory> =
            Box::new(|| interior_light::device(Default::default()));
        assert_eq!(factory.build().behavior_name(), "interior_light");
    }

    #[test]
    #[should_panic(expected = "outcomes must cover every planned test job")]
    fn merge_rejects_an_undersized_outcome_vector() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let full = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let entries = vec![CampaignEntry {
            suite: &wb.suite,
            device_factory: Box::new(|| interior_light::device(Default::default())),
        }];
        // One job is planned (1 suite × 1 test × 1 stand); an empty vector
        // must not merge into an all-green nothing-ran result.
        let _ = merge_test_outcomes(&entries, &[&full], vec![]);
    }

    #[test]
    fn not_runnable_status_truncates_to_the_first_line() {
        assert_eq!(not_runnable_status(""), "NOT RUNNABLE");
        assert_eq!(not_runnable_status("no dvm"), "NOT RUNNABLE (no dvm)");
        let long = not_runnable_status(&format!("{}\nsecond", "e".repeat(100)));
        assert!(long.ends_with("…)"), "{long}");
        assert!(long.len() < 80, "{long}");
    }

    #[test]
    fn validate_campaign_rejects_structural_problems() {
        let wb = Workbook::parse_str("wb.cts", WB).unwrap();
        let full = TestStand::parse_str("a.stand", crate::PAPER_STAND_A).unwrap();
        let entries = vec![CampaignEntry {
            suite: &wb.suite,
            device_factory: Box::new(|| interior_light::device(Default::default())),
        }];

        assert_eq!(
            validate_campaign(&[], &[&full]).unwrap_err(),
            CampaignSpecError::NoEntries.into()
        );
        assert_eq!(
            validate_campaign(&entries, &[]).unwrap_err(),
            CampaignSpecError::NoStands.into()
        );
        let dup = validate_campaign(&entries, &[&full, &full]).unwrap_err();
        assert_eq!(
            dup,
            CampaignSpecError::DuplicateStand {
                name: "HIL-A".into()
            }
            .into()
        );
        assert!(dup.to_string().contains("duplicate stand \"HIL-A\""));
        validate_campaign(&entries, &[&full]).expect("one entry on one stand is a campaign");
    }
}
