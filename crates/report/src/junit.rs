//! JUnit-style XML output for CI systems.

use comptest_core::{SuiteResult, Verdict};
use comptest_script::xml::{write_document, Element};

/// Renders a suite result as JUnit XML (`<testsuite>`/`<testcase>`).
///
/// Check failures become `<failure>` elements (one per failing check);
/// execution errors become `<error>` elements.
pub fn junit_xml(result: &SuiteResult) -> String {
    let (_, failed, errored) = result.counts();
    let mut suite = Element::new("testsuite")
        .with_attr("name", result.suite.clone())
        .with_attr("tests", result.results.len().to_string())
        .with_attr("failures", failed.to_string())
        .with_attr("errors", errored.to_string());

    for test in &result.results {
        let mut case = Element::new("testcase")
            .with_attr("name", test.test.clone())
            .with_attr("classname", format!("{}.{}", result.suite, test.dut));
        match test.verdict() {
            Verdict::Pass => {}
            Verdict::Fail => {
                for check in test.failures() {
                    case = case.with_child(
                        Element::new("failure")
                            .with_attr("message", check.to_string())
                            .with_attr("type", "CheckFailure"),
                    );
                }
            }
            Verdict::Error => {
                let message = test
                    .error
                    .clone()
                    .unwrap_or_else(|| "execution error".to_owned());
                case = case.with_child(
                    Element::new("error")
                        .with_attr("message", message)
                        .with_attr("type", "ExecutionError"),
                );
            }
        }
        suite = suite.with_child(case);
    }
    write_document(&suite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_core::{CheckResult, Measured, StepResult, TestResult, Trace};
    use comptest_model::{MethodName, SignalName, SimTime, StatusBound};

    fn result(verdict: Verdict) -> TestResult {
        let mut r = TestResult {
            test: "t1".into(),
            stand: "HIL-A".into(),
            dut: "interior_light".into(),
            steps: vec![],
            error: None,
            trace: Trace::default(),
        };
        match verdict {
            Verdict::Pass => {}
            Verdict::Fail => r.steps.push(StepResult {
                nr: 0,
                t_end: SimTime::from_millis(500),
                checks: vec![CheckResult {
                    step: 0,
                    at: SimTime::from_millis(500),
                    signal: SignalName::new("int_ill").unwrap(),
                    method: MethodName::new("get_u").unwrap(),
                    bound: StatusBound::Numeric {
                        nominal: None,
                        lo: 8.4,
                        hi: 13.2,
                    },
                    measured: Measured::Num(0.0),
                    verdict: Verdict::Fail,
                    message: "lamp dark".into(),
                }],
            }),
            Verdict::Error => r.error = Some("no such method".into()),
        }
        r
    }

    #[test]
    fn junit_structure() {
        let suite = SuiteResult {
            suite: "lamp".into(),
            results: vec![
                result(Verdict::Pass),
                result(Verdict::Fail),
                result(Verdict::Error),
            ],
        };
        let xml = junit_xml(&suite);
        assert!(xml.contains("<testsuite name=\"lamp\" tests=\"3\" failures=\"1\" errors=\"1\">"));
        assert!(xml.contains("<failure message="));
        assert!(xml.contains("<error message=\"no such method\""));
        // It must parse with our own XML engine.
        let parsed = comptest_script::xml::parse(&xml).unwrap();
        assert_eq!(parsed.elements_named("testcase").count(), 3);
    }
}
