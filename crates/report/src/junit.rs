//! JUnit-style XML output for CI systems.

use comptest_core::campaign::CampaignResult;
use comptest_core::{SuiteResult, Verdict};
use comptest_script::xml::{write_document, Element};

/// Formats a simulated duration as a JUnit `time` attribute (seconds).
/// Simulated time is deterministic — identical across serial and parallel
/// runs — so timed reports keep the engine's byte-identity guarantee.
fn time_attr(t: comptest_model::SimTime) -> String {
    format!("{:.3}", t.as_secs_f64())
}

/// Builds one `<testsuite>` element for a suite result. `name` is the
/// rendered suite name (plain suite, or `suite@stand` in campaign reports);
/// `classname_suite` keeps `classname` stable across both renderers.
fn suite_element(name: &str, classname_suite: &str, result: &SuiteResult) -> Element {
    let (_, failed, errored) = result.counts();
    let mut suite = Element::new("testsuite")
        .with_attr("name", name)
        .with_attr("tests", result.results.len().to_string())
        .with_attr("failures", failed.to_string())
        .with_attr("errors", errored.to_string())
        .with_attr("time", time_attr(result.sim_duration()));

    for test in &result.results {
        let mut case = Element::new("testcase")
            .with_attr("name", test.test.clone())
            .with_attr("classname", format!("{}.{}", classname_suite, test.dut))
            .with_attr("time", time_attr(test.sim_duration()));
        match test.verdict() {
            Verdict::Pass => {}
            Verdict::Fail => {
                for check in test.failures() {
                    case = case.with_child(
                        Element::new("failure")
                            .with_attr("message", check.to_string())
                            .with_attr("type", "CheckFailure"),
                    );
                }
            }
            Verdict::Error => {
                let message = test
                    .error
                    .clone()
                    .unwrap_or_else(|| "execution error".to_owned());
                case = case.with_child(
                    Element::new("error")
                        .with_attr("message", message)
                        .with_attr("type", "ExecutionError"),
                );
            }
        }
        suite = suite.with_child(case);
    }
    suite
}

/// Renders a suite result as JUnit XML (`<testsuite>`/`<testcase>`).
///
/// Check failures become `<failure>` elements (one per failing check);
/// execution errors become `<error>` elements.
pub fn junit_xml(result: &SuiteResult) -> String {
    write_document(&suite_element(&result.suite, &result.suite, result))
}

/// Renders a whole campaign matrix as JUnit XML: a `<testsuites>` root with
/// one `<testsuite>` per cell, named `suite@stand`. Cells that could not be
/// planned become a suite with a single errored `<testcase>` carrying the
/// stand's error message, so CI surfaces *why* a stand cannot serve a suite;
/// those synthetic testcases are included in the root totals so the root
/// attributes always equal the sum of the child `<testsuite>` attributes.
pub fn campaign_junit_xml(result: &CampaignResult) -> String {
    let (passed, failed, errored, not_runnable) = result.totals();
    let mut root = Element::new("testsuites")
        .with_attr(
            "tests",
            (passed + failed + errored + not_runnable).to_string(),
        )
        .with_attr("failures", failed.to_string())
        .with_attr("errors", (errored + not_runnable).to_string());

    for cell in &result.cells {
        let name = format!("{}@{}", cell.suite, cell.stand);
        match &cell.outcome {
            Ok(suite_result) => {
                // The cell name doubles as the classname so CI consumers
                // that key test identity on classname+name can tell the
                // same suite apart across stands.
                root = root.with_child(suite_element(&name, &name, suite_result));
            }
            Err(reason) => {
                let case = Element::new("testcase")
                    .with_attr("name", "planning")
                    .with_attr("classname", name.clone())
                    .with_child(
                        Element::new("error")
                            .with_attr("message", reason.clone())
                            .with_attr("type", "NotRunnable"),
                    );
                root = root.with_child(
                    Element::new("testsuite")
                        .with_attr("name", name)
                        .with_attr("tests", "1")
                        .with_attr("failures", "0")
                        .with_attr("errors", "1")
                        .with_child(case),
                );
            }
        }
    }
    write_document(&root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_core::{CheckResult, Measured, StepResult, TestResult, Trace};
    use comptest_model::{MethodName, SignalName, SimTime, StatusBound};

    fn result(verdict: Verdict) -> TestResult {
        let mut r = TestResult {
            test: "t1".into(),
            stand: "HIL-A".into(),
            dut: "interior_light".into(),
            steps: vec![],
            error: None,
            trace: Trace::default(),
        };
        match verdict {
            Verdict::Pass => {}
            Verdict::Fail => r.steps.push(StepResult {
                nr: 0,
                t_end: SimTime::from_millis(500),
                checks: vec![CheckResult {
                    step: 0,
                    at: SimTime::from_millis(500),
                    signal: SignalName::new("int_ill").unwrap(),
                    method: MethodName::new("get_u").unwrap(),
                    bound: StatusBound::Numeric {
                        nominal: None,
                        lo: 8.4,
                        hi: 13.2,
                    },
                    measured: Measured::Num(0.0),
                    verdict: Verdict::Fail,
                    message: "lamp dark".into(),
                }],
            }),
            Verdict::Error => r.error = Some("no such method".into()),
        }
        r
    }

    #[test]
    fn campaign_junit_structure() {
        use comptest_core::campaign::{CampaignCell, CampaignResult};
        let ran = SuiteResult {
            suite: "lamp".into(),
            results: vec![result(Verdict::Pass), result(Verdict::Fail)],
        };
        let campaign = CampaignResult {
            cells: vec![
                CampaignCell {
                    suite: "lamp".into(),
                    stand: "HIL-A".into(),
                    outcome: Ok(ran),
                },
                CampaignCell {
                    suite: "lamp".into(),
                    stand: "MINI".into(),
                    outcome: Err("init: no resource for put_can on signal ign_st".into()),
                },
            ],
        };
        let xml = campaign_junit_xml(&campaign);
        assert!(xml.contains("<testsuite name=\"lamp@HIL-A\""));
        assert!(xml.contains("<testsuite name=\"lamp@MINI\""));
        assert!(xml.contains("type=\"NotRunnable\""));
        // Root totals include the synthetic not-runnable testcase, matching
        // the sum of the child <testsuite> attributes (2 + 1 tests, 1 + 0
        // failures, 0 + 1 errors).
        assert!(
            xml.contains("<testsuites tests=\"3\" failures=\"1\" errors=\"1\">"),
            "{xml}"
        );
        let parsed = comptest_script::xml::parse(&xml).unwrap();
        assert_eq!(parsed.name, "testsuites");
        assert_eq!(parsed.elements_named("testsuite").count(), 2);
    }

    #[test]
    fn junit_structure() {
        let suite = SuiteResult {
            suite: "lamp".into(),
            results: vec![
                result(Verdict::Pass),
                result(Verdict::Fail),
                result(Verdict::Error),
            ],
        };
        let xml = junit_xml(&suite);
        assert!(
            xml.contains(
                "<testsuite name=\"lamp\" tests=\"3\" failures=\"1\" errors=\"1\" time=\"0.500\">"
            ),
            "{xml}"
        );
        // Per-test simulated timing: the failing test ran one 0.5 s step.
        assert!(xml.contains("time=\"0.000\""));
        assert!(xml.contains("<failure message="));
        assert!(xml.contains("<error message=\"no such method\""));
        // It must parse with our own XML engine.
        let parsed = comptest_script::xml::parse(&xml).unwrap();
        assert_eq!(parsed.elements_named("testcase").count(), 3);
    }
}
