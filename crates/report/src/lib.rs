//! Reporting: turning execution results into human- and CI-readable output.
//!
//! * [`TextTable`] — aligned plain-text tables (the `repro` harness prints
//!   every paper table through this);
//! * [`step_table`] — a test result rendered like the paper's test
//!   definition sheet, one row per step with measured values and verdicts;
//! * [`suite_text`] / [`suite_markdown`] — suite summaries;
//! * [`junit_xml`] — JUnit-style XML for CI systems, written with the same
//!   XML engine that writes test scripts;
//! * [`progress`] — shared rendering of live campaign
//!   [`EngineEvent`](comptest_engine::EngineEvent)s;
//! * [`metrics_text`] — an observability
//!   [`MetricsSnapshot`](comptest_engine::MetricsSnapshot) rendered as
//!   aligned tables (the `--metrics` flag of `comptest campaign`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod junit;
pub mod metrics;
pub mod progress;
pub mod table;
pub mod text;

pub use campaign::{campaign_markdown, campaign_table, portability_table};
pub use junit::{campaign_junit_xml, junit_xml};
pub use metrics::metrics_text;
pub use progress::{progress_line, summary_line};
pub use table::TextTable;
pub use text::{step_table, suite_markdown, suite_text};
