//! Rendering campaign and portability matrices.

use std::collections::BTreeSet;

use comptest_core::campaign::CampaignResult;
use comptest_core::portability::PortabilityReport;

use crate::table::TextTable;

/// Renders a campaign result as a suites × stands matrix (text).
pub fn campaign_table(result: &CampaignResult) -> TextTable {
    let stands: Vec<String> = {
        let mut seen = BTreeSet::new();
        result
            .cells
            .iter()
            .filter(|c| seen.insert(c.stand.clone()))
            .map(|c| c.stand.clone())
            .collect()
    };
    let mut headers = vec!["suite".to_owned()];
    headers.extend(stands.iter().cloned());
    let mut table = TextTable::new(headers);

    let mut suites_seen = BTreeSet::new();
    for cell in &result.cells {
        if !suites_seen.insert(cell.suite.clone()) {
            continue;
        }
        let mut row = vec![cell.suite.clone()];
        for stand in &stands {
            let status = result
                .cells
                .iter()
                .find(|c| c.suite == cell.suite && &c.stand == stand)
                .map(|c| c.status())
                .unwrap_or_else(|| "-".to_owned());
            row.push(status);
        }
        table.row(row);
    }
    table
}

/// Renders a campaign result as markdown.
pub fn campaign_markdown(result: &CampaignResult) -> String {
    campaign_table(result).to_markdown()
}

/// Renders a portability report as a tests × stands matrix (text), with
/// `ok` / `✗` cells.
pub fn portability_table(report: &PortabilityReport) -> TextTable {
    let stands: Vec<String> = {
        let mut seen = BTreeSet::new();
        report
            .rows
            .iter()
            .filter(|r| seen.insert(r.stand.clone()))
            .map(|r| r.stand.clone())
            .collect()
    };
    let mut headers = vec!["test".to_owned()];
    headers.extend(stands.iter().cloned());
    let mut table = TextTable::new(headers);

    let mut tests_seen = BTreeSet::new();
    for row in &report.rows {
        if !tests_seen.insert(row.test.clone()) {
            continue;
        }
        let mut cells = vec![row.test.clone()];
        for stand in &stands {
            let mark = report
                .rows
                .iter()
                .find(|r| r.test == row.test && &r.stand == stand)
                .map(|r| if r.ok { "ok" } else { "✗" })
                .unwrap_or("-");
            cells.push(mark.to_owned());
        }
        table.row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_core::campaign::CampaignCell;
    use comptest_core::portability::PortabilityRow;
    use comptest_core::SuiteResult;

    #[test]
    fn campaign_matrix_layout() {
        let result = CampaignResult {
            cells: vec![
                CampaignCell {
                    suite: "lamp".into(),
                    stand: "A".into(),
                    outcome: Ok(SuiteResult {
                        suite: "lamp".into(),
                        results: vec![],
                    }),
                },
                CampaignCell {
                    suite: "lamp".into(),
                    stand: "B".into(),
                    outcome: Err("no dvm".into()),
                },
            ],
        };
        let table = campaign_table(&result);
        let text = table.to_string();
        assert!(text.contains("suite"));
        assert!(text.contains("lamp"));
        assert!(text.contains("NOT RUNNABLE"));
        let md = campaign_markdown(&result);
        assert!(md.starts_with("| suite"));
    }

    #[test]
    fn portability_matrix_layout() {
        let report = PortabilityReport {
            rows: vec![
                PortabilityRow {
                    test: "t1".into(),
                    stand: "A".into(),
                    ok: true,
                    error: None,
                },
                PortabilityRow {
                    test: "t1".into(),
                    stand: "B".into(),
                    ok: false,
                    error: Some("boom".into()),
                },
            ],
        };
        let text = portability_table(&report).to_string();
        assert!(text.contains("t1"));
        assert!(text.contains("ok"));
        assert!(text.contains('✗'));
    }
}
