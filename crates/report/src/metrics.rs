//! Rendering an observability [`MetricsSnapshot`] as aligned text tables —
//! what `comptest campaign --metrics` prints and what `--metrics-out`
//! summarizes next to the raw JSON export.

use comptest_engine::MetricsSnapshot;

use crate::table::TextTable;

/// Renders a metrics snapshot as a sequence of aligned plain-text tables
/// (counters, gauges, phase timings, histograms), skipping sections with
/// nothing recorded. A disabled or untouched recorder renders all-zero
/// counters rather than an empty string, so the section headings stay
/// greppable in CI logs.
pub fn metrics_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    let mut counters = TextTable::new(vec!["counter", "value"]);
    for (name, value) in &snapshot.counters {
        counters.row(vec![(*name).to_owned(), value.to_string()]);
    }
    out.push_str("counters\n");
    out.push_str(&counters.to_string());

    let mut gauges = TextTable::new(vec!["gauge", "current", "max"]);
    for (name, g) in &snapshot.gauges {
        gauges.row(vec![
            (*name).to_owned(),
            g.current.to_string(),
            g.max.to_string(),
        ]);
    }
    if !gauges.is_empty() {
        out.push_str("\ngauges\n");
        out.push_str(&gauges.to_string());
    }

    let mut phases = TextTable::new(vec!["phase", "total", "calls"]);
    for (name, p) in &snapshot.phases {
        phases.row(vec![
            (*name).to_owned(),
            format_micros(p.micros),
            p.calls.to_string(),
        ]);
    }
    if !phases.is_empty() {
        out.push_str("\nphases\n");
        out.push_str(&phases.to_string());
    }

    let mut histograms = TextTable::new(vec!["histogram", "count", "sum", "buckets (le: n)"]);
    for (name, h) in &snapshot.histograms {
        let buckets = h
            .buckets
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(le, n)| match le {
                Some(le) => format!("{}: {n}", format_micros(*le)),
                None => format!("+inf: {n}"),
            })
            .collect::<Vec<_>>()
            .join(", ");
        histograms.row(vec![
            (*name).to_owned(),
            h.count.to_string(),
            format_micros(h.sum_micros),
            buckets,
        ]);
    }
    if !histograms.is_empty() {
        out.push_str("\nhistograms\n");
        out.push_str(&histograms.to_string());
    }

    out
}

/// A microsecond quantity rendered with a human-scale unit (`950µs`,
/// `12.50ms`, `3.21s`), mirroring how the bench harness reports timings.
fn format_micros(micros: u64) -> String {
    if micros >= 1_000_000 {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    } else if micros >= 1_000 {
        format!("{:.2}ms", micros as f64 / 1_000.0)
    } else {
        format!("{micros}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_engine::{GaugeSnapshot, HistogramSnapshot, PhaseSnapshot};

    #[test]
    fn renders_all_sections_with_units() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.insert("jobs_planned", 8);
        snapshot.counters.insert("jobs_executed", 6);
        snapshot
            .gauges
            .insert("queue_depth", GaugeSnapshot { current: 0, max: 8 });
        snapshot.phases.insert(
            "execute",
            PhaseSnapshot {
                micros: 12_500,
                calls: 6,
            },
        );
        snapshot.histograms.insert(
            "test_wall_micros",
            HistogramSnapshot {
                buckets: vec![(Some(100), 0), (Some(1_000), 4), (None, 2)],
                count: 6,
                sum_micros: 3_210_000,
            },
        );
        let text = metrics_text(&snapshot);
        assert!(text.contains("counters"), "{text}");
        assert!(text.contains("jobs_planned"), "{text}");
        assert!(text.contains("queue_depth"), "{text}");
        assert!(text.contains("12.50ms"), "{text}");
        assert!(text.contains("3.21s"), "{text}");
        assert!(text.contains("1.00ms: 4, +inf: 2"), "{text}");
        // Zero buckets are elided from the bucket column.
        assert!(!text.contains("100µs: 0"), "{text}");
    }

    #[test]
    fn empty_snapshot_still_names_the_counters_section() {
        let text = metrics_text(&MetricsSnapshot::default());
        assert!(text.starts_with("counters\n"), "{text}");
        assert!(!text.contains("gauges"), "{text}");
    }
}
