//! Live-progress rendering for campaign [`EngineEvent`]s — the one
//! formatter shared by the `comptest campaign` CLI and the
//! `campaign_parallel` example, so a campaign looks the same everywhere it
//! streams.

use comptest_engine::{CampaignOutcome, EngineEvent};

/// One human-readable line for a live engine event, without trailing
/// newline. Cell events render as `[ 3] suite on stand …`, test events as
/// `[ 3] suite::test on stand: PASS (1.23ms)`.
pub fn progress_line(event: &EngineEvent) -> String {
    match event {
        EngineEvent::JobStarted { cell, suite, stand } => {
            format!("[{cell:>2}] {suite} on {stand} …")
        }
        EngineEvent::JobFinished {
            cell,
            suite,
            stand,
            status,
            ..
        } => format!("[{cell:>2}] {suite} on {stand}: {status}"),
        EngineEvent::TestStarted {
            cell,
            suite,
            stand,
            name,
            ..
        } => format!("[{cell:>2}] {suite}::{name} on {stand} …"),
        EngineEvent::TestFinished {
            cell,
            suite,
            stand,
            name,
            status,
            duration,
            ..
        } => format!("[{cell:>2}] {suite}::{name} on {stand}: {status} ({duration:.2?})"),
        EngineEvent::CellCached {
            cell,
            test,
            suite,
            stand,
            status,
        } => match test {
            Some(test) => format!("[{cell:>2}] {suite}::#{test} on {stand}: {status} (cached)"),
            None => format!("[{cell:>2}] {suite} on {stand}: {status} (cached)"),
        },
        EngineEvent::CellCacheCorrupt { cell, suite, stand } => {
            format!("[{cell:>2}] {suite} on {stand}: warning: corrupt cache entry (re-executing)")
        }
        EngineEvent::CampaignDone {
            passed,
            failed,
            errored,
            not_runnable,
            cancelled,
        } => totals_line(*passed, *failed, *errored, *not_runnable, *cancelled),
        // `EngineEvent` is non_exhaustive: render future event kinds
        // through Debug rather than dropping them silently.
        other => format!("{other:?}"),
    }
}

/// The terminal `done:` line for a joined campaign — the builder-API
/// replacement for rendering [`EngineEvent::CampaignDone`].
pub fn summary_line(outcome: &CampaignOutcome) -> String {
    let (passed, failed, errored, not_runnable) = outcome.result.totals();
    totals_line(passed, failed, errored, not_runnable, outcome.cancelled)
}

fn totals_line(
    passed: usize,
    failed: usize,
    errored: usize,
    not_runnable: usize,
    cancelled: usize,
) -> String {
    format!(
        "done: {passed} passed, {failed} failed, {errored} errored, \
         {not_runnable} not runnable, {cancelled} cancelled"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_core::campaign::{CampaignCell, CampaignResult};
    use std::time::Duration;

    #[test]
    fn renders_every_event_kind() {
        let started = EngineEvent::JobStarted {
            cell: 3,
            suite: "lamp".into(),
            stand: "HIL-A".into(),
        };
        assert_eq!(progress_line(&started), "[ 3] lamp on HIL-A …");

        let finished = EngineEvent::JobFinished {
            cell: 3,
            suite: "lamp".into(),
            stand: "HIL-A".into(),
            status: "PASS (2P/0F/0E)".into(),
            failed: false,
        };
        assert_eq!(
            progress_line(&finished),
            "[ 3] lamp on HIL-A: PASS (2P/0F/0E)"
        );

        let test_started = EngineEvent::TestStarted {
            cell: 0,
            test: 1,
            suite: "lamp".into(),
            stand: "HIL-A".into(),
            name: "night_on".into(),
        };
        assert_eq!(
            progress_line(&test_started),
            "[ 0] lamp::night_on on HIL-A …"
        );

        let test_finished = EngineEvent::TestFinished {
            cell: 0,
            test: 1,
            suite: "lamp".into(),
            stand: "HIL-A".into(),
            name: "night_on".into(),
            status: "PASS".into(),
            failed: false,
            duration: Duration::from_millis(2),
        };
        let line = progress_line(&test_finished);
        assert!(
            line.starts_with("[ 0] lamp::night_on on HIL-A: PASS ("),
            "{line}"
        );

        let cached_cell = EngineEvent::CellCached {
            cell: 4,
            test: None,
            suite: "lamp".into(),
            stand: "HIL-A".into(),
            status: "PASS (2P/0F/0E)".into(),
        };
        assert_eq!(
            progress_line(&cached_cell),
            "[ 4] lamp on HIL-A: PASS (2P/0F/0E) (cached)"
        );
        let cached_test = EngineEvent::CellCached {
            cell: 4,
            test: Some(1),
            suite: "lamp".into(),
            stand: "HIL-A".into(),
            status: "PASS".into(),
        };
        assert_eq!(
            progress_line(&cached_test),
            "[ 4] lamp::#1 on HIL-A: PASS (cached)"
        );

        let corrupt = EngineEvent::CellCacheCorrupt {
            cell: 2,
            suite: "lamp".into(),
            stand: "HIL-A".into(),
        };
        assert_eq!(
            progress_line(&corrupt),
            "[ 2] lamp on HIL-A: warning: corrupt cache entry (re-executing)"
        );

        let done = EngineEvent::CampaignDone {
            passed: 4,
            failed: 1,
            errored: 0,
            not_runnable: 2,
            cancelled: 3,
        };
        assert_eq!(
            progress_line(&done),
            "done: 4 passed, 1 failed, 0 errored, 2 not runnable, 3 cancelled"
        );
    }

    #[test]
    fn summary_line_matches_the_done_event_format() {
        let outcome = CampaignOutcome {
            result: CampaignResult {
                cells: vec![CampaignCell {
                    suite: "lamp".into(),
                    stand: "HIL-A".into(),
                    outcome: Err("no resource".into()),
                }],
            },
            cancelled: 9,
        };
        assert_eq!(
            summary_line(&outcome),
            "done: 0 passed, 0 failed, 0 errored, 1 not runnable, 9 cancelled"
        );
    }
}
