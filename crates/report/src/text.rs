//! Text and markdown renderings of execution results.

use comptest_core::{SuiteResult, TestResult, Verdict};

use crate::table::TextTable;

/// Renders a test result as a per-step table in the spirit of the paper's
/// test definition sheet: step, end time, each check's signal, measured
/// value, bound and verdict.
pub fn step_table(result: &TestResult) -> String {
    let mut table = TextTable::new(vec![
        "step", "t_end", "signal", "measured", "expected", "verdict",
    ]);
    for step in &result.steps {
        if step.checks.is_empty() {
            table.row(vec![
                step.nr.to_string(),
                step.t_end.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "PASS".into(),
            ]);
        }
        for check in &step.checks {
            table.row(vec![
                step.nr.to_string(),
                step.t_end.to_string(),
                check.signal.to_string(),
                check.measured.to_string(),
                check.bound.to_string(),
                check.verdict.to_string(),
            ]);
        }
    }
    let mut out = format!(
        "test {} on {} against {} -> {}\n",
        result.test,
        result.stand,
        result.dut,
        result.verdict()
    );
    if let Some(e) = &result.error {
        out.push_str(&format!("execution error: {e}\n"));
    }
    out.push_str(&table.to_string());
    out
}

/// Renders a whole suite result as text, with per-test simulated timing
/// (deterministic across serial and parallel execution).
pub fn suite_text(result: &SuiteResult) -> String {
    let mut table = TextTable::new(vec!["test", "verdict", "checks", "failures", "sim time"]);
    for r in &result.results {
        table.row(vec![
            r.test.clone(),
            r.verdict().to_string(),
            r.check_count().to_string(),
            r.failures().len().to_string(),
            r.sim_duration().to_string(),
        ]);
    }
    let (p, f, e) = result.counts();
    format!(
        "suite {}: {} — {p} passed, {f} failed, {e} errored in {} simulated\n{table}",
        result.suite,
        result.verdict(),
        result.sim_duration(),
    )
}

/// Renders a whole suite result as a markdown section.
pub fn suite_markdown(result: &SuiteResult) -> String {
    let mut table = TextTable::new(vec!["test", "verdict", "checks", "failures"]);
    for r in &result.results {
        let verdict = match r.verdict() {
            Verdict::Pass => "✅ PASS",
            Verdict::Fail => "❌ FAIL",
            Verdict::Error => "💥 ERROR",
        };
        table.row(vec![
            format!("`{}`", r.test),
            verdict.to_string(),
            r.check_count().to_string(),
            r.failures().len().to_string(),
        ]);
    }
    format!("## Suite `{}`\n\n{}", result.suite, table.to_markdown())
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_core::{CheckResult, Measured, StepResult, Trace};
    use comptest_model::{MethodName, SignalName, SimTime, StatusBound};

    fn sample_result() -> TestResult {
        TestResult {
            test: "interior_illumination".into(),
            stand: "HIL-A".into(),
            dut: "interior_light".into(),
            steps: vec![
                StepResult {
                    nr: 0,
                    t_end: SimTime::from_millis(500),
                    checks: vec![CheckResult {
                        step: 0,
                        at: SimTime::from_millis(500),
                        signal: SignalName::new("INT_ILL").unwrap(),
                        method: MethodName::new("get_u").unwrap(),
                        bound: StatusBound::Numeric {
                            nominal: None,
                            lo: 0.0,
                            hi: 3.6,
                        },
                        measured: Measured::Num(0.01),
                        verdict: Verdict::Pass,
                        message: String::new(),
                    }],
                },
                StepResult {
                    nr: 1,
                    t_end: SimTime::from_secs(1),
                    checks: vec![],
                },
            ],
            error: None,
            trace: Trace::default(),
        }
    }

    #[test]
    fn step_table_renders_paper_style() {
        let text = step_table(&sample_result());
        assert!(text.contains("interior_illumination"), "{text}");
        assert!(text.contains("INT_ILL"));
        assert!(text.contains("0.5s"));
        assert!(text.contains("PASS"));
        // The check-less step still appears.
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn suite_renderings() {
        let suite = SuiteResult {
            suite: "interior_light".into(),
            results: vec![sample_result()],
        };
        let text = suite_text(&suite);
        assert!(text.contains("1 passed, 0 failed"));
        // The per-test sim-time column shows the last step's end time.
        assert!(text.contains("sim time"), "{text}");
        assert!(text.contains("1s"), "{text}");
        let md = suite_markdown(&suite);
        assert!(md.contains("## Suite `interior_light`"));
        assert!(md.contains("✅ PASS"));
    }
}
