//! Aligned plain-text tables.

use std::fmt;

/// A simple column-aligned table builder.
///
/// # Example
///
/// ```
/// use comptest_report::TextTable;
///
/// let mut t = TextTable::new(vec!["step", "dt", "verdict"]);
/// t.row(vec!["0".into(), "0.5s".into(), "PASS".into()]);
/// let text = t.to_string();
/// assert!(text.contains("step"));
/// assert!(text.contains("PASS"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Shorter rows are padded with empty cells; longer rows
    /// extend the table width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + widths.len().saturating_sub(1) * 2;
        writeln!(f, "{:-<total$}", "")?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = TextTable::new(vec!["a", "long_header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a      "), "{:?}", lines[0]);
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        let text = t.to_string();
        assert!(text.contains("1  2  3"));
    }

    #[test]
    fn markdown_form() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }
}
